#include "serve/query.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace wearscope::serve {

namespace {

/// "%.17g" round-trips every finite double bit-exactly, which is what
/// makes serve responses byte-comparable against the batch pipeline.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_field_u64(std::string& out, std::string_view key,
                      std::uint64_t v) {
  out += ' ';
  out += key;
  out += '=';
  append_u64(out, v);
}

void append_field_double(std::string& out, std::string_view key, double v) {
  out += ' ';
  out += key;
  out += '=';
  append_double(out, v);
}

[[nodiscard]] std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = value;
  return true;
}

[[nodiscard]] ParsedQuery fail(std::string message) {
  return ParsedQuery{std::nullopt, std::move(message)};
}

}  // namespace

ParsedQuery parse_query(std::string_view line) {
  const std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return ParsedQuery{};

  const std::vector<std::string_view> tokens = tokenize(trimmed);
  Query query;
  const std::string_view verb = tokens.front();
  bool takes_k = false;
  if (verb == "adoption") {
    query.kind = QueryKind::kAdoption;
  } else if (verb == "activity") {
    query.kind = QueryKind::kActivity;
  } else if (verb == "top-apps") {
    query.kind = QueryKind::kTopApps;
    takes_k = true;
  } else if (verb == "sectors") {
    query.kind = QueryKind::kSectors;
    takes_k = true;
  } else if (verb == "quarantine") {
    query.kind = QueryKind::kQuarantine;
  } else if (verb == "epochs") {
    query.kind = QueryKind::kEpochs;
  } else if (verb == "stats") {
    query.kind = QueryKind::kStats;
  } else if (verb == "help") {
    query.kind = QueryKind::kHelp;
  } else {
    return fail("unknown query '" + std::string(verb) +
                "' (try 'help' for the grammar)");
  }

  bool have_k = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    if (token.front() == '@') {
      if (query.epoch.has_value()) return fail("duplicate @epoch selector");
      std::uint64_t epoch = 0;
      if (!parse_u64(token.substr(1), epoch)) {
        return fail("bad epoch selector '" + std::string(token) +
                    "' (expected @N)");
      }
      query.epoch = epoch;
      continue;
    }
    std::uint64_t k = 0;
    if (takes_k && !have_k && parse_u64(token, k)) {
      if (k == 0) return fail("top-K must be >= 1");
      query.top_k = static_cast<std::size_t>(k);
      have_k = true;
      continue;
    }
    return fail("unexpected token '" + std::string(token) + "' after '" +
                std::string(verb) + "'");
  }
  const bool meta = query.kind == QueryKind::kEpochs ||
                    query.kind == QueryKind::kStats ||
                    query.kind == QueryKind::kHelp;
  if (meta && query.epoch.has_value()) {
    return fail("'" + std::string(verb) + "' does not take an @epoch");
  }
  return ParsedQuery{query, {}};
}

std::string render_help() {
  return "OK help adoption|activity|top-apps [K]|sectors [K]|quarantine "
         "[@EPOCH] ; epochs ; stats ; help";
}

std::string render_adoption(std::uint64_t epoch, std::uint64_t records,
                            const core::AdoptionResult& a) {
  std::string out = "OK adoption";
  append_field_u64(out, "epoch", epoch);
  append_field_u64(out, "records", records);
  append_field_u64(out, "registered", a.ever_registered);
  append_field_u64(out, "transacted", a.ever_transacted);
  append_field_double(out, "transacting_frac", a.ever_transacting_fraction);
  append_field_double(out, "total_growth", a.total_growth);
  append_field_double(out, "monthly_growth", a.monthly_growth);
  append_field_double(out, "still_active", a.still_active_share);
  append_field_double(out, "gone", a.gone_share);
  append_field_double(out, "new", a.new_share);
  append_field_double(out, "churned", a.churned_of_initial);
  out += " curve=";
  for (std::size_t day = 0; day < a.daily_registered_norm.size(); ++day) {
    if (day > 0) out += ',';
    append_double(out, a.daily_registered_norm[day]);
  }
  return out;
}

std::string render_activity(
    std::uint64_t epoch, std::uint64_t records, const core::ActivityResult& a,
    const std::array<std::uint64_t, appdb::kTransactionClassCount>&
        class_txns) {
  std::string out = "OK activity";
  append_field_u64(out, "epoch", epoch);
  append_field_u64(out, "records", records);
  append_field_double(out, "mean_active_days", a.mean_active_days);
  append_field_double(out, "mean_active_hours", a.mean_active_hours);
  append_field_double(out, "frac_over_10h", a.frac_over_10h);
  append_field_double(out, "frac_under_5h", a.frac_under_5h);
  append_field_double(out, "mean_txn_bytes", a.mean_txn_bytes);
  append_field_double(out, "median_txn_bytes", a.median_txn_bytes);
  append_field_double(out, "frac_txn_under_10kb", a.frac_txn_under_10kb);
  out += " class_txns=";
  for (std::size_t c = 0; c < class_txns.size(); ++c) {
    if (c > 0) out += ',';
    append_u64(out, class_txns[c]);
  }
  return out;
}

std::string render_top_apps(
    std::uint64_t epoch, std::size_t k,
    std::span<const live::LiveSnapshot::AppRow> apps) {
  std::string out = "OK top-apps";
  append_field_u64(out, "epoch", epoch);
  append_field_u64(out, "k", k);
  append_field_u64(out, "total", apps.size());
  out += " rows=";
  const std::size_t n = std::min(k, apps.size());
  for (std::size_t i = 0; i < n; ++i) {
    const live::LiveSnapshot::AppRow& row = apps[i];
    if (i > 0) out += '|';
    out += row.name;
    out += ':';
    append_u64(out, row.counter.transactions);
    out += ':';
    append_u64(out, row.counter.bytes);
    out += ':';
    append_u64(out, row.counter.usages);
    out += ':';
    append_u64(out, row.counter.distinct_users);
  }
  return out;
}

std::string render_sectors(
    std::uint64_t epoch, std::size_t k,
    std::span<const live::LiveSnapshot::SectorRow> sectors) {
  std::string out = "OK sectors";
  append_field_u64(out, "epoch", epoch);
  append_field_u64(out, "k", k);
  append_field_u64(out, "total", sectors.size());
  out += " rows=";
  const std::size_t n = std::min(k, sectors.size());
  for (std::size_t i = 0; i < n; ++i) {
    const live::LiveSnapshot::SectorRow& row = sectors[i];
    if (i > 0) out += '|';
    append_u64(out, row.sector);
    out += ':';
    append_u64(out, row.counter.events);
    out += ':';
    append_u64(out, row.counter.attaches);
    out += ':';
    append_u64(out, row.counter.handovers);
    out += ':';
    append_u64(out, row.counter.wearable_events);
    out += ':';
    append_u64(out, row.counter.distinct_users);
    out += ':';
    append_u64(out, row.counter.wearable_users);
  }
  return out;
}

std::string render_quarantine(std::uint64_t epoch,
                              const trace::QuarantineStats& q) {
  std::string out = "OK quarantine";
  append_field_u64(out, "epoch", epoch);
  append_field_u64(out, "dropped", q.total_dropped());
  append_field_u64(out, "corrupt_files", q.corrupt_files);
  append_field_u64(out, "corrupt_tails", q.corrupt_tails);
  append_field_u64(out, "corrupt_blocks", q.corrupt_blocks);
  append_field_u64(out, "corrupt_rows", q.corrupt_rows);
  append_field_u64(out, "duplicates", q.duplicates);
  append_field_u64(out, "regressions", q.regressions);
  append_field_u64(out, "unknown_tac", q.unknown_tac);
  append_field_u64(out, "bad_host", q.bad_host);
  append_field_u64(out, "reordered", q.reordered);
  append_field_u64(out, "transient_retries", q.transient_retries);
  append_field_u64(out, "dropped_after_retry", q.dropped_after_retry);
  return out;
}

std::string render_snapshot_query(const Query& query,
                                  const live::LiveSnapshot& s) {
  switch (query.kind) {
    case QueryKind::kAdoption:
      return render_adoption(s.epoch, s.records, s.adoption);
    case QueryKind::kActivity:
      return render_activity(s.epoch, s.records, s.activity, s.class_txns);
    case QueryKind::kTopApps:
      return render_top_apps(s.epoch, query.top_k, s.apps);
    case QueryKind::kSectors:
      return render_sectors(s.epoch, query.top_k, s.sectors);
    case QueryKind::kQuarantine:
      return render_quarantine(s.epoch, s.quarantine);
    case QueryKind::kEpochs:
    case QueryKind::kStats:
    case QueryKind::kHelp:
      break;
  }
  util::ensure(false, "render_snapshot_query: non-snapshot query kind");
  return {};
}

}  // namespace wearscope::serve
