// QueryEngine: answers protocol lines against a SnapshotStore.
//
// Thread-safe for any number of concurrent callers: snapshot resolution is
// the store's lock-free latest() (or the mutex-guarded historical lookup
// for "@epoch" queries), rendering walks only the resolved immutable
// snapshot, and the serving counters are relaxed atomics.  Nothing here
// ever blocks the publishing side.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/snapshot_store.h"

namespace wearscope::serve {

/// Monotonic serving counters (one consistent-enough sample; individual
/// counters are exact, cross-counter skew is possible under load).
struct ServingStats {
  std::uint64_t answered = 0;   ///< Queries that produced an OK line.
  std::uint64_t errors = 0;     ///< Queries that produced an ERR line.
  std::uint64_t no_snapshot = 0;  ///< Of `errors`: asked before any publish
                                  ///< or for an evicted epoch.
};

class QueryEngine {
 public:
  /// `store` must outlive the engine.
  explicit QueryEngine(const SnapshotStore& store) : store_(&store) {}

  /// Answers one protocol line with exactly one response line (no
  /// trailing newline).  Blank/comment lines return an empty string —
  /// callers emit nothing for them.
  [[nodiscard]] std::string answer(std::string_view line);

  [[nodiscard]] ServingStats stats() const noexcept {
    ServingStats s;
    s.answered = answered_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.no_snapshot = no_snapshot_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] const SnapshotStore& store() const noexcept {
    return *store_;
  }

 private:
  [[nodiscard]] std::string error(std::string message);

  const SnapshotStore* store_ = nullptr;
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> no_snapshot_{0};
};

}  // namespace wearscope::serve
