#include "serve/query_engine.h"

#include <cstdio>
#include <vector>

#include "serve/query.h"

namespace wearscope::serve {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string QueryEngine::error(std::string message) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  return "ERR " + std::move(message);
}

std::string QueryEngine::answer(std::string_view line) {
  const ParsedQuery parsed = parse_query(line);
  if (!parsed.query.has_value()) {
    if (parsed.error.empty()) return {};  // Blank or comment line.
    return error(parsed.error);
  }
  const Query& query = *parsed.query;

  switch (query.kind) {
    case QueryKind::kHelp:
      answered_.fetch_add(1, std::memory_order_relaxed);
      return render_help();
    case QueryKind::kEpochs: {
      std::string out = "OK epochs retained=";
      const std::vector<std::uint64_t> epochs = store_->retained_epochs();
      for (std::size_t i = 0; i < epochs.size(); ++i) {
        if (i > 0) out += ',';
        append_u64(out, epochs[i]);
      }
      out += " capacity=";
      append_u64(out, store_->capacity());
      out += " published=";
      append_u64(out, store_->published());
      answered_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    case QueryKind::kStats: {
      const ServingStats s = stats();
      std::string out = "OK stats answered=";
      append_u64(out, s.answered);
      out += " errors=";
      append_u64(out, s.errors);
      out += " no_snapshot=";
      append_u64(out, s.no_snapshot);
      out += " published=";
      append_u64(out, store_->published());
      answered_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    default:
      break;
  }

  const SnapshotRef snap = query.epoch.has_value()
                               ? store_->at_epoch(*query.epoch)
                               : store_->latest();
  if (snap == nullptr) {
    no_snapshot_.fetch_add(1, std::memory_order_relaxed);
    if (query.epoch.has_value()) {
      std::string msg = "epoch ";
      append_u64(msg, *query.epoch);
      msg += " not retained (see 'epochs')";
      return error(std::move(msg));
    }
    return error("no snapshot published yet");
  }
  if (ServedSnapshot::fold(snap->snap, snap->publish_seq,
                           snap->final_epoch) != snap->checksum) {
    return error("snapshot integrity check failed (torn publication?)");
  }
  answered_.fetch_add(1, std::memory_order_relaxed);
  return render_snapshot_query(query, snap->snap);
}

}  // namespace wearscope::serve
