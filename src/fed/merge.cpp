#include "fed/merge.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "appdb/app_catalog.h"
#include "par/shard.h"
#include "par/task_pool.h"
#include "util/error.h"

namespace wearscope::fed {

namespace {

[[noreturn]] void cover_error(const std::filesystem::path& path,
                              const std::string& what) {
  throw util::ConfigError("partition cover: " + what + " (" + path.string() +
                          ")");
}

/// Hard-errors unless every user a partial holds hashes into its owned
/// partition — the disjointness half of the cover contract.
void check_ownership(const LoadedPartial& part) {
  const PartitionHeader& h = part.partial.header;
  const auto owned = [&h](trace::UserId user) {
    return par::shard_of(user, h.partition_count) == h.partition_id;
  };
  // Membership checks are order-free (no emission follows iteration).
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [user, seq] : part.partial.tallies.activity.first_seen) {
    if (!owned(user)) {
      cover_error(part.path,
                  "partition " + std::to_string(h.partition_id) +
                      " holds user " + std::to_string(user) +
                      " owned by partition " +
                      std::to_string(par::shard_of(user, h.partition_count)));
    }
  }
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [user, activity] : part.partial.tallies.activity.users) {
    if (!owned(user)) {
      cover_error(part.path,
                  "partition " + std::to_string(h.partition_id) +
                      " holds activity for foreign user " +
                      std::to_string(user));
    }
  }
}

}  // namespace

std::vector<LoadedPartial> load_partials(
    const std::vector<std::filesystem::path>& paths, std::size_t threads) {
  std::vector<LoadedPartial> out(paths.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // One strict decode per file; tasks write disjoint slots, so the
    // result is identical for every pool size.
    tasks.push_back([i, &out, &paths] {
      try {
        out[i].partial = read_partial_file(paths[i]);
      } catch (const util::ParseError& e) {
        throw util::ParseError(paths[i].string() + ": " + e.what());
      } catch (const util::IoError& e) {
        throw util::IoError(paths[i].string() + ": " + e.what());
      }
      out[i].path = paths[i];
    });
  }
  par::TaskPool pool(threads == 0 ? 1 : threads);
  pool.run(std::move(tasks));
  return out;
}

MergeResult merge_partials(std::vector<LoadedPartial> parts) {
  util::require(!parts.empty(), "partition cover: no partials to merge");

  // Canonical partition order: the merge result must be a function of the
  // cover alone, never of argument or load order.
  std::sort(parts.begin(), parts.end(),
            [](const LoadedPartial& a, const LoadedPartial& b) {
              return a.partial.header.partition_id <
                     b.partial.header.partition_id;
            });

  const PartitionHeader& first = parts.front().partial.header;
  const std::uint32_t count = first.partition_count;
  if (parts.size() != count) {
    throw util::ConfigError(
        "partition cover: expected " + std::to_string(count) +
        " partials (partition_count), got " + std::to_string(parts.size()));
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const PartitionHeader& h = parts[i].partial.header;
    const std::filesystem::path& path = parts[i].path;
    if (h.partition_count != count) {
      cover_error(path, "mismatched partition_count " +
                            std::to_string(h.partition_count) + " != " +
                            std::to_string(count));
    }
    if (h.partition_id != i) {
      const bool duplicate =
          i > 0 && h.partition_id == parts[i - 1].partial.header.partition_id;
      cover_error(path, duplicate ? "duplicate partition id " +
                                        std::to_string(h.partition_id)
                                  : "missing partition id " +
                                        std::to_string(i));
    }
    if (h.epoch != first.epoch) {
      cover_error(path, "mismatched epoch");
    }
    if (h.feed_records != first.feed_records) {
      cover_error(path, "mismatched feed_records (different feeds?)");
    }
    if (h.observation_days != first.observation_days ||
        h.detailed_start_day != first.detailed_start_day ||
        h.usage_gap_s != first.usage_gap_s ||
        h.long_tail_apps != first.long_tail_apps ||
        h.signature_coverage != first.signature_coverage ||
        h.sketch_enabled != first.sketch_enabled) {
      cover_error(path, "mismatched engine options");
    }
    if (parts[i].partial.feed_quarantine !=
        parts.front().partial.feed_quarantine) {
      cover_error(path, "diverging feed-side quarantine accounting");
    }
    check_ownership(parts[i]);
  }

  // Merge in canonical order into one shard contribution and finalize it
  // through the exact assemble path the engine runs.
  live::ShardSnapshot merged;
  merged.shard = 0;
  for (LoadedPartial& part : parts) {
    live::LiveSnapshot::TallySet& tallies = part.partial.tallies;
    merged.records += part.partial.header.records;
    merged.adoption.merge(tallies.adoption);
    merged.activity.merge(std::move(tallies.activity));
    merged.apps.merge(tallies.apps);
    merged.sectors.merge(tallies.sectors);
    merged.sketch.merge(tallies.sketch);
  }
  // Completeness: the owned ranges must tile the feed exactly.  Together
  // with the per-user ownership check above this rejects overlapping and
  // gapped covers even when their per-partition counts look plausible.
  if (merged.records != first.feed_records) {
    throw util::ConfigError(
        "partition cover: owned records sum to " +
        std::to_string(merged.records) + " but the feed offered " +
        std::to_string(first.feed_records) + " (incomplete or overlapping)");
  }

  MergeResult result;
  result.merged_partitions = count;
  result.header = first;
  result.options.shards = 1;
  result.options.observation_days = first.observation_days;
  result.options.detailed_start_day = first.detailed_start_day;
  result.options.usage_gap_s = first.usage_gap_s;
  result.options.long_tail_apps = first.long_tail_apps;
  result.options.signature_coverage = first.signature_coverage;
  result.options.sketch_aggregates = first.sketch_enabled != 0;

  const appdb::AppCatalog catalog(result.options.long_tail_apps);
  const core::AppSignatureTable signatures(catalog,
                                           result.options.signature_coverage);
  live::SnapshotCoordinator coordinator(1, signatures);
  coordinator.deposit(first.epoch, std::move(merged));
  result.snapshot = coordinator.wait_for(first.epoch);
  result.snapshot.feed_records = first.feed_records;
  result.snapshot.quarantine = parts.front().partial.feed_quarantine;
  return result;
}

}  // namespace wearscope::fed
