// Federated snapshot merge: N user-disjoint partial snapshots -> the one
// LiveSnapshot a single process would have produced, bitwise.
//
// Why the merge is exact (the partition invariants):
//   * ownership — partition i of N holds exactly the users with
//     par::shard_of(user, N) == i, so the per-user maps of distinct
//     partials are disjoint and every set cardinality simply adds
//     (core::AdoptionTally, live::AppTally/SectorTally);
//   * global stamps — the partitioned router advances the proxy sequence
//     for *filtered* records too (live/router.h), so the merged
//     ActivityTally replays the single-process user-appearance order in
//     finalize() bit for bit;
//   * shared feed — every partition replays the same sanitized feed, so
//     the feed-side quarantine accounting is identical across partials
//     (validated; one copy rides into the merged snapshot);
//   * canonical order — partials merge in ascending partition id through
//     the same SnapshotCoordinator::assemble path the engine runs, so the
//     result cannot depend on load order or thread count.
// The only non-exact state is the sketch estimates (HLL/t-digest/
// count-min): merges are lossless as algebra but the t-digest centroid
// layout depends on merge order, so sketch-mode figures carry the
// documented error bounds instead of a bitwise gate (docs/DESIGN.md).
//
// Cover validation is strict by design: a mismatched partition_count, a
// duplicate or missing partition id, mismatched windows/epochs/feeds, a
// foreign user inside a partial, or diverging quarantine accounting are
// hard errors (util::ConfigError) — a silent partial cover would
// undercount every figure.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "fed/partial_io.h"
#include "live/engine.h"

namespace wearscope::fed {

/// One loaded partial plus where it came from (for error messages).
struct LoadedPartial {
  PartialSnapshot partial;
  std::filesystem::path path;
};

/// Loads every path as a partial snapshot, one strict decode task per
/// file on a par::TaskPool of `threads` executors (1 = inline).  Throws
/// util::ParseError/util::IoError naming the offending file.
[[nodiscard]] std::vector<LoadedPartial> load_partials(
    const std::vector<std::filesystem::path>& paths, std::size_t threads);

/// The federated snapshot and the cover it was assembled from.
struct MergeResult {
  /// Finalized snapshot, identical to the single-process engine's (and
  /// therefore serve-compatible: publish it into a SnapshotStore as-is).
  live::LiveSnapshot snapshot;
  /// The validated cover's shared metadata (partition_id meaningless).
  PartitionHeader header;
  /// Engine options reconstructed from the header — what a verifier
  /// needs to rebuild batch references.
  live::LiveOptions options;
  std::uint64_t merged_partitions = 0;
};

/// Validates the partition cover of `parts` (complete, disjoint, same
/// feed/window/epoch/quarantine) and merges them in canonical partition
/// order through SnapshotCoordinator::assemble.  Throws util::ConfigError
/// on any cover violation.
[[nodiscard]] MergeResult merge_partials(std::vector<LoadedPartial> parts);

}  // namespace wearscope::fed
