// Partial-snapshot on-disk format (federation wire format, version 1).
//
// One partitioned `wearscope_live` process owns the users whose
// par::shard_of(user, partition_count) == partition_id and periodically
// persists its *mergeable* snapshot state — the pre-finalize tallies of
// LiveSnapshot::TallySet plus the feed-side quarantine accounting — so a
// `wearscope_merge` coordinator can federate N user-disjoint partials
// into the single-process snapshot bitwise (fed/merge.h proves it).
//
// Layout, same framing discipline as the blocked v2 trace format
// (trace/block_io.h):
//
//   [magic "WSFD" u32][version=1 u16][reserved u16]    file header
//   repeat {
//     [section_id u32][byte_length u32][crc32 u32]     section header
//     [byte_length payload bytes]
//   }
//
// The partition-header section must come first; the others follow in
// ascending id order.  Every map serializes in sorted key order, so the
// bytes are a pure function of the logical state (no hash-iteration
// leakage).  `payload_checksum` in the partition header folds every
// subsequent section's (id, crc) pair through util::splitmix64, which
// pins the section *set* — a cleanly deleted section cannot go unnoticed.
//
// Corruption discipline mirrors trace v2/v3 exactly:
//   * strict readers throw util::ParseError on any damage;
//   * lenient readers skip-and-count: a rejected file header or a damaged
//     partition header counts one `corrupt_files` and yields nothing (the
//     cover metadata is the file's meaning); any other damaged section
//     counts one `corrupt_blocks`, is zeroed, and the reader resyncs at
//     the next section header via the byte_length chain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "live/snapshot.h"
#include "trace/quarantine.h"

namespace wearscope::live {
struct LiveOptions;
}  // namespace wearscope::live

namespace wearscope::fed {

/// File magic, little-endian "WSFD".
inline constexpr std::uint32_t kPartialMagic = 0x44465357;
/// On-disk version this writer emits.
inline constexpr std::uint16_t kPartialVersion = 1;
/// Bytes of the file header (magic + version + reserved).
inline constexpr std::size_t kPartialFileHeaderBytes = 8;
/// Bytes of one section header (id + byte_length + crc32).
inline constexpr std::size_t kSectionHeaderBytes = 12;

/// Section ids in canonical file order.
enum class SectionId : std::uint32_t {
  kPartition = 1,   ///< Cover metadata; must be the first section.
  kAdoption = 2,    ///< core::AdoptionTally.
  kActivity = 3,    ///< core::ActivityTally.
  kApps = 4,        ///< live::AppTally (incl. class mix).
  kSectors = 5,     ///< live::SectorTally.
  kSketch = 6,      ///< live::SketchTally; present iff sketch_enabled.
  kQuarantine = 7,  ///< Feed-side trace::QuarantineStats.
};

/// Human-readable section name ("?" for an unknown id).
[[nodiscard]] const char* section_name(std::uint32_t id) noexcept;

/// Cover metadata + the engine options the partial was produced under.
/// Two partials can merge only when every field but partition_id and
/// records agrees (fed/merge.h enforces it).
struct PartitionHeader {
  std::uint32_t partition_id = 0;
  std::uint32_t partition_count = 1;
  std::uint64_t epoch = 0;
  /// Records this partition's engine consumed (its owned range).
  std::uint64_t records = 0;
  /// Records the full feed offered (owned + filtered) — identical across
  /// every partition of one cover, which merge uses as a cheap
  /// same-feed check.
  std::uint64_t feed_records = 0;
  std::int32_t observation_days = 0;
  std::int32_t detailed_start_day = 0;
  std::int64_t usage_gap_s = 0;
  std::uint32_t long_tail_apps = 0;
  double signature_coverage = 1.0;
  std::uint8_t sketch_enabled = 0;
  /// splitmix64 fold over the (id, crc32) of every non-header section.
  std::uint64_t payload_checksum = 0;

  friend bool operator==(const PartitionHeader&,
                         const PartitionHeader&) = default;
};

/// One partition's mergeable snapshot state: what the file carries.
struct PartialSnapshot {
  PartitionHeader header;
  live::LiveSnapshot::TallySet tallies;
  /// Feed-side quarantine at snapshot time.  Every partition replays the
  /// same sanitized feed, so these are identical across a cover (merge
  /// checks that and carries one copy into the federated snapshot).
  trace::QuarantineStats feed_quarantine;
};

/// Packages one captured engine snapshot as the partial its partition
/// persists.  The snapshot must carry tallies (LiveOptions::
/// capture_tallies); `opt` supplies the engine options the cover check
/// compares (fed/merge.h).
[[nodiscard]] PartialSnapshot make_partial(const live::LiveSnapshot& snap,
                                           const live::LiveOptions& opt);

/// Encodes a partial snapshot into the WSFD byte layout.
[[nodiscard]] std::string encode_partial(const PartialSnapshot& partial);

/// Writes encode_partial() to `path` (via a temp file + rename, so a
/// crashed writer never leaves a torn partial behind a final name).
/// Throws util::IoError on filesystem failure.
void write_partial_file(const std::filesystem::path& path,
                        const PartialSnapshot& partial);

/// Strict decode: throws util::ParseError on any structural damage,
/// CRC mismatch, missing/duplicate section or checksum mismatch.
[[nodiscard]] PartialSnapshot decode_partial(std::span<const std::byte> bytes);

/// Lenient decode with skip-and-count quarantine (see the file comment
/// for the discipline).  Returns nullopt when the file is rejected
/// wholesale (one `corrupt_files`); otherwise sections lost individually
/// count `corrupt_blocks` and leave their tally default-initialized.
[[nodiscard]] std::optional<PartialSnapshot> read_partial_lenient(
    std::span<const std::byte> bytes, trace::QuarantineStats& quarantine);

/// Strict whole-file read through util::MappedFile.
[[nodiscard]] PartialSnapshot read_partial_file(
    const std::filesystem::path& path);

/// One section as seen by the audit scan (wearscope_inspect).
struct SectionAudit {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;       ///< File offset of the section header.
  std::uint32_t byte_length = 0;  ///< Claimed payload bytes.
  bool crc_ok = false;            ///< Stored CRC matches the payload.
  bool decode_ok = false;         ///< Payload decodes as its section type.
};

/// Operator-facing audit of one candidate partial file: never throws,
/// reports whatever structure survives.
struct PartialAudit {
  std::uint64_t file_bytes = 0;
  bool header_ok = false;  ///< File header + partition section intact.
  PartitionHeader header;  ///< Valid only when header_ok.
  bool checksum_ok = false;  ///< payload_checksum matches the sections.
  std::vector<SectionAudit> sections;
  /// What a lenient read of this file would quarantine.
  trace::QuarantineStats quarantine;
};

/// Scans `bytes` as a partial-snapshot file for audits.
[[nodiscard]] PartialAudit audit_partial(std::span<const std::byte> bytes);

/// Canonical partial file name: "part<i>of<N>_epoch<E>.wsfd".
[[nodiscard]] std::string partial_file_name(std::uint32_t partition_id,
                                            std::uint32_t partition_count,
                                            std::uint64_t epoch);

}  // namespace wearscope::fed
