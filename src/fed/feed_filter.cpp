#include "fed/feed_filter.h"

#include <fstream>
#include <span>
#include <string>

#include "par/shard.h"
#include "trace/block_io.h"
#include "trace/record_codec.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/mapped_file.h"
#include "util/span_decoder.h"

namespace wearscope::fed {

namespace {

/// Streams one blocked v2 log frame by frame: a 12-byte frame header, one
/// CRC check, one span decode per block, all through a reusable scratch
/// buffer — the file is never mapped or read whole.
template <typename Record>
class BlockStreamCursor {
 public:
  explicit BlockStreamCursor(const std::filesystem::path& path)
      : path_(path.string()), in_(path, std::ios::binary) {
    if (!in_.is_open()) {
      throw util::IoError("cannot open " + path_);
    }
    char header[kHeaderBytes] = {};
    in_.read(header, static_cast<std::streamsize>(kHeaderBytes));
    if (in_.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
      throw util::ParseError(path_ + ": truncated log header");
    }
    const std::uint16_t version = trace::read_log_header<Record>(
        std::as_bytes(std::span(header, kHeaderBytes)));
    if (version != trace::kBinaryFormatV2) {
      throw util::ParseError(
          path_ + ": partition feeds stream the blocked v2 format (log is "
                  "version " +
          std::to_string(version) + ")");
    }
  }

  /// The record at the cursor, or nullptr at a clean end of log.
  [[nodiscard]] const Record* peek() {
    while (idx_ >= block_.size()) {
      if (!refill()) return nullptr;
    }
    return &block_[idx_];
  }

  void advance() noexcept { ++idx_; }

 private:
  static constexpr std::size_t kHeaderBytes = 8;  ///< File header.

  /// Reads and decodes the next frame.  False on clean EOF; throws on a
  /// torn frame, CRC mismatch, malformed payload or an order violation.
  bool refill() {
    char fh[trace::kFrameHeaderBytes];
    in_.read(fh, sizeof fh);
    const std::streamsize got = in_.gcount();
    if (got == 0) return false;
    if (got != static_cast<std::streamsize>(sizeof fh)) {
      throw util::ParseError(path_ + ": truncated frame header");
    }
    util::MemorySpanDecoder header(std::as_bytes(std::span(fh, sizeof fh)));
    const std::uint32_t record_count = header.get_u32();
    const std::uint32_t byte_length = header.get_u32();
    const std::uint32_t crc = header.get_u32();
    if (record_count > byte_length) {
      throw util::ParseError(path_ + ": impossible frame header (" +
                             std::to_string(record_count) + " records in " +
                             std::to_string(byte_length) + " bytes)");
    }
    scratch_.resize(byte_length);
    in_.read(scratch_.data(), static_cast<std::streamsize>(byte_length));
    if (in_.gcount() != static_cast<std::streamsize>(byte_length)) {
      throw util::ParseError(path_ + ": truncated frame payload");
    }
    const std::span<const std::byte> payload =
        std::as_bytes(std::span(scratch_.data(), scratch_.size()));
    if (util::crc32(payload) != crc) {
      throw util::ParseError(path_ + ": frame CRC mismatch");
    }
    util::MemorySpanDecoder dec(payload);
    block_.resize(record_count);
    idx_ = 0;
    for (Record& r : block_) {
      trace::decode_record(dec, r);
      if (have_prev_ && trace::ByTimeThenUser{}(r, prev_)) {
        throw util::ParseError(
            path_ + ": log is not (time, user)-sorted — sort the bundle "
                    "before streaming a partition feed");
      }
      prev_.timestamp = r.timestamp;
      prev_.user_id = r.user_id;
      have_prev_ = true;
    }
    if (!dec.at_eof()) {
      throw util::ParseError(path_ + ": frame payload has trailing bytes");
    }
    return true;
  }

  std::string path_;
  std::ifstream in_;
  std::string scratch_;
  std::vector<Record> block_;
  std::size_t idx_ = 0;
  Record prev_{};
  bool have_prev_ = false;
};

/// Appends one unit of `kind` to the run-length op stream.
void append_op(std::vector<std::uint32_t>& ops, FeedOp kind) {
  const std::uint32_t tag = static_cast<std::uint32_t>(kind)
                            << kFeedOpCountBits;
  if (!ops.empty() && (ops.back() & ~kFeedOpMaxRun) == tag &&
      feed_op_count(ops.back()) < kFeedOpMaxRun) {
    ++ops.back();
    return;
  }
  ops.push_back(tag | 1u);
}

}  // namespace

PartitionFeed load_partition_feed(const std::filesystem::path& dir,
                                  std::size_t partition_id,
                                  std::size_t partition_count) {
  util::require(partition_count >= 1 && partition_id < partition_count,
                "load_partition_feed: partition id out of range");
  PartitionFeed feed;
  feed.partition_id = static_cast<std::uint32_t>(partition_id);
  feed.partition_count = static_cast<std::uint32_t>(partition_count);
  {
    const util::MappedFile devices(dir / "devices.bin",
                                   util::MapMode::kReadWholeFile);
    feed.devices = trace::read_binary_log<trace::DeviceRecord>(
        devices.bytes());
  }

  BlockStreamCursor<trace::ProxyRecord> proxy(dir / "proxy.bin");
  BlockStreamCursor<trace::MmeRecord> mme(dir / "mme.bin");
  const trace::ProxyRecord* p = proxy.peek();
  const trace::MmeRecord* m = mme.peek();
  while (p != nullptr || m != nullptr) {
    // FeedReplayer's merge rule exactly: MME before proxy on equal stamps.
    const bool take_mme =
        m != nullptr && (p == nullptr || m->timestamp <= p->timestamp);
    if (take_mme) {
      if (par::shard_of(m->user_id, partition_count) == partition_id) {
        feed.mme.push_back(*m);
        append_op(feed.ops, FeedOp::kPushMme);
      } else {
        append_op(feed.ops, FeedOp::kSkipMme);
      }
      mme.advance();
      m = mme.peek();
    } else {
      if (par::shard_of(p->user_id, partition_count) == partition_id) {
        feed.proxy.push_back(*p);
        append_op(feed.ops, FeedOp::kPushProxy);
      } else {
        append_op(feed.ops, FeedOp::kSkipProxy);
      }
      proxy.advance();
      p = proxy.peek();
    }
    ++feed.feed_records;
  }
  return feed;
}

void replay_partition_feed(const PartitionFeed& feed,
                           live::LiveEngine& engine) {
  util::require(
      engine.options().partition_id == feed.partition_id &&
          engine.options().partition_count == feed.partition_count,
      "replay_partition_feed: engine partition does not match the feed");
  std::size_t pi = 0;
  std::size_t mi = 0;
  for (const std::uint32_t op : feed.ops) {
    const std::uint32_t n = feed_op_count(op);
    switch (feed_op_kind(op)) {
      case FeedOp::kPushProxy:
        util::ensure(pi + n <= feed.proxy.size(),
                     "partition feed ops overrun the owned proxy records");
        for (std::uint32_t k = 0; k < n; ++k) {
          util::ensure(engine.push(feed.proxy[pi++]),
                       "live engine closed mid-replay");
        }
        break;
      case FeedOp::kPushMme:
        util::ensure(mi + n <= feed.mme.size(),
                     "partition feed ops overrun the owned MME records");
        for (std::uint32_t k = 0; k < n; ++k) {
          util::ensure(engine.push(feed.mme[mi++]),
                       "live engine closed mid-replay");
        }
        break;
      case FeedOp::kSkipProxy:
        engine.skip_unowned(n, 0);
        break;
      case FeedOp::kSkipMme:
        engine.skip_unowned(0, n);
        break;
    }
  }
  util::ensure(pi == feed.proxy.size() && mi == feed.mme.size(),
               "partition feed ops do not cover the owned records");
}

}  // namespace wearscope::fed
