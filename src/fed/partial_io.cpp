#include "fed/partial_io.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <utility>

#include "live/engine.h"
#include "trace/block_io.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/mapped_file.h"
#include "util/rng.h"
#include "util/span_decoder.h"

namespace wearscope::fed {

namespace {

/// Section ids every partial must carry (kSketch joins when enabled).
constexpr std::uint32_t kRequiredSections[] = {
    static_cast<std::uint32_t>(SectionId::kAdoption),
    static_cast<std::uint32_t>(SectionId::kActivity),
    static_cast<std::uint32_t>(SectionId::kApps),
    static_cast<std::uint32_t>(SectionId::kSectors),
    static_cast<std::uint32_t>(SectionId::kQuarantine),
};

[[nodiscard]] std::uint64_t fold_checksum(std::uint64_t fold, std::uint32_t id,
                                          std::uint32_t crc) {
  return util::splitmix64(fold ^ ((std::uint64_t{id} << 32) | crc));
}

[[nodiscard]] std::uint32_t payload_crc(std::string_view payload) {
  return util::crc32(std::as_bytes(std::span(payload.data(), payload.size())));
}

// --- Section encoders ----------------------------------------------------
// Every map is emitted in sorted key order: the bytes are a function of
// the logical state alone, never of hash iteration.

void encode_header(trace::BufferEncoder& enc, const PartitionHeader& h) {
  enc.put_u32(h.partition_id);
  enc.put_u32(h.partition_count);
  enc.put_u64(h.epoch);
  enc.put_u64(h.records);
  enc.put_u64(h.feed_records);
  enc.put_i64(h.observation_days);
  enc.put_i64(h.detailed_start_day);
  enc.put_i64(h.usage_gap_s);
  enc.put_u32(h.long_tail_apps);
  enc.put_f64(h.signature_coverage);
  enc.put_u8(h.sketch_enabled);
  enc.put_u64(h.payload_checksum);
}

void encode_adoption(trace::BufferEncoder& enc,
                     const core::AdoptionTally& tally) {
  enc.put_i64(tally.observation_days);
  enc.put_u64(tally.consumed);
  enc.put_u64(tally.daily_counts.size());
  for (const std::size_t count : tally.daily_counts) enc.put_u64(count);
  enc.put_u64(tally.ever_registered);
  enc.put_u64(tally.ever_transacted);
  enc.put_u64(tally.first_week);
  enc.put_u64(tally.last_week);
  enc.put_u64(tally.both_weeks);
}

template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  // Key collection is order-free; the sort below canonicalizes.
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void encode_activity(trace::BufferEncoder& enc,
                     const core::ActivityTally& tally) {
  enc.put_i64(tally.observation_days);
  enc.put_i64(tally.detailed_start_day);
  enc.put_u64(tally.users.size());
  for (const trace::UserId user : sorted_keys(tally.users)) {
    const core::ActivityTally::UserActivity& act = tally.users.at(user);
    enc.put_u64(user);
    enc.put_u64(act.day_hours.size());
    for (const auto& [day, hours] : act.day_hours) {
      enc.put_i64(day);
      enc.put_u64(hours.size());
      for (const int hour : hours) enc.put_i64(hour);
    }
    enc.put_u64(act.hour_txns.size());
    for (const int slot : sorted_keys(act.hour_txns)) {
      enc.put_i64(slot);
      enc.put_f64(act.hour_txns.at(slot));
    }
    enc.put_u64(act.hour_bytes.size());
    for (const int slot : sorted_keys(act.hour_bytes)) {
      enc.put_i64(slot);
      enc.put_f64(act.hour_bytes.at(slot));
    }
  }
  enc.put_u64(tally.first_seen.size());
  for (const trace::UserId user : sorted_keys(tally.first_seen)) {
    enc.put_u64(user);
    enc.put_u64(tally.first_seen.at(user));
  }
  enc.put_u64(tally.txn_sizes.size());
  for (const double size : tally.txn_sizes) enc.put_f64(size);
}

void encode_apps(trace::BufferEncoder& enc, const live::AppTally& tally) {
  for (const std::uint64_t txns : tally.class_txns) enc.put_u64(txns);
  enc.put_u64(tally.apps.size());
  for (const appdb::AppId app : sorted_keys(tally.apps)) {
    const live::AppTally::Counter& c = tally.apps.at(app);
    enc.put_u32(app);
    enc.put_u64(c.transactions);
    enc.put_u64(c.bytes);
    enc.put_u64(c.usages);
    enc.put_u64(c.distinct_users);
  }
}

void encode_sectors(trace::BufferEncoder& enc, const live::SectorTally& tally) {
  enc.put_u64(tally.sectors.size());
  for (const trace::SectorId sector : sorted_keys(tally.sectors)) {
    const live::SectorTally::Counter& c = tally.sectors.at(sector);
    enc.put_u32(sector);
    enc.put_u64(c.events);
    enc.put_u64(c.attaches);
    enc.put_u64(c.handovers);
    enc.put_u64(c.wearable_events);
    enc.put_u64(c.distinct_users);
    enc.put_u64(c.wearable_users);
  }
}

void encode_hll(trace::BufferEncoder& enc, const sketch::Hll& hll) {
  const std::vector<std::uint8_t>& regs = hll.registers();
  enc.put_u64(regs.size());
  for (const std::uint8_t r : regs) enc.put_u8(r);
}

void encode_sketch(trace::BufferEncoder& enc, const live::SketchTally& tally) {
  encode_hll(enc, tally.registered_users);
  encode_hll(enc, tally.transacting_users);
  const sketch::TDigestState digest = tally.txn_sizes.state();
  enc.put_f64(digest.compression);
  enc.put_u8(digest.empty ? 1 : 0);
  enc.put_f64(digest.min);
  enc.put_f64(digest.max);
  enc.put_u64(digest.means.size());
  for (std::size_t i = 0; i < digest.means.size(); ++i) {
    enc.put_f64(digest.means[i]);
    enc.put_f64(digest.weights[i]);
  }
  enc.put_u64(tally.apps.capacity());
  const sketch::CountMin& counts = tally.apps.counters();
  enc.put_u64(counts.depth());
  enc.put_u64(counts.width());
  for (const std::uint64_t counter : counts.table()) enc.put_u64(counter);
  const auto candidates = tally.apps.sorted_candidates();
  enc.put_u64(candidates.size());
  for (const auto& [key, count] : candidates) {
    enc.put_string(key);
    enc.put_u64(count);
  }
}

void encode_quarantine(trace::BufferEncoder& enc,
                       const trace::QuarantineStats& q) {
  enc.put_u64(q.corrupt_files);
  enc.put_u64(q.corrupt_tails);
  enc.put_u64(q.corrupt_blocks);
  enc.put_u64(q.corrupt_rows);
  enc.put_u64(q.duplicates);
  enc.put_u64(q.regressions);
  enc.put_u64(q.unknown_tac);
  enc.put_u64(q.bad_host);
  enc.put_u64(q.reordered);
  enc.put_u64(q.transient_retries);
  enc.put_u64(q.dropped_after_retry);
}

// --- Section decoders ----------------------------------------------------
// All throw util::ParseError (via MemorySpanDecoder) on damage; each must
// consume its payload exactly.

void finish_section(util::MemorySpanDecoder& dec, const char* what) {
  if (!dec.at_eof()) {
    throw util::ParseError(std::string("partial snapshot: trailing bytes in ") +
                           what + " section");
  }
}

[[nodiscard]] PartitionHeader decode_header(std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  PartitionHeader h;
  h.partition_id = dec.get_u32();
  h.partition_count = dec.get_u32();
  h.epoch = dec.get_u64();
  h.records = dec.get_u64();
  h.feed_records = dec.get_u64();
  h.observation_days = static_cast<std::int32_t>(dec.get_i64());
  h.detailed_start_day = static_cast<std::int32_t>(dec.get_i64());
  h.usage_gap_s = dec.get_i64();
  h.long_tail_apps = dec.get_u32();
  h.signature_coverage = dec.get_f64();
  h.sketch_enabled = dec.get_u8();
  h.payload_checksum = dec.get_u64();
  finish_section(dec, "partition");
  if (h.partition_count == 0 || h.partition_id >= h.partition_count) {
    throw util::ParseError("partial snapshot: partition id out of range");
  }
  return h;
}

[[nodiscard]] core::AdoptionTally decode_adoption(
    std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  core::AdoptionTally tally;
  tally.observation_days = static_cast<int>(dec.get_i64());
  tally.consumed = dec.get_u64();
  const std::uint64_t days = dec.get_u64();
  if (days > dec.remaining() / 8) {
    throw util::ParseError("partial snapshot: impossible daily-count length");
  }
  tally.daily_counts.reserve(days);
  for (std::uint64_t d = 0; d < days; ++d) {
    tally.daily_counts.push_back(static_cast<std::size_t>(dec.get_u64()));
  }
  tally.ever_registered = static_cast<std::size_t>(dec.get_u64());
  tally.ever_transacted = static_cast<std::size_t>(dec.get_u64());
  tally.first_week = static_cast<std::size_t>(dec.get_u64());
  tally.last_week = static_cast<std::size_t>(dec.get_u64());
  tally.both_weeks = static_cast<std::size_t>(dec.get_u64());
  finish_section(dec, "adoption");
  return tally;
}

[[nodiscard]] core::ActivityTally decode_activity(
    std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  core::ActivityTally tally;
  tally.observation_days = static_cast<int>(dec.get_i64());
  tally.detailed_start_day = static_cast<int>(dec.get_i64());
  const std::uint64_t users = dec.get_u64();
  for (std::uint64_t u = 0; u < users; ++u) {
    const trace::UserId user = dec.get_u64();
    core::ActivityTally::UserActivity& act = tally.users[user];
    const std::uint64_t days = dec.get_u64();
    for (std::uint64_t d = 0; d < days; ++d) {
      const int day = static_cast<int>(dec.get_i64());
      const std::uint64_t hours = dec.get_u64();
      std::set<int>& slot = act.day_hours[day];
      for (std::uint64_t i = 0; i < hours; ++i) {
        slot.insert(static_cast<int>(dec.get_i64()));
      }
    }
    const std::uint64_t txn_slots = dec.get_u64();
    for (std::uint64_t i = 0; i < txn_slots; ++i) {
      const int slot = static_cast<int>(dec.get_i64());
      act.hour_txns[slot] = dec.get_f64();
    }
    const std::uint64_t byte_slots = dec.get_u64();
    for (std::uint64_t i = 0; i < byte_slots; ++i) {
      const int slot = static_cast<int>(dec.get_i64());
      act.hour_bytes[slot] = dec.get_f64();
    }
  }
  const std::uint64_t seen = dec.get_u64();
  for (std::uint64_t i = 0; i < seen; ++i) {
    const trace::UserId user = dec.get_u64();
    tally.first_seen[user] = dec.get_u64();
  }
  const std::uint64_t sizes = dec.get_u64();
  if (sizes > dec.remaining() / 8) {
    throw util::ParseError("partial snapshot: impossible txn-size length");
  }
  tally.txn_sizes.reserve(sizes);
  for (std::uint64_t i = 0; i < sizes; ++i) {
    tally.txn_sizes.push_back(dec.get_f64());
  }
  finish_section(dec, "activity");
  return tally;
}

[[nodiscard]] live::AppTally decode_apps(std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  live::AppTally tally;
  for (std::uint64_t& txns : tally.class_txns) txns = dec.get_u64();
  const std::uint64_t apps = dec.get_u64();
  for (std::uint64_t a = 0; a < apps; ++a) {
    const appdb::AppId app = dec.get_u32();
    live::AppTally::Counter& c = tally.apps[app];
    c.transactions = dec.get_u64();
    c.bytes = dec.get_u64();
    c.usages = dec.get_u64();
    c.distinct_users = dec.get_u64();
  }
  finish_section(dec, "apps");
  return tally;
}

[[nodiscard]] live::SectorTally decode_sectors(
    std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  live::SectorTally tally;
  const std::uint64_t sectors = dec.get_u64();
  for (std::uint64_t s = 0; s < sectors; ++s) {
    const trace::SectorId sector = dec.get_u32();
    live::SectorTally::Counter& c = tally.sectors[sector];
    c.events = dec.get_u64();
    c.attaches = dec.get_u64();
    c.handovers = dec.get_u64();
    c.wearable_events = dec.get_u64();
    c.distinct_users = dec.get_u64();
    c.wearable_users = dec.get_u64();
  }
  finish_section(dec, "sectors");
  return tally;
}

[[nodiscard]] sketch::Hll decode_hll(util::MemorySpanDecoder& dec) {
  const std::uint64_t size = dec.get_u64();
  if (size > dec.remaining()) {
    throw util::ParseError("partial snapshot: impossible HLL register count");
  }
  std::vector<std::uint8_t> registers;
  registers.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) registers.push_back(dec.get_u8());
  try {
    return sketch::Hll::from_registers(std::move(registers));
  } catch (const util::ConfigError& e) {
    throw util::ParseError(e.what());
  }
}

[[nodiscard]] live::SketchTally decode_sketch(
    std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  live::SketchTally tally;
  tally.enabled = true;
  tally.registered_users = decode_hll(dec);
  tally.transacting_users = decode_hll(dec);
  sketch::TDigestState digest;
  digest.compression = dec.get_f64();
  digest.empty = dec.get_u8() != 0;
  digest.min = dec.get_f64();
  digest.max = dec.get_f64();
  const std::uint64_t centroids = dec.get_u64();
  if (centroids > dec.remaining() / 16) {
    throw util::ParseError("partial snapshot: impossible centroid count");
  }
  digest.means.reserve(centroids);
  digest.weights.reserve(centroids);
  for (std::uint64_t i = 0; i < centroids; ++i) {
    digest.means.push_back(dec.get_f64());
    digest.weights.push_back(dec.get_f64());
  }
  const std::uint64_t capacity = dec.get_u64();
  const std::uint64_t depth = dec.get_u64();
  const std::uint64_t width = dec.get_u64();
  if (depth > 64 || width > (std::uint64_t{1} << 24) ||
      depth * width > dec.remaining() / 8) {
    throw util::ParseError("partial snapshot: impossible count-min shape");
  }
  std::vector<std::uint64_t> table;
  table.reserve(depth * width);
  for (std::uint64_t i = 0; i < depth * width; ++i) {
    table.push_back(dec.get_u64());
  }
  const std::uint64_t candidates = dec.get_u64();
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  entries.reserve(std::min<std::uint64_t>(candidates, 1 << 16));
  for (std::uint64_t i = 0; i < candidates; ++i) {
    std::string key = dec.get_string();
    const std::uint64_t count = dec.get_u64();
    entries.emplace_back(std::move(key), count);
  }
  finish_section(dec, "sketch");
  try {
    tally.txn_sizes = sketch::TDigest::from_state(digest);
    tally.apps = sketch::HeavyHitters::from_state(
        static_cast<std::size_t>(capacity),
        sketch::CountMin::from_table(static_cast<std::size_t>(depth),
                                     static_cast<std::size_t>(width),
                                     std::move(table)),
        std::move(entries));
  } catch (const util::ConfigError& e) {
    throw util::ParseError(e.what());
  }
  return tally;
}

[[nodiscard]] trace::QuarantineStats decode_quarantine(
    std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  trace::QuarantineStats q;
  q.corrupt_files = dec.get_u64();
  q.corrupt_tails = dec.get_u64();
  q.corrupt_blocks = dec.get_u64();
  q.corrupt_rows = dec.get_u64();
  q.duplicates = dec.get_u64();
  q.regressions = dec.get_u64();
  q.unknown_tac = dec.get_u64();
  q.bad_host = dec.get_u64();
  q.reordered = dec.get_u64();
  q.transient_retries = dec.get_u64();
  q.dropped_after_retry = dec.get_u64();
  finish_section(dec, "quarantine");
  return q;
}

/// Applies one decoded non-header section to `out`.  Throws ParseError on
/// a malformed payload.
void apply_section(std::uint32_t id, std::span<const std::byte> payload,
                   PartialSnapshot& out) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kAdoption:
      out.tallies.adoption = decode_adoption(payload);
      break;
    case SectionId::kActivity:
      out.tallies.activity = decode_activity(payload);
      break;
    case SectionId::kApps:
      out.tallies.apps = decode_apps(payload);
      break;
    case SectionId::kSectors:
      out.tallies.sectors = decode_sectors(payload);
      break;
    case SectionId::kSketch:
      out.tallies.sketch = decode_sketch(payload);
      break;
    case SectionId::kQuarantine:
      out.feed_quarantine = decode_quarantine(payload);
      break;
    default:
      break;  // Unknown ids skip silently (forward compatibility).
  }
}

/// One chain entry as located by the section scan.
struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;  ///< File offset of the section header.
  std::uint32_t crc = 0;
  std::span<const std::byte> payload;
  bool crc_ok = false;
};

/// Scans the section chain after the file header.  `broken_tail` is set
/// when the chain ends mid-header or mid-payload (the remaining bytes are
/// unreadable); entries before the break are still returned.
struct SectionScan {
  std::vector<SectionEntry> entries;
  bool broken_tail = false;
};

[[nodiscard]] SectionScan scan_sections(std::span<const std::byte> bytes) {
  SectionScan scan;
  std::size_t offset = kPartialFileHeaderBytes;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kSectionHeaderBytes) {
      scan.broken_tail = true;
      break;
    }
    util::MemorySpanDecoder dec(bytes.subspan(offset, kSectionHeaderBytes));
    SectionEntry entry;
    entry.id = dec.get_u32();
    const std::uint32_t byte_length = dec.get_u32();
    entry.crc = dec.get_u32();
    entry.offset = offset;
    offset += kSectionHeaderBytes;
    if (bytes.size() - offset < byte_length) {
      scan.broken_tail = true;
      break;
    }
    entry.payload = bytes.subspan(offset, byte_length);
    offset += byte_length;
    entry.crc_ok = util::crc32(entry.payload) == entry.crc;
    scan.entries.push_back(entry);
  }
  return scan;
}

/// Validates the 8-byte file header.  Returns false on a short buffer,
/// wrong magic or unknown version.
[[nodiscard]] bool check_file_header(std::span<const std::byte> bytes) {
  if (bytes.size() < kPartialFileHeaderBytes) return false;
  util::MemorySpanDecoder dec(bytes.first(kPartialFileHeaderBytes));
  if (dec.get_u32() != kPartialMagic) return false;
  if (dec.get_u16() != kPartialVersion) return false;
  (void)dec.get_u16();  // reserved
  return true;
}

[[nodiscard]] std::uint64_t checksum_of(
    const std::vector<SectionEntry>& entries) {
  std::uint64_t fold = kPartialMagic;
  for (const SectionEntry& entry : entries) {
    if (entry.id == static_cast<std::uint32_t>(SectionId::kPartition)) {
      continue;
    }
    fold = fold_checksum(fold, entry.id, entry.crc);
  }
  return fold;
}

/// The ids a complete partial must carry besides the partition header.
[[nodiscard]] std::vector<std::uint32_t> expected_sections(
    const PartitionHeader& header) {
  std::vector<std::uint32_t> expected(std::begin(kRequiredSections),
                                      std::end(kRequiredSections));
  if (header.sketch_enabled != 0) {
    expected.push_back(static_cast<std::uint32_t>(SectionId::kSketch));
  }
  std::sort(expected.begin(), expected.end());
  return expected;
}

}  // namespace

const char* section_name(std::uint32_t id) noexcept {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kPartition: return "partition";
    case SectionId::kAdoption: return "adoption";
    case SectionId::kActivity: return "activity";
    case SectionId::kApps: return "apps";
    case SectionId::kSectors: return "sectors";
    case SectionId::kSketch: return "sketch";
    case SectionId::kQuarantine: return "quarantine";
  }
  return "?";
}

std::string encode_partial(const PartialSnapshot& partial) {
  // Encode the non-header sections first: the partition header carries
  // their checksum fold, so it is sealed last.
  struct Pending {
    std::uint32_t id = 0;
    std::string payload;
  };
  std::vector<Pending> sections;
  const auto add = [&sections](SectionId id, auto&& encode) {
    Pending pending{static_cast<std::uint32_t>(id), {}};
    trace::BufferEncoder enc(pending.payload);
    encode(enc);
    sections.push_back(std::move(pending));
  };
  add(SectionId::kAdoption, [&](trace::BufferEncoder& enc) {
    encode_adoption(enc, partial.tallies.adoption);
  });
  add(SectionId::kActivity, [&](trace::BufferEncoder& enc) {
    encode_activity(enc, partial.tallies.activity);
  });
  add(SectionId::kApps, [&](trace::BufferEncoder& enc) {
    encode_apps(enc, partial.tallies.apps);
  });
  add(SectionId::kSectors, [&](trace::BufferEncoder& enc) {
    encode_sectors(enc, partial.tallies.sectors);
  });
  if (partial.header.sketch_enabled != 0) {
    add(SectionId::kSketch, [&](trace::BufferEncoder& enc) {
      encode_sketch(enc, partial.tallies.sketch);
    });
  }
  add(SectionId::kQuarantine, [&](trace::BufferEncoder& enc) {
    encode_quarantine(enc, partial.feed_quarantine);
  });

  std::uint64_t fold = kPartialMagic;
  std::vector<std::uint32_t> crcs;
  crcs.reserve(sections.size());
  for (const Pending& section : sections) {
    const std::uint32_t crc = payload_crc(section.payload);
    crcs.push_back(crc);
    fold = fold_checksum(fold, section.id, crc);
  }

  PartitionHeader header = partial.header;
  header.payload_checksum = fold;
  std::string header_payload;
  {
    trace::BufferEncoder enc(header_payload);
    encode_header(enc, header);
  }

  std::string out;
  trace::BufferEncoder enc(out);
  enc.put_u32(kPartialMagic);
  enc.put_u16(kPartialVersion);
  enc.put_u16(0);  // reserved
  const auto frame = [&enc, &out](std::uint32_t id, const std::string& payload,
                                  std::uint32_t crc) {
    enc.put_u32(id);
    enc.put_u32(static_cast<std::uint32_t>(payload.size()));
    enc.put_u32(crc);
    out.append(payload);
  };
  frame(static_cast<std::uint32_t>(SectionId::kPartition), header_payload,
        payload_crc(header_payload));
  for (std::size_t i = 0; i < sections.size(); ++i) {
    frame(sections[i].id, sections[i].payload, crcs[i]);
  }
  return out;
}

void write_partial_file(const std::filesystem::path& path,
                        const PartialSnapshot& partial) {
  const std::string bytes = encode_partial(partial);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw util::IoError("cannot open partial snapshot file " + tmp.string());
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw util::IoError("short write to partial snapshot file " +
                          tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::IoError("cannot publish partial snapshot file " +
                        path.string() + ": " + ec.message());
  }
}

PartialSnapshot decode_partial(std::span<const std::byte> bytes) {
  if (!check_file_header(bytes)) {
    throw util::ParseError("partial snapshot: bad file header");
  }
  const SectionScan scan = scan_sections(bytes);
  if (scan.broken_tail) {
    throw util::ParseError("partial snapshot: truncated section chain");
  }
  if (scan.entries.empty()) {
    throw util::ParseError("partial snapshot: no sections");
  }
  const SectionEntry& first = scan.entries.front();
  if (first.id != static_cast<std::uint32_t>(SectionId::kPartition)) {
    throw util::ParseError(
        "partial snapshot: partition header is not the first section");
  }
  std::uint32_t prev_id = 0;
  for (const SectionEntry& entry : scan.entries) {
    if (!entry.crc_ok) {
      throw util::ParseError(std::string("partial snapshot: CRC mismatch in ") +
                             section_name(entry.id) + " section");
    }
    if (entry.id <= prev_id) {
      throw util::ParseError(
          "partial snapshot: duplicate or out-of-order section");
    }
    prev_id = entry.id;
  }

  PartialSnapshot out;
  out.header = decode_header(first.payload);
  if (checksum_of(scan.entries) != out.header.payload_checksum) {
    throw util::ParseError("partial snapshot: payload checksum mismatch");
  }
  std::vector<std::uint32_t> present;
  for (std::size_t i = 1; i < scan.entries.size(); ++i) {
    apply_section(scan.entries[i].id, scan.entries[i].payload, out);
    present.push_back(scan.entries[i].id);
  }
  for (const std::uint32_t id : expected_sections(out.header)) {
    if (std::find(present.begin(), present.end(), id) == present.end()) {
      throw util::ParseError(std::string("partial snapshot: missing ") +
                             section_name(id) + " section");
    }
  }
  return out;
}

std::optional<PartialSnapshot> read_partial_lenient(
    std::span<const std::byte> bytes, trace::QuarantineStats& quarantine) {
  if (!check_file_header(bytes)) {
    quarantine.corrupt_files += 1;
    return std::nullopt;
  }
  const SectionScan scan = scan_sections(bytes);

  // The partition header is the file's meaning: without an intact,
  // decodable copy the cover metadata cannot be trusted and the whole
  // file is rejected.
  PartialSnapshot out;
  bool have_header = false;
  for (const SectionEntry& entry : scan.entries) {
    if (entry.id != static_cast<std::uint32_t>(SectionId::kPartition)) {
      continue;
    }
    if (!entry.crc_ok) break;
    try {
      out.header = decode_header(entry.payload);
      have_header = true;
      // Accounted below: !have_header counts one corrupt_files.
      // wearscope-lint: allow(quarantine-pairing)
    } catch (const util::ParseError&) {
    }
    break;
  }
  if (!have_header) {
    quarantine.corrupt_files += 1;
    return std::nullopt;
  }

  // Recover every other section independently: damage is section-granular
  // and the byte_length chain resyncs past a bad payload.
  std::vector<std::uint32_t> recovered;
  std::uint64_t damaged = 0;
  for (const SectionEntry& entry : scan.entries) {
    if (entry.id == static_cast<std::uint32_t>(SectionId::kPartition)) {
      continue;
    }
    const bool duplicate =
        std::find(recovered.begin(), recovered.end(), entry.id) !=
        recovered.end();
    if (duplicate) continue;  // First instance wins.
    if (!entry.crc_ok) {
      damaged += 1;
      continue;
    }
    try {
      apply_section(entry.id, entry.payload, out);
      recovered.push_back(entry.id);
      // `damaged` folds into quarantine.corrupt_blocks below.
      // wearscope-lint: allow(quarantine-pairing)
    } catch (const util::ParseError&) {
      damaged += 1;
    }
  }
  // Expected sections that never decoded count one block each (the
  // damaged instances above are those same losses, so take the max to
  // avoid double counting a section that is both present and broken).
  std::uint64_t missing = 0;
  for (const std::uint32_t id : expected_sections(out.header)) {
    if (std::find(recovered.begin(), recovered.end(), id) == recovered.end()) {
      missing += 1;
    }
  }
  const std::uint64_t lost = std::max(missing, damaged);
  quarantine.corrupt_blocks += lost;

  if (lost == 0 && !scan.broken_tail &&
      checksum_of(scan.entries) != out.header.payload_checksum) {
    // Sections all verify individually but the *set* is not the one the
    // writer sealed (e.g. a section was cleanly spliced out and the
    // header re-written, or mixed files): reject — the cover cannot be
    // trusted.
    quarantine.corrupt_files += 1;
    return std::nullopt;
  }
  if (scan.broken_tail && lost == 0) {
    // Trailing garbage after every expected section was recovered.
    quarantine.corrupt_blocks += 1;
  }
  return out;
}

PartialSnapshot read_partial_file(const std::filesystem::path& path) {
  const util::MappedFile file(path);
  return decode_partial(file.bytes());
}

PartialAudit audit_partial(std::span<const std::byte> bytes) {
  PartialAudit audit;
  audit.file_bytes = bytes.size();
  trace::QuarantineStats quarantine;
  const std::optional<PartialSnapshot> partial =
      read_partial_lenient(bytes, quarantine);
  audit.quarantine = quarantine;
  if (!check_file_header(bytes)) return audit;

  const SectionScan scan = scan_sections(bytes);
  for (const SectionEntry& entry : scan.entries) {
    SectionAudit section;
    section.id = entry.id;
    section.offset = entry.offset;
    section.byte_length = static_cast<std::uint32_t>(entry.payload.size());
    section.crc_ok = entry.crc_ok;
    if (entry.crc_ok) {
      try {
        if (entry.id == static_cast<std::uint32_t>(SectionId::kPartition)) {
          (void)decode_header(entry.payload);
        } else {
          PartialSnapshot scratch;
          apply_section(entry.id, entry.payload, scratch);
        }
        section.decode_ok = true;
        // Audit accounting rides in audit.quarantine (the lenient read
        // above); this probe only fills decode_ok.
        // wearscope-lint: allow(quarantine-pairing)
      } catch (const util::ParseError&) {
      }
    }
    audit.sections.push_back(section);
  }
  if (partial.has_value()) {
    audit.header_ok = true;
    audit.header = partial->header;
    audit.checksum_ok =
        checksum_of(scan.entries) == partial->header.payload_checksum;
  }
  return audit;
}

PartialSnapshot make_partial(const live::LiveSnapshot& snap,
                             const live::LiveOptions& opt) {
  util::ensure(snap.tallies != nullptr,
               "make_partial requires capture_tallies snapshots");
  PartialSnapshot partial;
  partial.header.partition_id = static_cast<std::uint32_t>(opt.partition_id);
  partial.header.partition_count =
      static_cast<std::uint32_t>(opt.partition_count);
  partial.header.epoch = snap.epoch;
  partial.header.records = snap.records;
  partial.header.feed_records = snap.feed_records;
  partial.header.observation_days = opt.observation_days;
  partial.header.detailed_start_day = opt.detailed_start_day;
  partial.header.usage_gap_s = opt.usage_gap_s;
  partial.header.long_tail_apps = opt.long_tail_apps;
  partial.header.signature_coverage = opt.signature_coverage;
  partial.header.sketch_enabled = opt.sketch_aggregates ? 1 : 0;
  partial.tallies = *snap.tallies;
  partial.feed_quarantine = snap.quarantine;
  return partial;
}

std::string partial_file_name(std::uint32_t partition_id,
                              std::uint32_t partition_count,
                              std::uint64_t epoch) {
  return "part" + std::to_string(partition_id) + "of" +
         std::to_string(partition_count) + "_epoch" + std::to_string(epoch) +
         ".wsfd";
}

}  // namespace wearscope::fed
