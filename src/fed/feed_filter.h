// Streaming, partition-filtered bundle loader for federated ingest.
//
// A partition process of an N-way cover owns 1/N of the users, but the
// on-disk bundle interleaves everyone.  Materializing the whole
// TraceStore just to filter it at the router forfeits the memory win of
// partitioning: the full capture sits resident in every worker.
// load_partition_feed instead streams the blocked v2 logs one
// CRC-checked frame at a time through a reusable scratch buffer, keeps
// only the records par::shard_of assigns to this partition, and records
// everything else as run-length skip ops — peak memory is
// O(owned records + one block), not O(feed).
//
// Equivalence contract: replay_partition_feed() drives a LiveEngine to a
// state bitwise identical to FeedReplayer over the full time-sorted
// store with router-side filtering.  Three pieces make that hold:
//   * the merge order is FeedReplayer's exactly — ascending timestamp,
//     MME before proxy on ties, each log already in (time, user) order.
//     The loader verifies that order as it streams; an unsorted bundle
//     is a hard error, never a silent reorder;
//   * a skip run advances the router's proxy sequence and feed counters
//     through IngestRouter::skip_unowned, which is arithmetically
//     identical to the same records being route()-filtered — owned
//     records carry the same global stream stamps either way;
//   * the ops replay in feed order, so pushes and skips interleave
//     exactly as the unfiltered feed would.
//
// The loader is strict (util::ParseError on any damage): a partition
// worker feeds a bundle that wearscope_live's sanitize/chaos front end
// has already fixed up; a damaged capture belongs in the lenient bundle
// reader, not here.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "live/engine.h"
#include "trace/records.h"

namespace wearscope::fed {

/// Feed-script op kinds packed into PartitionFeed::ops elements.
enum class FeedOp : std::uint32_t {
  kPushProxy = 0,  ///< Push the next `count` owned proxy records.
  kPushMme = 1,    ///< Push the next `count` owned MME records.
  kSkipProxy = 2,  ///< `count` proxy records owned by other partitions.
  kSkipMme = 3,    ///< `count` MME records owned by other partitions.
};

/// Low bits of one op hold the run length; the top two hold the kind.
inline constexpr std::uint32_t kFeedOpCountBits = 30;
inline constexpr std::uint32_t kFeedOpMaxRun = (1u << kFeedOpCountBits) - 1;

[[nodiscard]] constexpr FeedOp feed_op_kind(std::uint32_t op) noexcept {
  return static_cast<FeedOp>(op >> kFeedOpCountBits);
}
[[nodiscard]] constexpr std::uint32_t feed_op_count(std::uint32_t op) noexcept {
  return op & kFeedOpMaxRun;
}

/// One bundle reduced to what a single partition must feed its engine.
struct PartitionFeed {
  std::uint32_t partition_id = 0;
  std::uint32_t partition_count = 1;
  std::vector<trace::ProxyRecord> proxy;  ///< Owned records, feed order.
  std::vector<trace::MmeRecord> mme;      ///< Owned records, feed order.
  /// Run-length feed script (see FeedOp): replaying the ops in order
  /// reconstructs the exact single-process interleaving of pushes and
  /// filtered records.
  std::vector<std::uint32_t> ops;
  std::vector<trace::DeviceRecord> devices;  ///< For the classifier.
  /// Full feed length (owned + skipped) — identical across every
  /// partition of one cover.
  std::uint64_t feed_records = 0;
};

/// Streams `dir`'s proxy.bin and mme.bin (blocked v2 format required —
/// v1/v3 and CSV bundles must go through the materializing path) and
/// returns the partition's filtered feed.  devices.bin loads whole (it is
/// small and every partition needs all of it).  Throws util::IoError on
/// missing files and util::ParseError on damage, a non-v2 log, or a log
/// that is not (time, user)-sorted.
[[nodiscard]] PartitionFeed load_partition_feed(
    const std::filesystem::path& dir, std::size_t partition_id,
    std::size_t partition_count);

/// Replays the filtered feed into `engine`, which must be configured with
/// the same partition_id/partition_count (hard error otherwise).  After
/// this returns, engine.feed_records() == feed.feed_records and the
/// engine state matches a full-feed replay bitwise.
void replay_partition_feed(const PartitionFeed& feed,
                           live::LiveEngine& engine);

}  // namespace wearscope::fed
