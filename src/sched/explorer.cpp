#include "sched/explorer.h"

#include <utility>

#include "util/rng.h"

namespace wearscope::sched {

namespace {

/// True when choosing `alt` instead of `chosen` at a step would have
/// forced a switch away from a still-runnable current thread.
[[nodiscard]] bool is_preemption(const TraceStep& step,
                                 std::size_t alt) {
  bool current_present = false;
  for (const StepCandidate& c : step.candidates) {
    if (c.is_current) current_present = true;
  }
  return current_present && !step.candidates[alt].is_current;
}

/// Preemptions already spent along the first `upto` steps of a trace.
[[nodiscard]] int preemptions_before(const ScheduleTrace& trace,
                                     std::size_t upto) {
  int count = 0;
  for (std::size_t i = 0; i < upto; ++i) {
    if (trace.steps[i].preemption) ++count;
  }
  return count;
}

/// Independence heuristic: two transitions commute when they act on
/// different concrete objects (different ring, different mutex, ...).
/// Object id 0 means "no object / unknown" and is never independent.
[[nodiscard]] bool independent(const StepCandidate& a,
                               const StepCandidate& b) {
  return a.obj != 0 && b.obj != 0 && a.obj != b.obj;
}

}  // namespace

ScheduleTrace run_once(const Model& model, DecisionSource& source,
                       std::uint64_t seed, std::size_t max_steps) {
  Scheduler::Options opt;
  opt.max_steps = max_steps;
  Scheduler scheduler(source, opt);
  scheduler.set_seed(seed);
  return scheduler.run([&] { model(scheduler); });
}

ExploreStats exhaust(const Model& model, const ExhaustOptions& options) {
  ExploreStats stats;
  // Each pending branch is a decision prefix; the run follows it and
  // then the zero-preemption default policy.  Children are generated
  // only at steps >= the prefix length, so every schedule is executed
  // exactly once (the standard stateless-DFS tree discipline).
  std::vector<std::vector<int>> pending;
  pending.push_back({});

  while (!pending.empty()) {
    if (stats.schedules >= options.max_schedules) {
      stats.budget_exhausted = true;
      return stats;
    }
    std::vector<int> prefix = std::move(pending.back());
    pending.pop_back();

    PrefixSource source(std::move(prefix));
    ScheduleTrace trace = run_once(model, source, 0, options.max_steps);
    ++stats.schedules;
    if (!trace.passed()) {
      stats.failure = std::move(trace);
      return stats;
    }

    const std::size_t frontier = source.consumed();
    // Push children deepest-divergence first so the vector pops them in
    // near-DFS order (keeps the pending stack shallow).
    for (std::size_t i = trace.steps.size(); i-- > frontier;) {
      const TraceStep& step = trace.steps[i];
      const auto chosen = static_cast<std::size_t>(step.chosen_pos);
      for (std::size_t alt = 0; alt < step.candidates.size(); ++alt) {
        if (alt == chosen) continue;
        if (options.independence_reduction &&
            independent(step.candidates[chosen], step.candidates[alt])) {
          ++stats.pruned_independent;
          continue;
        }
        const int cost = preemptions_before(trace, i) +
                         (is_preemption(step, alt) ? 1 : 0);
        if (cost > options.preemption_bound) {
          ++stats.pruned_bound;
          continue;
        }
        std::vector<int> child(trace.decisions.begin(),
                               trace.decisions.begin() +
                                   static_cast<std::ptrdiff_t>(i));
        child.push_back(static_cast<int>(alt));
        pending.push_back(std::move(child));
      }
    }
  }
  return stats;
}

ExploreStats random_walks(const Model& model, std::uint64_t base_seed,
                          std::size_t walks, std::size_t max_steps) {
  ExploreStats stats;
  for (std::size_t w = 0; w < walks; ++w) {
    const std::uint64_t seed = util::splitmix64(base_seed + w);
    RandomWalkSource source(seed);
    ScheduleTrace trace = run_once(model, source, seed, max_steps);
    ++stats.schedules;
    if (!trace.passed()) {
      stats.failure = std::move(trace);
      return stats;
    }
  }
  return stats;
}

ScheduleTrace replay(const Model& model, const std::vector<int>& decisions,
                     std::size_t max_steps) {
  PrefixSource source(decisions);
  return run_once(model, source, 0, max_steps);
}

}  // namespace wearscope::sched
