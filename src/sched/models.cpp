#include "sched/models.h"

#include <atomic>
#include <cstddef>
#include <utility>

#include "chaos/fault_plan.h"
#include "live/engine.h"
#include "live/ring_buffer.h"
#include "live/router.h"
#include "serve/reference.h"
#include "serve/snapshot_store.h"
#include "trace/sanitize.h"
#include "util/error.h"
#include "util/sched_hook.h"
#include "util/sync.h"

namespace wearscope::sched {

namespace {

constexpr trace::Tac kWearTac = 35254208;  // Gear S3 frontier LTE.
constexpr trace::Tac kPhoneTac = 99100200;

/// First UserId that partitions onto `shard` of a 2-shard engine.
[[nodiscard]] trace::UserId user_on_shard(std::size_t shard) {
  for (trace::UserId u = 1;; ++u) {
    if (live::shard_of(u, 2) == shard) return u;
  }
}

[[nodiscard]] trace::MmeRecord attach(util::SimTime t, trace::UserId user,
                                      trace::SectorId sector) {
  trace::MmeRecord r;
  r.timestamp = t;
  r.user_id = user;
  r.tac = kWearTac;
  r.event = trace::MmeEvent::kAttach;
  r.sector_id = sector;
  return r;
}

[[nodiscard]] trace::ProxyRecord txn(util::SimTime t, trace::UserId user,
                                     std::string host,
                                     std::uint64_t bytes_down) {
  trace::ProxyRecord r;
  r.timestamp = t;
  r.user_id = user;
  r.tac = kWearTac;
  r.protocol = trace::Protocol::kHttps;
  r.host = std::move(host);
  r.bytes_up = 160;
  r.bytes_down = bytes_down;
  r.duration_ms = 40;
  return r;
}

[[nodiscard]] live::LiveOptions fixture_options(std::size_t ring_capacity) {
  live::LiveOptions opt;
  opt.shards = 2;
  opt.ring_capacity = ring_capacity;
  opt.observation_days = 7;
  opt.detailed_start_day = 0;
  opt.long_tail_apps = 4;
  opt.signature_coverage = 1.0;
  return opt;
}

/// Extracts `store`'s events in feed-merge order (timestamp order, MME
/// before proxy on ties) — the order the models push them.
[[nodiscard]] std::vector<std::variant<trace::ProxyRecord, trace::MmeRecord>>
merge_order(const trace::TraceStore& store) {
  std::vector<std::variant<trace::ProxyRecord, trace::MmeRecord>> feed;
  std::size_t pi = 0;
  std::size_t mi = 0;
  while (pi < store.proxy.size() || mi < store.mme.size()) {
    const bool take_mme =
        mi < store.mme.size() &&
        (pi >= store.proxy.size() ||
         store.mme[mi].timestamp <= store.proxy[pi].timestamp);
    if (take_mme) {
      feed.emplace_back(store.mme[mi++]);
    } else {
      feed.emplace_back(store.proxy[pi++]);
    }
  }
  return feed;
}

}  // namespace

const LiveFixture& tiny_live_fixture() {
  static const LiveFixture fixture = [] {
    LiveFixture fx;
    fx.options = fixture_options(/*ring_capacity=*/1);
    const trace::UserId u0 = user_on_shard(0);
    const trace::UserId u1 = user_on_shard(1);

    trace::TraceStore store;
    store.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
                     {kPhoneTac, "iPhone 8", "Apple", "iOS"}};
    store.sectors = {{7, {}}, {9, {}}};
    store.mme = {attach(3600, u0, 7), attach(7200, u1, 9)};
    store.proxy = {txn(10000, u0, "api.weather.com", 2400),
                   txn(14000, u1, "unattributed.example", 900)};
    store.sort_by_time();

    fx.survivors = std::move(store);
    fx.feed = merge_order(fx.survivors);
    fx.final_expected = serve::reference_snapshot(
        fx.survivors, fx.options, /*epoch=*/0, fx.quarantine);
    return fx;
  }();
  return fixture;
}

const LiveFixture& walk_live_fixture() {
  static const LiveFixture fixture = [] {
    LiveFixture fx;
    fx.options = fixture_options(/*ring_capacity=*/2);
    const trace::UserId u0 = user_on_shard(0);
    const trace::UserId u1 = user_on_shard(1);

    trace::TraceStore clean;
    clean.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
                     {kPhoneTac, "iPhone 8", "Apple", "iOS"}};
    clean.sectors = {{7, {}}, {9, {}}, {11, {}}};
    for (int day = 0; day < 6; ++day) {
      const util::SimTime base = static_cast<util::SimTime>(day) * 86400;
      clean.mme.push_back(attach(base + 3600, u0, 7));
      clean.mme.push_back(attach(base + 3700, u1, day % 2 == 0 ? 9 : 11));
      clean.proxy.push_back(txn(base + 4000 + day, u0, "api.weather.com",
                                1000 + static_cast<std::uint64_t>(day)));
      clean.proxy.push_back(
          txn(base + 5000 + day, u1,
              day % 2 == 0 ? "maps.googleapis.com" : "unattributed.example",
              500 + static_cast<std::uint64_t>(day) * 7));
    }
    clean.sort_by_time();

    // Seeded fault injection + sanitize: the survivors are what the feed
    // pushes, and the sanitizer's accounting must equal the manifest
    // exactly (the chaos differential contract, reused here so every
    // explored schedule carries a non-trivial quarantine expectation).
    chaos::FaultProfile profile;
    profile.name = "sched";
    profile.duplicates = 2;
    profile.unknown_tacs = 1;
    profile.bad_hosts = 1;
    profile.reorder_swaps = 2;
    const chaos::FaultPlan plan(0x5EEDF00D, profile);
    trace::TraceStore hostile = clean;
    const chaos::FaultManifest manifest = plan.inject_records(hostile);
    const trace::QuarantineStats observed = trace::sanitize_store(hostile);
    util::ensure(observed == manifest.expected,
                 "sched fixture: sanitizer accounting diverged from the "
                 "injected manifest");
    util::ensure(observed.any(),
                 "sched fixture: fault injection produced no quarantine");

    fx.survivors = std::move(hostile);
    fx.quarantine = observed;
    fx.feed = merge_order(fx.survivors);
    fx.mid_cut = fx.feed.size() / 2;
    fx.mid_expected = serve::reference_snapshot(
        fx.survivors, fx.options, /*epoch=*/0, fx.quarantine, fx.mid_cut);
    fx.final_expected = serve::reference_snapshot(
        fx.survivors, fx.options, /*epoch=*/1, fx.quarantine);
    return fx;
  }();
  return fixture;
}

std::string snapshot_diff(const live::LiveSnapshot& got,
                          const live::LiveSnapshot& want) {
  std::string diff;
  const auto mismatch = [&](const char* field) {
    if (!diff.empty()) diff += ", ";
    diff += field;
  };
  const auto check = [&](bool ok, const char* field) {
    if (!ok) mismatch(field);
  };
  const auto same_ecdf = [](const util::Ecdf& a, const util::Ecdf& b) {
    return a.sorted() == b.sorted();
  };

  check(got.epoch == want.epoch, "epoch");
  check(got.records == want.records, "records");

  const core::AdoptionResult& ga = got.adoption;
  const core::AdoptionResult& wa = want.adoption;
  check(ga.daily_registered_norm == wa.daily_registered_norm,
        "adoption.daily_registered_norm");
  check(ga.total_growth == wa.total_growth, "adoption.total_growth");
  check(ga.monthly_growth == wa.monthly_growth, "adoption.monthly_growth");
  check(ga.ever_transacting_fraction == wa.ever_transacting_fraction,
        "adoption.ever_transacting_fraction");
  check(ga.still_active_share == wa.still_active_share,
        "adoption.still_active_share");
  check(ga.gone_share == wa.gone_share, "adoption.gone_share");
  check(ga.new_share == wa.new_share, "adoption.new_share");
  check(ga.churned_of_initial == wa.churned_of_initial,
        "adoption.churned_of_initial");
  check(ga.ever_registered == wa.ever_registered,
        "adoption.ever_registered");
  check(ga.ever_transacted == wa.ever_transacted,
        "adoption.ever_transacted");

  const core::ActivityResult& gc = got.activity;
  const core::ActivityResult& wc = want.activity;
  check(same_ecdf(gc.active_days_per_week, wc.active_days_per_week),
        "activity.active_days_per_week");
  check(same_ecdf(gc.active_hours_per_day, wc.active_hours_per_day),
        "activity.active_hours_per_day");
  check(same_ecdf(gc.txn_size_bytes, wc.txn_size_bytes),
        "activity.txn_size_bytes");
  check(same_ecdf(gc.hourly_txns_per_user, wc.hourly_txns_per_user),
        "activity.hourly_txns_per_user");
  check(same_ecdf(gc.hourly_bytes_per_user, wc.hourly_bytes_per_user),
        "activity.hourly_bytes_per_user");
  check(gc.mean_active_days == wc.mean_active_days,
        "activity.mean_active_days");
  check(gc.mean_active_hours == wc.mean_active_hours,
        "activity.mean_active_hours");
  check(gc.frac_over_10h == wc.frac_over_10h, "activity.frac_over_10h");
  check(gc.frac_under_5h == wc.frac_under_5h, "activity.frac_under_5h");
  check(gc.mean_txn_bytes == wc.mean_txn_bytes, "activity.mean_txn_bytes");
  check(gc.median_txn_bytes == wc.median_txn_bytes,
        "activity.median_txn_bytes");
  check(gc.frac_txn_under_10kb == wc.frac_txn_under_10kb,
        "activity.frac_txn_under_10kb");
  check(gc.txns_vs_hours.x_centers == wc.txns_vs_hours.x_centers &&
            gc.txns_vs_hours.y_means == wc.txns_vs_hours.y_means &&
            gc.txns_vs_hours.n == wc.txns_vs_hours.n,
        "activity.txns_vs_hours");
  check(gc.correlation == wc.correlation, "activity.correlation");
  check(gc.binned_trend_corr == wc.binned_trend_corr,
        "activity.binned_trend_corr");

  bool apps_equal = got.apps.size() == want.apps.size();
  for (std::size_t i = 0; apps_equal && i < got.apps.size(); ++i) {
    const live::LiveSnapshot::AppRow& g = got.apps[i];
    const live::LiveSnapshot::AppRow& w = want.apps[i];
    apps_equal = g.app == w.app && g.name == w.name &&
                 g.counter.transactions == w.counter.transactions &&
                 g.counter.bytes == w.counter.bytes &&
                 g.counter.usages == w.counter.usages &&
                 g.counter.distinct_users == w.counter.distinct_users;
  }
  check(apps_equal, "apps");

  bool sectors_equal = got.sectors.size() == want.sectors.size();
  for (std::size_t i = 0; sectors_equal && i < got.sectors.size(); ++i) {
    const live::LiveSnapshot::SectorRow& g = got.sectors[i];
    const live::LiveSnapshot::SectorRow& w = want.sectors[i];
    sectors_equal = g.sector == w.sector &&
                    g.counter.events == w.counter.events &&
                    g.counter.attaches == w.counter.attaches &&
                    g.counter.handovers == w.counter.handovers &&
                    g.counter.wearable_events == w.counter.wearable_events &&
                    g.counter.distinct_users == w.counter.distinct_users &&
                    g.counter.wearable_users == w.counter.wearable_users;
  }
  check(sectors_equal, "sectors");

  check(got.class_txns == want.class_txns, "class_txns");
  check(got.quarantine == want.quarantine, "quarantine");
  // Belt and braces: the serving layer's own integrity word must agree on
  // everything it folds over.
  check(serve::ServedSnapshot::fold(got, 1, false) ==
            serve::ServedSnapshot::fold(want, 1, false),
        "fold_checksum");
  return diff;
}

Model ring_transfer_model(std::size_t items, std::size_t capacity) {
  return [items, capacity](Scheduler& sched) {
    live::RingBuffer<std::size_t> ring(capacity);
    ManagedThread producer("producer", [&] {
      for (std::size_t v = 1; v <= items; ++v) {
        if (!ring.push(v)) {
          sched.fail("ring_transfer: push rejected on an open ring");
          return;
        }
      }
    });
    std::vector<std::size_t> received;
    received.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      std::size_t v = 0;
      if (!ring.pop(v)) {
        sched.fail("ring_transfer: pop failed before close");
        break;
      }
      received.push_back(v);
    }
    producer.join();
    ring.close();
    std::size_t v = 0;
    if (ring.pop(v)) sched.fail("ring_transfer: pop succeeded after drain");

    for (std::size_t i = 0; i < received.size(); ++i) {
      if (received[i] != i + 1) {
        sched.fail("ring_transfer: FIFO order violated at element " +
                   std::to_string(i));
        break;
      }
    }
    const live::RingStats stats = ring.stats();
    if (stats.pushed != items || stats.popped != items ||
        stats.rejected != 0) {
      sched.fail("ring_transfer: stats mismatch pushed=" +
                 std::to_string(stats.pushed) +
                 " popped=" + std::to_string(stats.popped) +
                 " rejected=" + std::to_string(stats.rejected));
    }
  };
}

Model ring_close_producer_model() {
  return [](Scheduler& sched) {
    constexpr std::size_t kAttempts = 3;
    live::RingBuffer<std::size_t> ring(1);
    std::size_t accepted = 0;
    bool accepted_after_reject = false;
    ManagedThread producer("producer", [&] {
      bool rejected_one = false;
      for (std::size_t v = 1; v <= kAttempts; ++v) {
        if (ring.push(v)) {
          ++accepted;
          if (rejected_one) accepted_after_reject = true;
        } else {
          rejected_one = true;
        }
      }
    });

    util::sched::point(util::sched::Op::kUserPoint, &ring);
    ring.close();
    std::vector<std::size_t> received;
    std::size_t v = 0;
    while (ring.pop(v)) received.push_back(v);
    producer.join();
    // The producer may have committed a final element between our drain
    // hitting "empty + closed" and its own close check; a second drain
    // after the join sees everything that was ever accepted.
    while (ring.pop(v)) received.push_back(v);

    if (accepted_after_reject) {
      sched.fail("ring_close/producer: push accepted after a rejection "
                 "(closed is not sticky)");
    }
    for (std::size_t i = 0; i < received.size(); ++i) {
      if (received[i] != i + 1) {
        sched.fail("ring_close/producer: delivered element " +
                   std::to_string(received[i]) + " out of order");
        return;
      }
    }
    const live::RingStats stats = ring.stats();
    if (received.size() != accepted || stats.pushed != accepted) {
      sched.fail(
          "ring_close/producer: accepted " + std::to_string(accepted) +
          " but delivered " + std::to_string(received.size()) +
          " (pushed=" + std::to_string(stats.pushed) + ")");
    }
    if (stats.rejected != kAttempts - accepted) {
      sched.fail("ring_close/producer: rejected=" +
                 std::to_string(stats.rejected) + ", want " +
                 std::to_string(kAttempts - accepted));
    }
  };
}

Model ring_close_consumer_model() {
  return [](Scheduler& sched) {
    live::RingBuffer<std::size_t> ring(1);
    std::vector<std::size_t> received;
    ManagedThread consumer("consumer", [&] {
      std::size_t v = 0;
      while (ring.pop(v)) received.push_back(v);
    });

    if (!ring.push(41)) {
      sched.fail("ring_close/consumer: push rejected before close");
    }
    util::sched::point(util::sched::Op::kUserPoint, &ring);
    ring.close();
    consumer.join();

    if (received.size() != 1 || received[0] != 41) {
      sched.fail("ring_close/consumer: expected exactly one element (41), "
                 "got " + std::to_string(received.size()));
    }
    const live::RingStats stats = ring.stats();
    if (stats.pushed != 1 || stats.popped != 1 || stats.rejected != 0) {
      sched.fail("ring_close/consumer: stats mismatch pushed=" +
                 std::to_string(stats.pushed) +
                 " popped=" + std::to_string(stats.popped) +
                 " rejected=" + std::to_string(stats.rejected));
    }
  };
}

Model store_publish_read_model(std::size_t retain, std::size_t publishes) {
  return [retain, publishes](Scheduler& sched) {
    serve::SnapshotStore store(retain);
    const auto checksum_ok = [](const serve::SnapshotRef& ref) {
      return ref->checksum == serve::ServedSnapshot::fold(
                                  ref->snap, ref->publish_seq,
                                  ref->final_epoch);
    };

    ManagedThread reader("reader", [&] {
      std::uint64_t last_seq = 0;
      serve::SnapshotRef held;
      for (int round = 0; round < 3; ++round) {
        if (serve::SnapshotRef ref = store.latest()) {
          if (!checksum_ok(ref)) {
            sched.fail("store: torn publication (checksum mismatch) at "
                       "publish_seq " + std::to_string(ref->publish_seq));
          }
          if (ref->publish_seq < last_seq) {
            sched.fail("store: publish_seq went backwards (" +
                       std::to_string(ref->publish_seq) + " after " +
                       std::to_string(last_seq) + ")");
          }
          last_seq = ref->publish_seq;
          held = std::move(ref);
        }
        const std::vector<std::uint64_t> epochs = store.retained_epochs();
        if (epochs.size() > retain) {
          sched.fail("store: retention window overflow (" +
                     std::to_string(epochs.size()) + " > " +
                     std::to_string(retain) + ")");
        }
        for (std::size_t i = 1; i < epochs.size(); ++i) {
          if (epochs[i - 1] >= epochs[i]) {
            sched.fail("store: retained_epochs not strictly increasing");
          }
        }
        if (!epochs.empty()) {
          if (serve::SnapshotRef at = store.at_epoch(epochs.front())) {
            if (at->snap.epoch != epochs.front()) {
              sched.fail("store: at_epoch returned epoch " +
                         std::to_string(at->snap.epoch) + ", asked for " +
                         std::to_string(epochs.front()));
            }
            if (!checksum_ok(at)) {
              sched.fail("store: at_epoch returned a torn snapshot");
            }
          }
        }
      }
      // A reference held across evictions must stay fully intact — the
      // writer retiring it from the window never touches the object.
      if (held && !checksum_ok(held)) {
        sched.fail("store: held reference corrupted by eviction");
      }
    });

    for (std::size_t e = 0; e < publishes; ++e) {
      live::LiveSnapshot snap;
      snap.epoch = e;
      snap.records = (e + 1) * 10;
      store.publish(std::move(snap), /*final_epoch=*/e + 1 == publishes);
    }
    reader.join();

    if (store.published() != publishes) {
      sched.fail("store: published() is " +
                 std::to_string(store.published()) + ", want " +
                 std::to_string(publishes));
    }
    const std::vector<std::uint64_t> epochs = store.retained_epochs();
    const std::size_t want_retained =
        publishes < retain ? publishes : retain;
    if (epochs.size() != want_retained) {
      sched.fail("store: final retention holds " +
                 std::to_string(epochs.size()) + " epochs, want " +
                 std::to_string(want_retained));
    }
    if (publishes > retain && store.at_epoch(0) != nullptr) {
      sched.fail("store: epoch 0 still reachable after eviction");
    }
  };
}

namespace {

/// Shared tail of the live models: feed, snapshot, compare, account.
void run_live_model(Scheduler& sched, const LiveFixture& fx,
                    serve::SnapshotStore* store) {
  live::LiveEngine engine(fx.survivors.devices, fx.options);
  engine.add_quarantine(fx.quarantine);

  std::uint64_t fed = 0;
  std::uint64_t barriers = 1;  // stop() always broadcasts one.
  for (const auto& event : fx.feed) {
    if (fx.mid_cut != 0 && fed == fx.mid_cut) {
      live::LiveSnapshot mid = engine.snapshot();
      ++barriers;
      const std::string diff = snapshot_diff(mid, fx.mid_expected);
      if (!diff.empty()) {
        sched.fail("live: mid snapshot diverged from the sequential "
                   "reference: " + diff);
      }
      if (store != nullptr) store->publish(std::move(mid));
    }
    const bool ok = std::visit(
        [&](const auto& record) { return engine.push(record); }, event);
    if (!ok) {
      sched.fail("live: push rejected before stop");
      return;
    }
    ++fed;
  }

  live::LiveSnapshot fin = engine.stop();
  const std::string diff = snapshot_diff(fin, fx.final_expected);
  if (!diff.empty()) {
    sched.fail("live: final snapshot diverged from the sequential "
               "reference: " + diff);
  }

  // Exact ring accounting: every record plus one barrier per shard per
  // epoch rode the rings; everything pushed was popped; nothing was
  // rejected on this clean run.
  const live::RingStats bp = fin.backpressure;
  const std::uint64_t want_pushed =
      fed + barriers * static_cast<std::uint64_t>(fx.options.shards);
  if (bp.pushed != want_pushed || bp.popped != bp.pushed ||
      bp.rejected != 0) {
    sched.fail("live: ring accounting off — pushed=" +
               std::to_string(bp.pushed) + " (want " +
               std::to_string(want_pushed) + "), popped=" +
               std::to_string(bp.popped) + ", rejected=" +
               std::to_string(bp.rejected));
  }
  if (store != nullptr) store->publish(std::move(fin), /*final_epoch=*/true);
}

}  // namespace

Model live_barrier_model() {
  // Bind the fixture here, in the factory: constructing it lazily inside
  // the first schedule would run reference_snapshot's (hooked) barrier
  // under the scheduler, giving run #1 a different step timeline than
  // every later run — and schedules must be pure functions of decisions.
  const LiveFixture& fx = tiny_live_fixture();
  return [&fx](Scheduler& sched) { run_live_model(sched, fx, nullptr); };
}

Model live_serve_model() {
  const LiveFixture& fx = walk_live_fixture();  // outside any schedule
  return [&fx](Scheduler& sched) {
    serve::SnapshotStore store(2);
    const auto checksum_ok = [](const serve::SnapshotRef& ref) {
      return ref->checksum == serve::ServedSnapshot::fold(
                                  ref->snap, ref->publish_seq,
                                  ref->final_epoch);
    };
    ManagedThread reader("reader", [&] {
      std::uint64_t last_seq = 0;
      for (int round = 0; round < 3; ++round) {
        serve::SnapshotRef ref = store.latest();
        if (!ref) continue;
        if (!checksum_ok(ref)) {
          sched.fail("live+serve: torn publication at publish_seq " +
                     std::to_string(ref->publish_seq));
        }
        if (ref->publish_seq < last_seq) {
          sched.fail("live+serve: publish_seq went backwards");
        }
        last_seq = ref->publish_seq;
      }
    });
    run_live_model(sched, fx, &store);
    reader.join();
    if (store.published() != 2) {
      sched.fail("live+serve: expected 2 publications, saw " +
                 std::to_string(store.published()));
    }
    const serve::SnapshotRef last = store.latest();
    if (!last || !last->final_epoch || last->snap.epoch != 1) {
      sched.fail("live+serve: latest() is not the final epoch");
    }
  };
}

Model racy_counter_model(bool buggy) {
  return [buggy](Scheduler& sched) {
    int counter = 0;
    util::Mutex mutex;
    const auto worker = [&] {
      for (int i = 0; i < 2; ++i) {
        if (buggy) {
          // The seeded mutation: a read-modify-write split across a choice
          // point — a textbook lost update the explorer must catch.
          const int t = counter;
          util::sched::point(util::sched::Op::kUserPoint, &counter);
          counter = t + 1;
        } else {
          util::MutexLock lock(mutex);
          ++counter;
        }
      }
    };
    ManagedThread a("inc-a", worker);
    ManagedThread b("inc-b", worker);
    a.join();
    b.join();
    if (counter != 4) {
      sched.fail("racy_counter: lost update — counter is " +
                 std::to_string(counter) + ", want 4");
    }
  };
}

}  // namespace wearscope::sched
