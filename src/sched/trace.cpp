#include "sched/trace.h"

#include <charconv>

#include "util/error.h"

namespace wearscope::sched {

namespace {

[[nodiscard]] std::string to_hex(std::uint64_t v) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  (void)ec;
  return std::string(buf, ptr);
}

}  // namespace

std::string ScheduleTrace::decision_string() const {
  std::string out;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(decisions[i]);
  }
  return out;
}

std::string ScheduleTrace::format(std::size_t max_steps) const {
  std::string out = "schedule seed=0x" + to_hex(seed) +
                    " steps=" + std::to_string(steps.size()) +
                    (passed() ? " PASS" : deadlock ? " DEADLOCK" : " FAIL") +
                    "\ndecisions=" + decision_string() + "\n";
  const std::size_t shown = steps.size() < max_steps ? steps.size() : max_steps;
  for (std::size_t i = 0; i < shown; ++i) {
    const TraceStep& s = steps[i];
    out += "  t=" + std::to_string(s.clock) + " " + s.thread_name + " " +
           util::sched::op_name(s.op);
    if (s.obj != 0) out += " obj#" + std::to_string(s.obj);
    out += " <pos " + std::to_string(s.chosen_pos) + "/" +
           std::to_string(s.candidates.size()) + ">";
    if (s.preemption) out += " preempt";
    out.push_back('\n');
  }
  if (shown < steps.size()) {
    out += "  ... " + std::to_string(steps.size() - shown) +
           " more steps elided\n";
  }
  for (const std::string& f : failures) out += "  FAIL: " + f + "\n";
  if (deadlock) out += "  DEADLOCK: all managed threads blocked\n";
  return out;
}

std::vector<int> parse_decisions(const std::string& text) {
  std::vector<int> decisions;
  if (text.empty()) return decisions;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('.', start);
    if (end == std::string::npos) end = text.size();
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + end, value);
    util::require(ec == std::errc() && ptr == text.data() + end &&
                      end > start && value >= 0,
                  "parse_decisions: malformed decision string");
    decisions.push_back(value);
    if (end == text.size()) break;
    start = end + 1;
  }
  return decisions;
}

}  // namespace wearscope::sched
