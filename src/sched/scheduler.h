// wearscope::sched — the deterministic scheduler.
//
// Scheduler implements util::sched::Hook: once installed, every thread
// that enters a hooked primitive (util::Mutex, util::SpinLock,
// util::CondVar, live::RingBuffer, SnapshotCoordinator, SnapshotStore)
// becomes *managed*.  Exactly one managed thread holds the run token at a
// time; at every choice point the token holder asks a DecisionSource
// which runnable thread proceeds, and blocking operations park on the
// scheduler instead of the OS.  A run is therefore a pure function of the
// decision sequence, which is exactly what makes a failing interleaving
// replayable (sched/trace.h) and enumerable (sched/explorer.h).
//
// The design is CHESS-style stateless model checking: real code, real
// objects, serialized execution, schedules explored by re-running the
// model under different decision sequences.  SimGrid's UnfoldingChecker
// is the exemplar for the independence reduction the explorer layers on
// top (operations on different objects commute).
//
// Thread lifecycle: the model body runs on the calling thread (registered
// as "main"); additional roles use ManagedThread, and threads spawned
// inside the system under test (ShardWorker) self-register through the
// util::sched spawn handshake.  Models must join every thread they cause
// to exist before returning.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/trace.h"
#include "util/rng.h"
#include "util/sched_hook.h"

namespace wearscope::sched {

/// Picks which candidate proceeds at each choice point.  choose() is
/// always called with a non-empty candidate list ordered by thread index,
/// under the scheduler's serialization (no locking needed inside).
class DecisionSource {
 public:
  virtual ~DecisionSource() = default;
  /// Returns a position in [0, candidates.size()).
  virtual int choose(const std::vector<StepCandidate>& candidates) = 0;
};

/// The non-preemptive default policy: keep running the current thread
/// while it is runnable, otherwise take the lowest-indexed candidate.
/// Used standalone and as the tail policy of PrefixSource.
class FifoSource : public DecisionSource {
 public:
  int choose(const std::vector<StepCandidate>& candidates) override;
};

/// Follows a fixed decision prefix, then falls back to FifoSource.  The
/// explorer's DFS branches are prefixes; full replay is a prefix covering
/// the whole failing run.
class PrefixSource : public DecisionSource {
 public:
  explicit PrefixSource(std::vector<int> prefix)
      : prefix_(std::move(prefix)) {}

  int choose(const std::vector<StepCandidate>& candidates) override;

  /// Steps consumed so far (== prefix length once the prefix is spent).
  [[nodiscard]] std::size_t consumed() const noexcept { return next_; }

 private:
  std::vector<int> prefix_;
  std::size_t next_ = 0;
  FifoSource tail_;
};

/// Uniform seeded random walk over the candidate sets (util::Pcg32, so a
/// seed reproduces the identical walk on every platform).
class RandomWalkSource : public DecisionSource {
 public:
  explicit RandomWalkSource(std::uint64_t seed) : rng_(seed, 0x5eedULL) {}

  int choose(const std::vector<StepCandidate>& candidates) override;

 private:
  util::Pcg32 rng_;
};

/// The deterministic scheduler; one instance per explored schedule.
class Scheduler final : public util::sched::Hook {
 public:
  struct Options {
    /// Hard step budget: exceeding it fails the schedule (runaway guard).
    std::size_t max_steps = 100000;
  };

  Scheduler(DecisionSource& source, Options options);
  ~Scheduler() override;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Installs the hook, runs `body` on the calling thread as the managed
  /// thread "main", uninstalls, and returns the recorded trace.  `body`
  /// must join every thread it caused to spawn before returning.
  [[nodiscard]] ScheduleTrace run(const std::function<void()>& body);

  /// Records an invariant violation for the current schedule.  Callable
  /// from any managed thread; thread-safe.
  void fail(std::string message);

  /// Stamped into the returned trace (walk bookkeeping only).
  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

  // --- util::sched::Hook ------------------------------------------------
  void point(util::sched::Op op, std::uintptr_t obj) override;
  void block(util::sched::Op op, std::uintptr_t obj) override;
  void unblock(util::sched::Op op, std::uintptr_t obj, bool all) override;
  void thread_started(const char* name) override;
  void thread_finished() override;
  void await_thread_start(std::thread::id id) override;
  void join_gate(std::thread::id id) override;

 private:
  struct ThreadRec {
    int index = 0;
    std::string name;
    std::thread::id os_id;
    enum class St { kRunnable, kRunning, kBlocked, kFinished } st =
        St::kRunnable;
    std::uintptr_t blocked_on = 0;  ///< Raw object address while kBlocked.
    std::uint64_t block_seq = 0;    ///< FIFO order for notify_one.
    util::sched::Op op = util::sched::Op::kUserPoint;  ///< Pending op.
    std::uintptr_t obj = 0;         ///< Raw object of the pending op.
    std::condition_variable cv;     ///< Token grant wakeup.
  };

  /// Registers the calling thread (locked).
  ThreadRec* register_locked(std::unique_lock<std::mutex>& lk,
                             const char* name);
  /// The calling thread's record, adopting unknown threads (locked).
  ThreadRec* self_locked(std::unique_lock<std::mutex>& lk);
  /// Stable per-run object id (assigned on first sight; 0 stays 0).
  std::uint64_t object_id_locked(std::uintptr_t obj);
  /// Picks and grants the next thread; `self_eligible` marks a preemption
  /// point (self may keep running) vs a forced switch (block/finish).
  /// Returns whether self was chosen.
  bool reschedule_locked(std::unique_lock<std::mutex>& lk, ThreadRec* self,
                        bool self_eligible);
  /// Parks the calling thread until granted the token (or free-run).
  void wait_for_token(std::unique_lock<std::mutex>& lk, ThreadRec* self);
  /// Abandons deterministic control (deadlock/step overflow/model bug):
  /// records why, wakes everyone, and lets all hooks fall through so the
  /// run can finish natively instead of hanging the test process.
  void enter_free_run_locked(const std::string& why);

  DecisionSource* source_ = nullptr;
  Options opt_;
  std::uint64_t seed_ = 0;

  std::mutex mu_;
  std::condition_variable registry_cv_;  ///< await_thread_start wakeups.
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  std::unordered_map<std::thread::id, ThreadRec*> by_id_;
  std::unordered_map<std::uintptr_t, std::uint64_t> object_ids_;
  ThreadRec* running_ = nullptr;
  std::uint64_t block_seq_ = 0;
  std::atomic<bool> free_run_{false};
  ScheduleTrace trace_;
};

/// A model-role thread under the scheduler: registers on start (parking
/// until first selected), deregisters on exit, and join() gates on the
/// scheduler before the OS join.  Usable with no scheduler installed too
/// (all hooks no-op), which keeps models runnable natively.
class ManagedThread {
 public:
  ManagedThread(std::string name, std::function<void()> fn);
  ~ManagedThread();

  ManagedThread(const ManagedThread&) = delete;
  ManagedThread& operator=(const ManagedThread&) = delete;

  void join();

 private:
  std::thread thread_;
};

}  // namespace wearscope::sched
