// Replayable schedule traces.
//
// A deterministic-scheduler run is a pure function of its decision
// sequence: at every choice point the scheduler picked one position out
// of the runnable-candidate list, and ScheduleTrace records exactly those
// positions plus enough context (thread, operation, object) to print a
// human-readable schedule.  The decision string ("0.2.1.0...") is the
// whole reproduction recipe — feeding it back through a ReplaySource
// (sched/scheduler.h) re-executes the identical interleaving, which is
// what `wearscope_sched --replay` and the mutation test rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sched_hook.h"

namespace wearscope::sched {

/// One runnable thread at a choice point, as the scheduler saw it.
struct StepCandidate {
  int thread = 0;           ///< Stable thread index (registration order).
  util::sched::Op op = util::sched::Op::kUserPoint;  ///< Its pending op.
  std::uint64_t obj = 0;    ///< Stable id of the object it acts on.
  bool is_current = false;  ///< Was the running thread before this point.
};

/// One scheduling decision: which thread ran, out of which candidates.
struct TraceStep {
  std::uint64_t clock = 0;  ///< Virtual time: 0-based step index.
  int thread = 0;           ///< Chosen thread (stable index).
  std::string thread_name;  ///< Chosen thread's name at registration.
  util::sched::Op op = util::sched::Op::kUserPoint;  ///< Its op.
  std::uint64_t obj = 0;    ///< Stable object id (0 = none).
  int chosen_pos = 0;       ///< Position picked in `candidates`.
  bool preemption = false;  ///< Switched away from a still-runnable thread.
  std::vector<StepCandidate> candidates;  ///< Ordered by thread index.
};

/// The full record of one explored schedule.
struct ScheduleTrace {
  /// Seed of the random walk that produced it (0 for prefix/replay runs).
  std::uint64_t seed = 0;
  /// The decision sequence: candidate positions, one per step.
  std::vector<int> decisions;
  std::vector<TraceStep> steps;
  bool deadlock = false;  ///< All threads blocked with work remaining.
  /// Invariant violations recorded by the model (empty = schedule passed).
  std::vector<std::string> failures;

  [[nodiscard]] bool passed() const noexcept {
    return failures.empty() && !deadlock;
  }

  /// Dotted decision sequence, e.g. "0.2.1.0" ("" when no steps ran).
  [[nodiscard]] std::string decision_string() const;

  /// Human-readable schedule: header (seed + decision string + verdict)
  /// followed by at most `max_steps` step lines like
  ///   t=012 shard-1 ring-pop obj#2 <pos 1/2, preempt>
  /// and the failure messages.  This is what a failing sched test prints;
  /// the header carries everything --replay needs.
  [[nodiscard]] std::string format(std::size_t max_steps = 120) const;
};

/// Parses a dotted decision string back into positions.  Throws
/// util::Error on malformed input.
[[nodiscard]] std::vector<int> parse_decisions(const std::string& text);

}  // namespace wearscope::sched
