// wearscope::sched — systematic and randomized schedule exploration.
//
// Stateless model checking over the deterministic scheduler: a *model* is
// a callable that builds fresh objects, runs threads through the hooked
// primitives and asserts invariants via Scheduler::fail().  The explorer
// re-executes the model under different decision sequences:
//
//  * exhaust() — depth-first enumeration of the decision tree with
//    iterative context bounding (Musuvathi & Qadeer, CHESS): branches
//    that would exceed `preemption_bound` forced switches away from a
//    runnable thread are pruned, which keeps small 2-shard scenarios
//    tractable while still covering every schedule reachable with few
//    preemptions — the bucket where almost all real concurrency bugs
//    live.  A partial-order heuristic additionally skips alternatives
//    that commute with the chosen transition (operations on different
//    nonzero objects are independent — different ring, different mutex —
//    so exploring both orders cannot distinguish states; SimGrid's
//    UnfoldingChecker is the exemplar for this reduction style).
//
//  * random_walks() — seeded uniform walks for the schedules beyond the
//    exhaustive budget; any failing seed reproduces the identical run.
//
//  * replay() — re-executes one decision string, the `--replay` path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "sched/trace.h"

namespace wearscope::sched {

/// One self-contained concurrency scenario.  Must build all state fresh
/// on every call (runs are re-executed many times) and report invariant
/// violations through Scheduler::fail(), never by throwing.
using Model = std::function<void(Scheduler&)>;

struct ExhaustOptions {
  /// Maximum forced switches away from a still-runnable thread per
  /// schedule (iterative context bounding).
  int preemption_bound = 2;
  /// Stop after this many executed schedules (budget guard).
  std::size_t max_schedules = 20000;
  /// Per-schedule step budget handed to the Scheduler.
  std::size_t max_steps = 100000;
  /// Skip alternatives independent of the chosen transition.
  bool independence_reduction = true;
};

struct ExploreStats {
  std::size_t schedules = 0;           ///< Schedules actually executed.
  std::size_t pruned_independent = 0;  ///< Branches skipped as commuting.
  std::size_t pruned_bound = 0;        ///< Branches over the bound.
  bool budget_exhausted = false;  ///< Hit max_schedules before completing.
  /// First failing schedule, if any (exploration stops on it).
  std::optional<ScheduleTrace> failure;

  [[nodiscard]] bool passed() const noexcept { return !failure; }
};

/// Runs `model` once under `source` and returns the trace.  `seed` is
/// stamped into the trace for reporting (0 for non-walk runs).
[[nodiscard]] ScheduleTrace run_once(const Model& model,
                                     DecisionSource& source,
                                     std::uint64_t seed = 0,
                                     std::size_t max_steps = 100000);

/// Exhaustively enumerates the decision tree of `model` under the
/// preemption bound.  Stops at the first failing schedule.
[[nodiscard]] ExploreStats exhaust(const Model& model,
                                   const ExhaustOptions& options = {});

/// Runs `walks` seeded random schedules (seeds derived from `base_seed`
/// via splitmix64, so walk w reproduces independently).  Stops at the
/// first failing schedule.
[[nodiscard]] ExploreStats random_walks(const Model& model,
                                        std::uint64_t base_seed,
                                        std::size_t walks,
                                        std::size_t max_steps = 100000);

/// Replays one decision sequence (from ScheduleTrace::decision_string via
/// parse_decisions) and returns the resulting trace.
[[nodiscard]] ScheduleTrace replay(const Model& model,
                                   const std::vector<int>& decisions,
                                   std::size_t max_steps = 100000);

}  // namespace wearscope::sched
