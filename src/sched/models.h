// wearscope::sched — the concurrency scenarios the harness explores.
//
// Each factory returns a self-contained Model over real wearscope objects
// (live::RingBuffer, live::LiveEngine, serve::SnapshotStore): the model
// builds everything fresh per run, drives it through the hooked choice
// points, and reports invariant violations via Scheduler::fail().  The
// heavyweight inputs — the capture fixture, the chaos fault manifest and
// the sequential reference snapshots — are built once (outside any
// schedule) and shared read-only across runs, so a schedule costs only
// the concurrent part.
//
// Invariants asserted, per the serving layer's contracts:
//   * snapshots are bitwise-equal to serve::reference_snapshot — the one
//     sequential reference `wearscope_serve --verify` also uses;
//   * snapshot.quarantine equals the chaos-injected manifest exactly;
//   * ring accounting is exact: pushed = records + barriers, popped =
//     pushed, rejected = 0 on clean runs, and close() races lose or
//     duplicate nothing;
//   * SnapshotStore publications are never torn (ServedSnapshot::fold
//     re-derives) and publish_seq is monotone for every reader.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "live/engine.h"
#include "live/snapshot.h"
#include "sched/explorer.h"
#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::sched {

/// Shared read-only input of the live-engine models: a tiny hand-built
/// capture, its chaos-injected quarantine expectation, and the sequential
/// reference snapshots every schedule must reproduce bitwise.
struct LiveFixture {
  /// The sanitized capture (time-sorted survivors of fault injection).
  trace::TraceStore survivors;
  /// survivors' events in feed-merge order (what the model pushes).
  std::vector<std::variant<trace::ProxyRecord, trace::MmeRecord>> feed;
  /// What the sanitizer quarantined == what the chaos plan injected.
  trace::QuarantineStats quarantine;
  /// Engine configuration (2 shards, tiny rings, 7-day window).
  live::LiveOptions options;
  /// Events fed before the mid-stream snapshot (0 = no mid snapshot).
  std::uint64_t mid_cut = 0;
  /// reference_snapshot at mid_cut (epoch 0); meaningful when mid_cut > 0.
  live::LiveSnapshot mid_expected;
  /// reference_snapshot over the whole capture (the stop() epoch).
  live::LiveSnapshot final_expected;
};

/// The minimal 2-shard fixture for exhaustive enumeration: one MME attach
/// and one proxy transaction per shard, no faults, final barrier only.
[[nodiscard]] const LiveFixture& tiny_live_fixture();

/// The fuller fixture for random walks: multi-day events on both shards,
/// chaos-injected faults (quarantine != 0), and a mid-stream barrier cut.
[[nodiscard]] const LiveFixture& walk_live_fixture();

/// Field-by-field comparison of two snapshots (backpressure excluded — the
/// reference runs threadless).  Returns "" when bitwise-equal, else a
/// comma-separated list of diverging fields.
[[nodiscard]] std::string snapshot_diff(const live::LiveSnapshot& got,
                                        const live::LiveSnapshot& want);

/// SPSC handoff: a producer thread pushes 1..items through a ring of the
/// given capacity, main consumes.  Asserts FIFO delivery, exact stats.
[[nodiscard]] Model ring_transfer_model(std::size_t items,
                                        std::size_t capacity);

/// close() racing a pushing (possibly parked) producer on a capacity-1
/// ring: main closes and drains while the producer attempts 3 pushes.
/// Asserts accepted pushes form a prefix, every accepted element is
/// delivered exactly once, and rejected accounts for the rest.
[[nodiscard]] Model ring_close_producer_model();

/// close() racing a draining (possibly parked) consumer: a consumer
/// thread pops to exhaustion while main pushes one element and closes.
/// Asserts the element is delivered exactly once and the consumer exits.
[[nodiscard]] Model ring_close_consumer_model();

/// SnapshotStore publish/read race: main publishes `publishes` epochs
/// into a store retaining `retain`, a reader thread interleaves latest /
/// at_epoch / retained_epochs.  Asserts checksums (no torn publication),
/// monotone publish_seq, sorted retention, and that a reference held
/// across eviction stays intact.
[[nodiscard]] Model store_publish_read_model(std::size_t retain,
                                             std::size_t publishes);

/// The tiny 2-shard engine end-to-end (tiny_live_fixture): feed, stop,
/// compare the final snapshot to the sequential reference, check ring
/// accounting.  Small enough for exhaustive enumeration.
[[nodiscard]] Model live_barrier_model();

/// The full live+serve path (walk_live_fixture): feed half, mid-stream
/// snapshot published to a SnapshotStore under a racing reader, feed the
/// rest, stop, publish the final epoch.  Asserts both snapshots equal
/// their references, quarantine == injected, ring accounting, and store
/// integrity.  Sized for seeded random walks.
[[nodiscard]] Model live_serve_model();

/// The mutation-test scenario: two threads increment a shared counter
/// twice each.  `buggy` splits the increment across a choice point (a
/// real lost-update race the explorer must find); otherwise the increment
/// is mutex-protected and every schedule passes.
[[nodiscard]] Model racy_counter_model(bool buggy);

}  // namespace wearscope::sched
