#include "sched/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace wearscope::sched {

int FifoSource::choose(const std::vector<StepCandidate>& candidates) {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].is_current) return static_cast<int>(i);
  }
  return 0;
}

int PrefixSource::choose(const std::vector<StepCandidate>& candidates) {
  if (next_ < prefix_.size()) {
    const int pos = prefix_[next_++];
    util::require(
        pos >= 0 && static_cast<std::size_t>(pos) < candidates.size(),
        "sched: decision " + std::to_string(next_ - 1) + " wants position " +
            std::to_string(pos) + " but this program point has " +
            std::to_string(candidates.size()) +
            " candidates (stale or hand-edited decision string?)");
    return pos;
  }
  return tail_.choose(candidates);
}

int RandomWalkSource::choose(const std::vector<StepCandidate>& candidates) {
  return static_cast<int>(rng_.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1));
}

Scheduler::Scheduler(DecisionSource& source, Options options)
    : source_(&source), opt_(options) {}

Scheduler::~Scheduler() = default;

ScheduleTrace Scheduler::run(const std::function<void()>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* main = register_locked(lk, "main");
    main->st = ThreadRec::St::kRunning;
    running_ = main;
  }
  util::sched::Hook* prev = util::sched::install(this);
  util::ensure(prev == nullptr, "sched: a scheduler is already installed");
  try {
    body();
  } catch (...) {
    util::sched::install(nullptr);
    throw;
  }
  util::sched::install(nullptr);

  std::unique_lock<std::mutex> lk(mu_);
  ThreadRec* main = by_id_.at(std::this_thread::get_id());
  main->st = ThreadRec::St::kFinished;
  for (const auto& rec : threads_) {
    if (rec->st != ThreadRec::St::kFinished) {
      trace_.failures.push_back(
          "model returned without joining thread '" + rec->name + "'");
      enter_free_run_locked("");
    }
  }
  trace_.seed = seed_;
  return std::move(trace_);
}

void Scheduler::fail(std::string message) {
  std::unique_lock<std::mutex> lk(mu_);
  trace_.failures.push_back(std::move(message));
}

void Scheduler::point(util::sched::Op op, std::uintptr_t obj) {
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  ThreadRec* self = self_locked(lk);
  if (free_run_.load(std::memory_order_acquire)) return;
  self->op = op;
  self->obj = obj;
  if (!reschedule_locked(lk, self, /*self_eligible=*/true)) {
    wait_for_token(lk, self);
  }
}

void Scheduler::block(util::sched::Op op, std::uintptr_t obj) {
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  ThreadRec* self = self_locked(lk);
  if (free_run_.load(std::memory_order_acquire)) return;
  self->op = op;
  self->obj = obj;
  self->st = ThreadRec::St::kBlocked;
  self->blocked_on = obj;
  self->block_seq = ++block_seq_;
  reschedule_locked(lk, self, /*self_eligible=*/false);
  wait_for_token(lk, self);
}

void Scheduler::unblock(util::sched::Op op, std::uintptr_t obj, bool all) {
  (void)op;
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (all) {
    for (const auto& rec : threads_) {
      if (rec->st == ThreadRec::St::kBlocked && rec->blocked_on == obj) {
        rec->st = ThreadRec::St::kRunnable;
        rec->blocked_on = 0;
      }
    }
    return;
  }
  ThreadRec* oldest = nullptr;
  for (const auto& rec : threads_) {
    if (rec->st == ThreadRec::St::kBlocked && rec->blocked_on == obj &&
        (oldest == nullptr || rec->block_seq < oldest->block_seq)) {
      oldest = rec.get();
    }
  }
  if (oldest != nullptr) {
    oldest->st = ThreadRec::St::kRunnable;
    oldest->blocked_on = 0;
  }
}

void Scheduler::thread_started(const char* name) {
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  ThreadRec* self = register_locked(lk, name);
  registry_cv_.notify_all();
  if (free_run_.load(std::memory_order_acquire)) return;
  wait_for_token(lk, self);
}

void Scheduler::thread_finished() {
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  auto it = by_id_.find(std::this_thread::get_id());
  if (it == by_id_.end()) return;
  ThreadRec* self = it->second;
  self->st = ThreadRec::St::kFinished;
  // Release any join_gate waiters parked on this thread's record.
  const auto key = reinterpret_cast<std::uintptr_t>(self);
  for (const auto& rec : threads_) {
    if (rec->st == ThreadRec::St::kBlocked && rec->blocked_on == key) {
      rec->st = ThreadRec::St::kRunnable;
      rec->blocked_on = 0;
    }
  }
  reschedule_locked(lk, self, /*self_eligible=*/false);
}

void Scheduler::await_thread_start(std::thread::id id) {
  std::unique_lock<std::mutex> lk(mu_);
  // The caller keeps the token: the newborn enters the candidate set at
  // exactly this program point, never at an OS-timing-dependent one.
  registry_cv_.wait(lk, [&] {
    return by_id_.count(id) != 0 ||
           free_run_.load(std::memory_order_acquire);
  });
}

void Scheduler::join_gate(std::thread::id id) {
  if (free_run_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second->st == ThreadRec::St::kFinished)
    return;
  ThreadRec* self = self_locked(lk);
  if (free_run_.load(std::memory_order_acquire)) return;
  ThreadRec* target = it->second;
  self->op = util::sched::Op::kJoin;
  self->obj = reinterpret_cast<std::uintptr_t>(target);
  self->st = ThreadRec::St::kBlocked;
  self->blocked_on = reinterpret_cast<std::uintptr_t>(target);
  self->block_seq = ++block_seq_;
  reschedule_locked(lk, self, /*self_eligible=*/false);
  wait_for_token(lk, self);
}

Scheduler::ThreadRec* Scheduler::register_locked(
    std::unique_lock<std::mutex>& lk, const char* name) {
  (void)lk;
  auto rec = std::make_unique<ThreadRec>();
  rec->index = static_cast<int>(threads_.size());
  rec->name = name;
  rec->os_id = std::this_thread::get_id();
  rec->st = ThreadRec::St::kRunnable;
  ThreadRec* raw = rec.get();
  threads_.push_back(std::move(rec));
  by_id_[raw->os_id] = raw;
  return raw;
}

Scheduler::ThreadRec* Scheduler::self_locked(
    std::unique_lock<std::mutex>& lk) {
  auto it = by_id_.find(std::this_thread::get_id());
  if (it != by_id_.end()) return it->second;
  // A thread we never saw register touched a hooked primitive.  Adopt it
  // defensively so the run stays serialized instead of racing.
  ThreadRec* rec = register_locked(
      lk, ("anon-" + std::to_string(threads_.size())).c_str());
  registry_cv_.notify_all();
  wait_for_token(lk, rec);
  return rec;
}

std::uint64_t Scheduler::object_id_locked(std::uintptr_t obj) {
  if (obj == 0) return 0;
  auto [it, inserted] =
      object_ids_.try_emplace(obj, object_ids_.size() + 1);
  (void)inserted;
  return it->second;
}

bool Scheduler::reschedule_locked(std::unique_lock<std::mutex>& lk,
                                  ThreadRec* self, bool self_eligible) {
  if (free_run_.load(std::memory_order_acquire)) return true;
  if (trace_.steps.size() >= opt_.max_steps) {
    trace_.failures.push_back("step budget exceeded (" +
                              std::to_string(opt_.max_steps) +
                              " scheduling decisions)");
    enter_free_run_locked("");
    return true;
  }

  std::vector<StepCandidate> candidates;
  std::vector<ThreadRec*> recs;
  for (const auto& rec : threads_) {
    const bool eligible =
        rec->st == ThreadRec::St::kRunnable ||
        (rec.get() == self && self_eligible);
    if (!eligible) continue;
    StepCandidate c;
    c.thread = rec->index;
    c.op = rec->op;
    c.obj = object_id_locked(rec->obj);
    c.is_current = rec.get() == self;
    candidates.push_back(c);
    recs.push_back(rec.get());
  }

  if (candidates.empty()) {
    bool unfinished = false;
    for (const auto& rec : threads_) {
      if (rec->st != ThreadRec::St::kFinished) unfinished = true;
    }
    if (unfinished) {
      trace_.deadlock = true;
      enter_free_run_locked("");
    } else {
      running_ = nullptr;
    }
    return true;
  }

  const int pos = source_->choose(candidates);
  util::ensure(pos >= 0 &&
                   static_cast<std::size_t>(pos) < candidates.size(),
               "sched: DecisionSource returned out-of-range position");
  ThreadRec* chosen = recs[static_cast<std::size_t>(pos)];

  TraceStep step;
  step.clock = trace_.steps.size();
  step.thread = chosen->index;
  step.thread_name = chosen->name;
  step.op = chosen->op;
  step.obj = object_id_locked(chosen->obj);
  step.chosen_pos = pos;
  step.preemption = self_eligible && chosen != self;
  step.candidates = std::move(candidates);
  trace_.steps.push_back(std::move(step));
  trace_.decisions.push_back(pos);

  if (chosen == self) return true;
  if (self->st == ThreadRec::St::kRunning)
    self->st = ThreadRec::St::kRunnable;
  chosen->st = ThreadRec::St::kRunning;
  running_ = chosen;
  chosen->cv.notify_one();
  (void)lk;
  return false;
}

void Scheduler::wait_for_token(std::unique_lock<std::mutex>& lk,
                               ThreadRec* self) {
  self->cv.wait(lk, [&] {
    return running_ == self || free_run_.load(std::memory_order_acquire);
  });
  if (running_ == self) self->st = ThreadRec::St::kRunning;
}

void Scheduler::enter_free_run_locked(const std::string& why) {
  if (!why.empty()) trace_.failures.push_back(why);
  if (free_run_.exchange(true, std::memory_order_acq_rel)) return;
  for (const auto& rec : threads_) rec->cv.notify_all();
  registry_cv_.notify_all();
}

ManagedThread::ManagedThread(std::string name, std::function<void()> fn)
    : thread_([name = std::move(name), fn = std::move(fn)] {
        util::sched::thread_started(name.c_str());
        fn();
        util::sched::thread_finished();
      }) {
  util::sched::await_thread_start(thread_.get_id());
}

ManagedThread::~ManagedThread() { join(); }

void ManagedThread::join() {
  if (!thread_.joinable()) return;
  util::sched::join_gate(thread_.get_id());
  thread_.join();
}

}  // namespace wearscope::sched
