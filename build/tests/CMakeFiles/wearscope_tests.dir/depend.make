# Empty dependencies file for wearscope_tests.
# This may be replaced when dependencies are built.
