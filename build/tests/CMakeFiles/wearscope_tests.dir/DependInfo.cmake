
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyses_micro.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_analyses_micro.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_analyses_micro.cpp.o.d"
  "/root/repo/tests/test_anonymize.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_anonymize.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_anonymize.cpp.o.d"
  "/root/repo/tests/test_app_id.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_app_id.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_app_id.cpp.o.d"
  "/root/repo/tests/test_appdb.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_appdb.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_appdb.cpp.o.d"
  "/root/repo/tests/test_applewatch_scenario.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_applewatch_scenario.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_applewatch_scenario.cpp.o.d"
  "/root/repo/tests/test_ascii_chart.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/test_cohorts.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_cohorts.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_cohorts.cpp.o.d"
  "/root/repo/tests/test_config_io.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_config_io.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_config_io.cpp.o.d"
  "/root/repo/tests/test_context.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_context.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_context.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_device_id.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_device_id.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_device_id.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_fuzz_io.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_fuzz_io.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_fuzz_io.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_geography.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_geography.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_geography.cpp.o.d"
  "/root/repo/tests/test_geography_analysis.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_geography_analysis.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_geography_analysis.cpp.o.d"
  "/root/repo/tests/test_mobility_model.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_mobility_model.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_mobility_model.cpp.o.d"
  "/root/repo/tests/test_pipeline_integration.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_pipeline_integration.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_pipeline_integration.cpp.o.d"
  "/root/repo/tests/test_pipeline_robustness.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_pipeline_robustness.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_pipeline_robustness.cpp.o.d"
  "/root/repo/tests/test_population.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_population.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_population.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_report_markdown.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_report_markdown.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_report_markdown.cpp.o.d"
  "/root/repo/tests/test_retention.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_retention.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_retention.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sessionize.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_sessionize.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_sessionize.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_store.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_store.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_store.cpp.o.d"
  "/root/repo/tests/test_streaming.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_streaming.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_streaming.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_traffic_model.cpp" "tests/CMakeFiles/wearscope_tests.dir/test_traffic_model.cpp.o" "gcc" "tests/CMakeFiles/wearscope_tests.dir/test_traffic_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wearscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/wearscope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/appdb/CMakeFiles/wearscope_appdb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wearscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wearscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
