file(REMOVE_RECURSE
  "CMakeFiles/adoption_study.dir/adoption_study.cpp.o"
  "CMakeFiles/adoption_study.dir/adoption_study.cpp.o.d"
  "adoption_study"
  "adoption_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adoption_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
