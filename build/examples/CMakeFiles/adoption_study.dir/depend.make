# Empty dependencies file for adoption_study.
# This may be replaced when dependencies are built.
