file(REMOVE_RECURSE
  "CMakeFiles/thirdparty_audit.dir/thirdparty_audit.cpp.o"
  "CMakeFiles/thirdparty_audit.dir/thirdparty_audit.cpp.o.d"
  "thirdparty_audit"
  "thirdparty_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thirdparty_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
