# Empty dependencies file for thirdparty_audit.
# This may be replaced when dependencies are built.
