# Empty dependencies file for app_popularity_report.
# This may be replaced when dependencies are built.
