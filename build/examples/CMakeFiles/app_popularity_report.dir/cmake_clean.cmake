file(REMOVE_RECURSE
  "CMakeFiles/app_popularity_report.dir/app_popularity_report.cpp.o"
  "CMakeFiles/app_popularity_report.dir/app_popularity_report.cpp.o.d"
  "app_popularity_report"
  "app_popularity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_popularity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
