file(REMOVE_RECURSE
  "CMakeFiles/mobility_study.dir/mobility_study.cpp.o"
  "CMakeFiles/mobility_study.dir/mobility_study.cpp.o.d"
  "mobility_study"
  "mobility_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
