# Empty dependencies file for mobility_study.
# This may be replaced when dependencies are built.
