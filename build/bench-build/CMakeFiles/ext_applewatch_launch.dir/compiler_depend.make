# Empty compiler generated dependencies file for ext_applewatch_launch.
# This may be replaced when dependencies are built.
