file(REMOVE_RECURSE
  "../bench/ext_applewatch_launch"
  "../bench/ext_applewatch_launch.pdb"
  "CMakeFiles/ext_applewatch_launch.dir/ext_applewatch_launch.cpp.o"
  "CMakeFiles/ext_applewatch_launch.dir/ext_applewatch_launch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_applewatch_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
