# Empty dependencies file for fig3b_activity.
# This may be replaced when dependencies are built.
