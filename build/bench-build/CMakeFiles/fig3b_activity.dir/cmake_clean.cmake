file(REMOVE_RECURSE
  "../bench/fig3b_activity"
  "../bench/fig3b_activity.pdb"
  "CMakeFiles/fig3b_activity.dir/fig3b_activity.cpp.o"
  "CMakeFiles/fig3b_activity.dir/fig3b_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
