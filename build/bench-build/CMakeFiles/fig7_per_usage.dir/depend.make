# Empty dependencies file for fig7_per_usage.
# This may be replaced when dependencies are built.
