file(REMOVE_RECURSE
  "../bench/fig7_per_usage"
  "../bench/fig7_per_usage.pdb"
  "CMakeFiles/fig7_per_usage.dir/fig7_per_usage.cpp.o"
  "CMakeFiles/fig7_per_usage.dir/fig7_per_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_per_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
