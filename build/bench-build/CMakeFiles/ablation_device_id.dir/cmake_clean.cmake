file(REMOVE_RECURSE
  "../bench/ablation_device_id"
  "../bench/ablation_device_id.pdb"
  "CMakeFiles/ablation_device_id.dir/ablation_device_id.cpp.o"
  "CMakeFiles/ablation_device_id.dir/ablation_device_id.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_device_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
