# Empty compiler generated dependencies file for ablation_device_id.
# This may be replaced when dependencies are built.
