file(REMOVE_RECURSE
  "../bench/fig5a_app_popularity"
  "../bench/fig5a_app_popularity.pdb"
  "CMakeFiles/fig5a_app_popularity.dir/fig5a_app_popularity.cpp.o"
  "CMakeFiles/fig5a_app_popularity.dir/fig5a_app_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_app_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
