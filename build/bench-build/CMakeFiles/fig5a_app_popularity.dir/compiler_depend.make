# Empty compiler generated dependencies file for fig5a_app_popularity.
# This may be replaced when dependencies are built.
