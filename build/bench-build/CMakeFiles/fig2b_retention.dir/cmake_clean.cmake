file(REMOVE_RECURSE
  "../bench/fig2b_retention"
  "../bench/fig2b_retention.pdb"
  "CMakeFiles/fig2b_retention.dir/fig2b_retention.cpp.o"
  "CMakeFiles/fig2b_retention.dir/fig2b_retention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
