# Empty compiler generated dependencies file for fig2b_retention.
# This may be replaced when dependencies are built.
