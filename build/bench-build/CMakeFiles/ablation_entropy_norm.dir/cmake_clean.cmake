file(REMOVE_RECURSE
  "../bench/ablation_entropy_norm"
  "../bench/ablation_entropy_norm.pdb"
  "CMakeFiles/ablation_entropy_norm.dir/ablation_entropy_norm.cpp.o"
  "CMakeFiles/ablation_entropy_norm.dir/ablation_entropy_norm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_entropy_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
