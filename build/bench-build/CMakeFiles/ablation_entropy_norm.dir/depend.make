# Empty dependencies file for ablation_entropy_norm.
# This may be replaced when dependencies are built.
