# Empty compiler generated dependencies file for ablation_signature_coverage.
# This may be replaced when dependencies are built.
