file(REMOVE_RECURSE
  "../bench/ablation_signature_coverage"
  "../bench/ablation_signature_coverage.pdb"
  "CMakeFiles/ablation_signature_coverage.dir/ablation_signature_coverage.cpp.o"
  "CMakeFiles/ablation_signature_coverage.dir/ablation_signature_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signature_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
