file(REMOVE_RECURSE
  "../bench/fig4a_user_traffic"
  "../bench/fig4a_user_traffic.pdb"
  "CMakeFiles/fig4a_user_traffic.dir/fig4a_user_traffic.cpp.o"
  "CMakeFiles/fig4a_user_traffic.dir/fig4a_user_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_user_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
