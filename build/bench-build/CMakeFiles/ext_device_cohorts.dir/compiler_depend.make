# Empty compiler generated dependencies file for ext_device_cohorts.
# This may be replaced when dependencies are built.
