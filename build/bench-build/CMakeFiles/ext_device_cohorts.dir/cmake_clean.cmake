file(REMOVE_RECURSE
  "../bench/ext_device_cohorts"
  "../bench/ext_device_cohorts.pdb"
  "CMakeFiles/ext_device_cohorts.dir/ext_device_cohorts.cpp.o"
  "CMakeFiles/ext_device_cohorts.dir/ext_device_cohorts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_device_cohorts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
