# Empty compiler generated dependencies file for fig3a_diurnal.
# This may be replaced when dependencies are built.
