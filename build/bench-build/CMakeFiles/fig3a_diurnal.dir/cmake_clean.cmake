file(REMOVE_RECURSE
  "../bench/fig3a_diurnal"
  "../bench/fig3a_diurnal.pdb"
  "CMakeFiles/fig3a_diurnal.dir/fig3a_diurnal.cpp.o"
  "CMakeFiles/fig3a_diurnal.dir/fig3a_diurnal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
