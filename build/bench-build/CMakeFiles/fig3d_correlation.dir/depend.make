# Empty dependencies file for fig3d_correlation.
# This may be replaced when dependencies are built.
