file(REMOVE_RECURSE
  "../bench/fig3d_correlation"
  "../bench/fig3d_correlation.pdb"
  "CMakeFiles/fig3d_correlation.dir/fig3d_correlation.cpp.o"
  "CMakeFiles/fig3d_correlation.dir/fig3d_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
