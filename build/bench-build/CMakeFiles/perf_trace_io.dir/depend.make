# Empty dependencies file for perf_trace_io.
# This may be replaced when dependencies are built.
