file(REMOVE_RECURSE
  "../bench/perf_trace_io"
  "../bench/perf_trace_io.pdb"
  "CMakeFiles/perf_trace_io.dir/perf_trace_io.cpp.o"
  "CMakeFiles/perf_trace_io.dir/perf_trace_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_trace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
