file(REMOVE_RECURSE
  "../bench/fig5b_app_usage"
  "../bench/fig5b_app_usage.pdb"
  "CMakeFiles/fig5b_app_usage.dir/fig5b_app_usage.cpp.o"
  "CMakeFiles/fig5b_app_usage.dir/fig5b_app_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_app_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
