# Empty dependencies file for fig5b_app_usage.
# This may be replaced when dependencies are built.
