file(REMOVE_RECURSE
  "CMakeFiles/wearscope_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/wearscope_bench_common.dir/bench_common.cpp.o.d"
  "libwearscope_bench_common.a"
  "libwearscope_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
