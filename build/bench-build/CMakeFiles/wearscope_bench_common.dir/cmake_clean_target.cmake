file(REMOVE_RECURSE
  "libwearscope_bench_common.a"
)
