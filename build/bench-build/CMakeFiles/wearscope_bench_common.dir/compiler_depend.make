# Empty compiler generated dependencies file for wearscope_bench_common.
# This may be replaced when dependencies are built.
