file(REMOVE_RECURSE
  "../bench/fig2a_adoption"
  "../bench/fig2a_adoption.pdb"
  "CMakeFiles/fig2a_adoption.dir/fig2a_adoption.cpp.o"
  "CMakeFiles/fig2a_adoption.dir/fig2a_adoption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
