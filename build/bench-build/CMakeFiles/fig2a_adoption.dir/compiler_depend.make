# Empty compiler generated dependencies file for fig2a_adoption.
# This may be replaced when dependencies are built.
