file(REMOVE_RECURSE
  "../bench/fig4c_displacement"
  "../bench/fig4c_displacement.pdb"
  "CMakeFiles/fig4c_displacement.dir/fig4c_displacement.cpp.o"
  "CMakeFiles/fig4c_displacement.dir/fig4c_displacement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_displacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
