# Empty compiler generated dependencies file for fig4c_displacement.
# This may be replaced when dependencies are built.
