file(REMOVE_RECURSE
  "../bench/fig4b_traffic_ratio"
  "../bench/fig4b_traffic_ratio.pdb"
  "CMakeFiles/fig4b_traffic_ratio.dir/fig4b_traffic_ratio.cpp.o"
  "CMakeFiles/fig4b_traffic_ratio.dir/fig4b_traffic_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_traffic_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
