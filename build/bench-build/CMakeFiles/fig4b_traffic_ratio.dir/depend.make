# Empty dependencies file for fig4b_traffic_ratio.
# This may be replaced when dependencies are built.
