# Empty dependencies file for fig8_thirdparty.
# This may be replaced when dependencies are built.
