file(REMOVE_RECURSE
  "../bench/fig8_thirdparty"
  "../bench/fig8_thirdparty.pdb"
  "CMakeFiles/fig8_thirdparty.dir/fig8_thirdparty.cpp.o"
  "CMakeFiles/fig8_thirdparty.dir/fig8_thirdparty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_thirdparty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
