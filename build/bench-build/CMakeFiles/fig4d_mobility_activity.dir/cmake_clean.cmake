file(REMOVE_RECURSE
  "../bench/fig4d_mobility_activity"
  "../bench/fig4d_mobility_activity.pdb"
  "CMakeFiles/fig4d_mobility_activity.dir/fig4d_mobility_activity.cpp.o"
  "CMakeFiles/fig4d_mobility_activity.dir/fig4d_mobility_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_mobility_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
