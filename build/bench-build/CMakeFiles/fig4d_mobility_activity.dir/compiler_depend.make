# Empty compiler generated dependencies file for fig4d_mobility_activity.
# This may be replaced when dependencies are built.
