file(REMOVE_RECURSE
  "../bench/sec6_throughdevice"
  "../bench/sec6_throughdevice.pdb"
  "CMakeFiles/sec6_throughdevice.dir/sec6_throughdevice.cpp.o"
  "CMakeFiles/sec6_throughdevice.dir/sec6_throughdevice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_throughdevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
