# Empty dependencies file for sec6_throughdevice.
# This may be replaced when dependencies are built.
