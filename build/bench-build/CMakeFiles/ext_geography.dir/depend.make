# Empty dependencies file for ext_geography.
# This may be replaced when dependencies are built.
