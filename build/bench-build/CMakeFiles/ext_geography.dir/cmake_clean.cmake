file(REMOVE_RECURSE
  "../bench/ext_geography"
  "../bench/ext_geography.pdb"
  "CMakeFiles/ext_geography.dir/ext_geography.cpp.o"
  "CMakeFiles/ext_geography.dir/ext_geography.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
