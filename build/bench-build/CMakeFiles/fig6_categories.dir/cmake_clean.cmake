file(REMOVE_RECURSE
  "../bench/fig6_categories"
  "../bench/fig6_categories.pdb"
  "CMakeFiles/fig6_categories.dir/fig6_categories.cpp.o"
  "CMakeFiles/fig6_categories.dir/fig6_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
