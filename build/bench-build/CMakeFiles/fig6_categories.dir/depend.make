# Empty dependencies file for fig6_categories.
# This may be replaced when dependencies are built.
