# Empty compiler generated dependencies file for ext_retention.
# This may be replaced when dependencies are built.
