file(REMOVE_RECURSE
  "../bench/ext_retention"
  "../bench/ext_retention.pdb"
  "CMakeFiles/ext_retention.dir/ext_retention.cpp.o"
  "CMakeFiles/ext_retention.dir/ext_retention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
