file(REMOVE_RECURSE
  "../bench/perf_simnet"
  "../bench/perf_simnet.pdb"
  "CMakeFiles/perf_simnet.dir/perf_simnet.cpp.o"
  "CMakeFiles/perf_simnet.dir/perf_simnet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
