# Empty dependencies file for perf_simnet.
# This may be replaced when dependencies are built.
