# Empty compiler generated dependencies file for fig3c_transactions.
# This may be replaced when dependencies are built.
