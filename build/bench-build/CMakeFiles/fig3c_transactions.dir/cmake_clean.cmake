file(REMOVE_RECURSE
  "../bench/fig3c_transactions"
  "../bench/fig3c_transactions.pdb"
  "CMakeFiles/fig3c_transactions.dir/fig3c_transactions.cpp.o"
  "CMakeFiles/fig3c_transactions.dir/fig3c_transactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
