file(REMOVE_RECURSE
  "../bench/ablation_session_gap"
  "../bench/ablation_session_gap.pdb"
  "CMakeFiles/ablation_session_gap.dir/ablation_session_gap.cpp.o"
  "CMakeFiles/ablation_session_gap.dir/ablation_session_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_session_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
