# Empty compiler generated dependencies file for ablation_session_gap.
# This may be replaced when dependencies are built.
