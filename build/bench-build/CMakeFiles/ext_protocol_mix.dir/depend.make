# Empty dependencies file for ext_protocol_mix.
# This may be replaced when dependencies are built.
