file(REMOVE_RECURSE
  "../bench/ext_protocol_mix"
  "../bench/ext_protocol_mix.pdb"
  "CMakeFiles/ext_protocol_mix.dir/ext_protocol_mix.cpp.o"
  "CMakeFiles/ext_protocol_mix.dir/ext_protocol_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_protocol_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
