# Empty compiler generated dependencies file for wearscope_gen.
# This may be replaced when dependencies are built.
