file(REMOVE_RECURSE
  "CMakeFiles/wearscope_gen.dir/wearscope_gen.cpp.o"
  "CMakeFiles/wearscope_gen.dir/wearscope_gen.cpp.o.d"
  "wearscope_gen"
  "wearscope_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
