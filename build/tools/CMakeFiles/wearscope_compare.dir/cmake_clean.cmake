file(REMOVE_RECURSE
  "CMakeFiles/wearscope_compare.dir/wearscope_compare.cpp.o"
  "CMakeFiles/wearscope_compare.dir/wearscope_compare.cpp.o.d"
  "wearscope_compare"
  "wearscope_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
