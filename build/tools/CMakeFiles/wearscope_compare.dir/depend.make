# Empty dependencies file for wearscope_compare.
# This may be replaced when dependencies are built.
