# Empty dependencies file for wearscope_analyze.
# This may be replaced when dependencies are built.
