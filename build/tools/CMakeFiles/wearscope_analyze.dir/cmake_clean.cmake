file(REMOVE_RECURSE
  "CMakeFiles/wearscope_analyze.dir/wearscope_analyze.cpp.o"
  "CMakeFiles/wearscope_analyze.dir/wearscope_analyze.cpp.o.d"
  "wearscope_analyze"
  "wearscope_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
