# Empty compiler generated dependencies file for wearscope_inspect.
# This may be replaced when dependencies are built.
