file(REMOVE_RECURSE
  "CMakeFiles/wearscope_inspect.dir/wearscope_inspect.cpp.o"
  "CMakeFiles/wearscope_inspect.dir/wearscope_inspect.cpp.o.d"
  "wearscope_inspect"
  "wearscope_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
