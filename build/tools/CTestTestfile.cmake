# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_help_wearscope_analyze "/root/repo/build/tools/wearscope_analyze" "--help")
set_tests_properties(tool_help_wearscope_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_help_wearscope_compare "/root/repo/build/tools/wearscope_compare" "--help")
set_tests_properties(tool_help_wearscope_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_help_wearscope_gen "/root/repo/build/tools/wearscope_gen" "--help")
set_tests_properties(tool_help_wearscope_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_help_wearscope_inspect "/root/repo/build/tools/wearscope_inspect" "--help")
set_tests_properties(tool_help_wearscope_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_roundtrip "/usr/bin/cmake" "-DGEN=/root/repo/build/tools/wearscope_gen" "-DINSPECT=/root/repo/build/tools/wearscope_inspect" "-DANALYZE=/root/repo/build/tools/wearscope_analyze" "-DCOMPARE=/root/repo/build/tools/wearscope_compare" "-DWORK=/root/repo/build/tool_roundtrip_work" "-P" "/root/repo/tools/roundtrip_test.cmake")
set_tests_properties(tool_roundtrip PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
