file(REMOVE_RECURSE
  "libwearscope_trace.a"
)
