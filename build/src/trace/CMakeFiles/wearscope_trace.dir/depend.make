# Empty dependencies file for wearscope_trace.
# This may be replaced when dependencies are built.
