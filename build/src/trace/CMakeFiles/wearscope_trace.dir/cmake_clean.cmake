file(REMOVE_RECURSE
  "CMakeFiles/wearscope_trace.dir/anonymize.cpp.o"
  "CMakeFiles/wearscope_trace.dir/anonymize.cpp.o.d"
  "CMakeFiles/wearscope_trace.dir/binary_io.cpp.o"
  "CMakeFiles/wearscope_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/wearscope_trace.dir/bundle.cpp.o"
  "CMakeFiles/wearscope_trace.dir/bundle.cpp.o.d"
  "CMakeFiles/wearscope_trace.dir/csv_io.cpp.o"
  "CMakeFiles/wearscope_trace.dir/csv_io.cpp.o.d"
  "CMakeFiles/wearscope_trace.dir/store.cpp.o"
  "CMakeFiles/wearscope_trace.dir/store.cpp.o.d"
  "libwearscope_trace.a"
  "libwearscope_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
