
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/anonymize.cpp" "src/trace/CMakeFiles/wearscope_trace.dir/anonymize.cpp.o" "gcc" "src/trace/CMakeFiles/wearscope_trace.dir/anonymize.cpp.o.d"
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/wearscope_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/wearscope_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/bundle.cpp" "src/trace/CMakeFiles/wearscope_trace.dir/bundle.cpp.o" "gcc" "src/trace/CMakeFiles/wearscope_trace.dir/bundle.cpp.o.d"
  "/root/repo/src/trace/csv_io.cpp" "src/trace/CMakeFiles/wearscope_trace.dir/csv_io.cpp.o" "gcc" "src/trace/CMakeFiles/wearscope_trace.dir/csv_io.cpp.o.d"
  "/root/repo/src/trace/store.cpp" "src/trace/CMakeFiles/wearscope_trace.dir/store.cpp.o" "gcc" "src/trace/CMakeFiles/wearscope_trace.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wearscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
