# Empty dependencies file for wearscope_appdb.
# This may be replaced when dependencies are built.
