
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appdb/app_catalog.cpp" "src/appdb/CMakeFiles/wearscope_appdb.dir/app_catalog.cpp.o" "gcc" "src/appdb/CMakeFiles/wearscope_appdb.dir/app_catalog.cpp.o.d"
  "/root/repo/src/appdb/categories.cpp" "src/appdb/CMakeFiles/wearscope_appdb.dir/categories.cpp.o" "gcc" "src/appdb/CMakeFiles/wearscope_appdb.dir/categories.cpp.o.d"
  "/root/repo/src/appdb/device_models.cpp" "src/appdb/CMakeFiles/wearscope_appdb.dir/device_models.cpp.o" "gcc" "src/appdb/CMakeFiles/wearscope_appdb.dir/device_models.cpp.o.d"
  "/root/repo/src/appdb/third_party.cpp" "src/appdb/CMakeFiles/wearscope_appdb.dir/third_party.cpp.o" "gcc" "src/appdb/CMakeFiles/wearscope_appdb.dir/third_party.cpp.o.d"
  "/root/repo/src/appdb/traffic_profile.cpp" "src/appdb/CMakeFiles/wearscope_appdb.dir/traffic_profile.cpp.o" "gcc" "src/appdb/CMakeFiles/wearscope_appdb.dir/traffic_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wearscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wearscope_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
