file(REMOVE_RECURSE
  "libwearscope_appdb.a"
)
