file(REMOVE_RECURSE
  "CMakeFiles/wearscope_appdb.dir/app_catalog.cpp.o"
  "CMakeFiles/wearscope_appdb.dir/app_catalog.cpp.o.d"
  "CMakeFiles/wearscope_appdb.dir/categories.cpp.o"
  "CMakeFiles/wearscope_appdb.dir/categories.cpp.o.d"
  "CMakeFiles/wearscope_appdb.dir/device_models.cpp.o"
  "CMakeFiles/wearscope_appdb.dir/device_models.cpp.o.d"
  "CMakeFiles/wearscope_appdb.dir/third_party.cpp.o"
  "CMakeFiles/wearscope_appdb.dir/third_party.cpp.o.d"
  "CMakeFiles/wearscope_appdb.dir/traffic_profile.cpp.o"
  "CMakeFiles/wearscope_appdb.dir/traffic_profile.cpp.o.d"
  "libwearscope_appdb.a"
  "libwearscope_appdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_appdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
