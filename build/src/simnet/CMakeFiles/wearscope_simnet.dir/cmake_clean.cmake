file(REMOVE_RECURSE
  "CMakeFiles/wearscope_simnet.dir/config.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/config.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/config_io.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/config_io.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/diurnal.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/diurnal.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/geography.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/geography.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/mobility.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/mobility.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/population.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/population.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/simulator.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/simulator.cpp.o.d"
  "CMakeFiles/wearscope_simnet.dir/traffic.cpp.o"
  "CMakeFiles/wearscope_simnet.dir/traffic.cpp.o.d"
  "libwearscope_simnet.a"
  "libwearscope_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
