# Empty compiler generated dependencies file for wearscope_simnet.
# This may be replaced when dependencies are built.
