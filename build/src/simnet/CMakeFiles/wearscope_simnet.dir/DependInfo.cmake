
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/config.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/config.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/config.cpp.o.d"
  "/root/repo/src/simnet/config_io.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/config_io.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/config_io.cpp.o.d"
  "/root/repo/src/simnet/diurnal.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/diurnal.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/diurnal.cpp.o.d"
  "/root/repo/src/simnet/geography.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/geography.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/geography.cpp.o.d"
  "/root/repo/src/simnet/mobility.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/mobility.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/mobility.cpp.o.d"
  "/root/repo/src/simnet/population.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/population.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/population.cpp.o.d"
  "/root/repo/src/simnet/simulator.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/simulator.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/simulator.cpp.o.d"
  "/root/repo/src/simnet/traffic.cpp" "src/simnet/CMakeFiles/wearscope_simnet.dir/traffic.cpp.o" "gcc" "src/simnet/CMakeFiles/wearscope_simnet.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wearscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wearscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/appdb/CMakeFiles/wearscope_appdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
