file(REMOVE_RECURSE
  "libwearscope_simnet.a"
)
