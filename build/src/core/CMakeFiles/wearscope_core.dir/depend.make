# Empty dependencies file for wearscope_core.
# This may be replaced when dependencies are built.
