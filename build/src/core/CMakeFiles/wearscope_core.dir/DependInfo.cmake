
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis_activity.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_activity.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_activity.cpp.o.d"
  "/root/repo/src/core/analysis_adoption.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_adoption.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_adoption.cpp.o.d"
  "/root/repo/src/core/analysis_apps.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_apps.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_apps.cpp.o.d"
  "/root/repo/src/core/analysis_categories.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_categories.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_categories.cpp.o.d"
  "/root/repo/src/core/analysis_cohorts.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_cohorts.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_cohorts.cpp.o.d"
  "/root/repo/src/core/analysis_comparison.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_comparison.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_comparison.cpp.o.d"
  "/root/repo/src/core/analysis_diurnal.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_diurnal.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_diurnal.cpp.o.d"
  "/root/repo/src/core/analysis_geography.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_geography.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_geography.cpp.o.d"
  "/root/repo/src/core/analysis_mobility.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_mobility.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_mobility.cpp.o.d"
  "/root/repo/src/core/analysis_protocol.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_protocol.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_protocol.cpp.o.d"
  "/root/repo/src/core/analysis_retention.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_retention.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_retention.cpp.o.d"
  "/root/repo/src/core/analysis_thirdparty.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_thirdparty.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_thirdparty.cpp.o.d"
  "/root/repo/src/core/analysis_throughdevice.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_throughdevice.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_throughdevice.cpp.o.d"
  "/root/repo/src/core/analysis_usage.cpp" "src/core/CMakeFiles/wearscope_core.dir/analysis_usage.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/analysis_usage.cpp.o.d"
  "/root/repo/src/core/app_id.cpp" "src/core/CMakeFiles/wearscope_core.dir/app_id.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/app_id.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/wearscope_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/context.cpp.o.d"
  "/root/repo/src/core/device_id.cpp" "src/core/CMakeFiles/wearscope_core.dir/device_id.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/device_id.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/wearscope_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/wearscope_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_markdown.cpp" "src/core/CMakeFiles/wearscope_core.dir/report_markdown.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/report_markdown.cpp.o.d"
  "/root/repo/src/core/sessionize.cpp" "src/core/CMakeFiles/wearscope_core.dir/sessionize.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/sessionize.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/wearscope_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/wearscope_core.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wearscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wearscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/appdb/CMakeFiles/wearscope_appdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
