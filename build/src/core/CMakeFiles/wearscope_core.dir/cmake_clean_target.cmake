file(REMOVE_RECURSE
  "libwearscope_core.a"
)
