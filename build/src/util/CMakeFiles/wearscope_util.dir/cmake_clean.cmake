file(REMOVE_RECURSE
  "CMakeFiles/wearscope_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/wearscope_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/csv.cpp.o"
  "CMakeFiles/wearscope_util.dir/csv.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/flags.cpp.o"
  "CMakeFiles/wearscope_util.dir/flags.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/geo.cpp.o"
  "CMakeFiles/wearscope_util.dir/geo.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/rng.cpp.o"
  "CMakeFiles/wearscope_util.dir/rng.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/sim_time.cpp.o"
  "CMakeFiles/wearscope_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/stats.cpp.o"
  "CMakeFiles/wearscope_util.dir/stats.cpp.o.d"
  "CMakeFiles/wearscope_util.dir/strings.cpp.o"
  "CMakeFiles/wearscope_util.dir/strings.cpp.o.d"
  "libwearscope_util.a"
  "libwearscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
