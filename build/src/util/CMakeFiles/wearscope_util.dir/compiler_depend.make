# Empty compiler generated dependencies file for wearscope_util.
# This may be replaced when dependencies are built.
