file(REMOVE_RECURSE
  "libwearscope_util.a"
)
