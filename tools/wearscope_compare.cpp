// wearscope_compare — run the full study over two captures and print the
// measured statistics side by side (e.g. status quo vs the Apple-Watch
// launch what-if, or an original vs its anonymized release copy).
//
//   wearscope_compare --a traces/base --b traces/whatif
#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "simnet/config_io.h"
#include "trace/bundle.h"
#include "util/ascii_chart.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace wearscope;

core::StudyReport study(const std::string& dir) {
  core::AnalysisOptions opt;
  const std::filesystem::path cfg_path =
      std::filesystem::path(dir) / "generator.cfg";
  if (std::filesystem::exists(cfg_path)) {
    const simnet::SimConfig cfg = simnet::load_config_file(cfg_path);
    opt.observation_days = cfg.observation_days;
    opt.detailed_start_day = cfg.observation_days - cfg.detailed_days;
    opt.long_tail_apps = cfg.long_tail_apps;
  }
  trace::TraceStore store = trace::load_bundle(dir);
  store.sort_by_time();
  return core::Pipeline(store, opt).run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wearscope;
  try {
    std::string dir_a;
    std::string dir_b;
    util::FlagParser flags(
        "wearscope_compare: side-by-side study of two trace bundles");
    flags.add_string("a", &dir_a, "first bundle directory (required)");
    flags.add_string("b", &dir_b, "second bundle directory (required)");
    if (!flags.parse(argc, argv)) return 0;
    util::require(!dir_a.empty() && !dir_b.empty(),
                  "--a and --b are required");

    std::printf("analyzing A = %s ...\n", dir_a.c_str());
    const core::StudyReport a = study(dir_a);
    std::printf("analyzing B = %s ...\n", dir_b.c_str());
    const core::StudyReport b = study(dir_b);

    std::printf("\n== side-by-side (every check's measured value) ==\n");
    std::vector<std::vector<std::string>> rows;
    for (const core::FigureData& fa : a.figures) {
      const core::FigureData* fb = nullptr;
      for (const core::FigureData& f : b.figures) {
        if (f.id == fa.id) {
          fb = &f;
          break;
        }
      }
      if (fb == nullptr || fb->checks.size() != fa.checks.size()) continue;
      for (std::size_t c = 0; c < fa.checks.size(); ++c) {
        const double va = fa.checks[c].measured;
        const double vb = fb->checks[c].measured;
        const double delta_pct =
            va != 0.0 ? 100.0 * (vb - va) / std::abs(va) : 0.0;
        rows.push_back({fa.id, fa.checks[c].claim, util::format_num(va),
                        util::format_num(vb),
                        (delta_pct >= 0 ? "+" : "") +
                            util::format_num(delta_pct, 1) + "%"});
      }
    }
    std::fputs(util::table({"figure", "statistic", "A", "B", "delta"}, rows)
                   .c_str(),
               stdout);
    std::printf("\nfailed checks: A=%zu B=%zu\n", a.failed_checks(),
                b.failed_checks());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
