// wearscope_live — replay an on-disk capture through the concurrent
// live-ingest engine and report its online statistics.
//
//   wearscope_live --bundle traces/run1 --shards 4
//   wearscope_live --bundle d --shards 8 --snapshot-every 1d --speedup 0
//   wearscope_live --bundle d --verify          # cross-check vs batch
//
// --speedup 0 (the default) replays as fast as the engine accepts;
// --speedup 1 replays in real time. --snapshot-every takes seconds of
// stream time, with optional s/m/h/d suffix; 0 disables periodic
// snapshots (the final drain snapshot is always taken).
// --chaos-seed N injects a seeded fault plan (--chaos-profile) before the
// replay: record-level damage is quarantined by the sanitizer (surfacing in
// the snapshot), runtime read faults exercise the replayer's retry/backoff
// path.  --verify stays exact under chaos as long as the profile has no
// permanent read faults (use "transient" for that combination).
//
// --partition i/N runs the engine as partition i of an N-way federated
// cover: records whose user another partition owns are filtered at the
// router (the global stream position still advances, so `wearscope_merge`
// reassembles the single-process snapshot bitwise).  --partial-dir DIR
// persists a partial snapshot per epoch (fed/partial_io.h wire format).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "chaos/fault_plan.h"
#include "core/pipeline.h"
#include "fed/partial_io.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "simnet/config_io.h"
#include "trace/bundle.h"
#include "trace/sanitize.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace wearscope;

void print_snapshot(const live::LiveSnapshot& snap, const char* label) {
  std::printf("%s (epoch %llu, %llu records):\n", label,
              static_cast<unsigned long long>(snap.epoch),
              static_cast<unsigned long long>(snap.records));
  std::printf("  ever registered    : %zu (%.1f%% transacting)\n",
              snap.adoption.ever_registered,
              snap.adoption.ever_transacting_fraction * 100.0);
  std::printf("  monthly growth     : %+.2f%%\n",
              snap.adoption.monthly_growth * 100.0);
  std::printf("  mean active        : %.2f days/week, %.2f h/day\n",
              snap.activity.mean_active_days,
              snap.activity.mean_active_hours);
  std::printf("  median transaction : %.0f bytes (%.0f%% under 10 KB)\n",
              snap.activity.median_txn_bytes,
              snap.activity.frac_txn_under_10kb * 100.0);
  std::printf("  class mix (txns)   : app=%llu util=%llu ads=%llu "
              "analytics=%llu\n",
              static_cast<unsigned long long>(snap.class_txns[0]),
              static_cast<unsigned long long>(snap.class_txns[1]),
              static_cast<unsigned long long>(snap.class_txns[2]),
              static_cast<unsigned long long>(snap.class_txns[3]));
  const std::size_t top = std::min<std::size_t>(5, snap.apps.size());
  for (std::size_t i = 0; i < top; ++i) {
    const live::LiveSnapshot::AppRow& row = snap.apps[i];
    std::printf("  app #%zu            : %-18s %8llu txns %6llu usages "
                "%5llu users\n",
                i + 1, row.name.c_str(),
                static_cast<unsigned long long>(row.counter.transactions),
                static_cast<unsigned long long>(row.counter.usages),
                static_cast<unsigned long long>(row.counter.distinct_users));
  }
  if (snap.sketch.enabled) {
    std::printf("  sketch memory      : %zu bytes (merged across shards)\n",
                snap.sketch.memory_bytes);
    std::printf("  ~registered users  : %.0f (HLL)\n",
                snap.sketch.registered_users);
    std::printf("  ~transacting users : %.0f (HLL)\n",
                snap.sketch.transacting_users);
    std::printf("  ~txn size p50/95/99: %.0f / %.0f / %.0f bytes (t-digest)\n",
                snap.sketch.txn_size_p50, snap.sketch.txn_size_p95,
                snap.sketch.txn_size_p99);
    const std::size_t hh = std::min<std::size_t>(5, snap.sketch.top_apps.size());
    for (std::size_t i = 0; i < hh; ++i) {
      std::printf("  heavy hitter #%zu    : %-18s %8llu txns\n", i + 1,
                  snap.sketch.top_apps[i].first.c_str(),
                  static_cast<unsigned long long>(
                      snap.sketch.top_apps[i].second));
    }
  }
  std::printf("  backpressure       : %llu feed stalls, %llu idle waits\n",
              static_cast<unsigned long long>(
                  snap.backpressure.producer_waits),
              static_cast<unsigned long long>(
                  snap.backpressure.consumer_waits));
  if (snap.quarantine.any()) {
    std::printf("  quarantine         : %llu dropped, %llu repaired, "
                "%llu retried reads\n",
                static_cast<unsigned long long>(
                    snap.quarantine.total_dropped()),
                static_cast<unsigned long long>(snap.quarantine.reordered),
                static_cast<unsigned long long>(
                    snap.quarantine.transient_retries));
  }
}

/// Exact comparison of the live final snapshot against the batch pipeline.
bool verify_against_batch(const trace::TraceStore& store,
                          const live::LiveSnapshot& snap,
                          const core::AnalysisOptions& opt) {
  const core::Pipeline pipeline(store, opt);
  const core::AdoptionResult batch = pipeline.run().adoption;
  const core::AdoptionResult& online = snap.adoption;

  std::size_t mismatches = 0;
  const auto check = [&](const char* what, double a, double b) {
    if (a != b) {
      std::printf("  MISMATCH %-24s live=%.17g batch=%.17g\n", what, a, b);
      ++mismatches;
    }
  };
  check("ever_registered", static_cast<double>(online.ever_registered),
        static_cast<double>(batch.ever_registered));
  check("ever_transacted", static_cast<double>(online.ever_transacted),
        static_cast<double>(batch.ever_transacted));
  check("ever_transacting_fraction", online.ever_transacting_fraction,
        batch.ever_transacting_fraction);
  check("total_growth", online.total_growth, batch.total_growth);
  check("monthly_growth", online.monthly_growth, batch.monthly_growth);
  check("still_active_share", online.still_active_share,
        batch.still_active_share);
  check("gone_share", online.gone_share, batch.gone_share);
  check("new_share", online.new_share, batch.new_share);
  check("churned_of_initial", online.churned_of_initial,
        batch.churned_of_initial);
  if (online.daily_registered_norm != batch.daily_registered_norm) {
    std::printf("  MISMATCH daily_registered_norm series\n");
    ++mismatches;
  }
  return mismatches == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string bundle_dir;
    std::int64_t shards = 4;
    std::int64_t ring_capacity = 4096;
    std::string snapshot_every = "0";
    double speedup = 0.0;
    bool verify = false;
    bool sketch = false;
    std::int64_t observation_days = -1;
    std::int64_t detailed_start_day = -1;
    std::int64_t chaos_seed = -1;
    std::string chaos_profile = "records";
    std::string partition;
    std::string partial_dir;

    util::FlagParser flags(
        "wearscope_live: replay a trace bundle through the concurrent "
        "live-ingest engine (sharded workers + periodic snapshots)");
    flags.add_string("bundle", &bundle_dir, "bundle directory (required)");
    flags.add_int("shards", &shards, "worker shards (user partitions)");
    flags.add_int("ring-capacity", &ring_capacity,
                  "events buffered per shard ring");
    flags.add_string("snapshot-every", &snapshot_every,
                     "periodic snapshot interval in stream time "
                     "(e.g. 90, 15m, 6h, 1d; 0 = final only)");
    flags.add_double("speedup", &speedup,
                     "stream-time/wall-time ratio (0 = as fast as possible)");
    flags.add_bool("verify", &verify,
                   "also run the batch pipeline and require an exact "
                   "adoption match");
    flags.add_bool("sketch", &sketch,
                   "bounded-memory mode: approximate distinct users, "
                   "transaction-size quantiles and heavy-hitter apps via "
                   "HLL/t-digest/count-min sketches (incompatible with "
                   "--verify)");
    flags.add_int("observation-days", &observation_days,
                  "window length (-1: from generator.cfg or default)");
    flags.add_int("detailed-start-day", &detailed_start_day,
                  "first detailed day (-1: from generator.cfg or default)");
    flags.add_int("chaos-seed", &chaos_seed,
                  "inject a seeded fault plan before replay (-1 = off)");
    flags.add_string("chaos-profile", &chaos_profile,
                     "fault profile: records, records-heavy, io, transient, "
                     "runtime, all");
    flags.add_string("partition", &partition,
                     "run as partition i of an N-way federated cover "
                     "(format i/N; needs --partial-dir)");
    flags.add_string("partial-dir", &partial_dir,
                     "directory for partial-snapshot files, one per epoch");
    if (!flags.parse(argc, argv)) return 0;
    util::require(!bundle_dir.empty(), "--bundle is required");
    util::require(shards >= 1, "--shards must be >= 1");
    util::require(ring_capacity >= 1, "--ring-capacity must be >= 1");
    util::require(!(sketch && verify),
                  "--verify needs exact aggregates; drop --sketch");

    live::LiveOptions opt;
    opt.shards = static_cast<std::size_t>(shards);
    opt.ring_capacity = static_cast<std::size_t>(ring_capacity);
    opt.sketch_aggregates = sketch;
    if (!partition.empty()) {
      unsigned long long pid = 0;
      unsigned long long pcount = 0;
      char trailing = 0;
      util::require(std::sscanf(partition.c_str(), "%llu/%llu%c", &pid,
                                &pcount, &trailing) == 2 &&
                        pcount >= 1 && pid < pcount,
                    "--partition must be i/N with 0 <= i < N");
      util::require(!partial_dir.empty(),
                    "--partition needs --partial-dir to persist partials");
      util::require(!verify,
                    "--verify compares the full feed; a partition only owns "
                    "a slice (use wearscope_merge --verify instead)");
      opt.partition_id = static_cast<std::size_t>(pid);
      opt.partition_count = static_cast<std::size_t>(pcount);
    }
    if (!partial_dir.empty()) opt.capture_tallies = true;
    const std::filesystem::path cfg_path =
        std::filesystem::path(bundle_dir) / "generator.cfg";
    if (std::filesystem::exists(cfg_path)) {
      const simnet::SimConfig cfg = simnet::load_config_file(cfg_path);
      opt.observation_days = cfg.observation_days;
      opt.detailed_start_day = cfg.observation_days - cfg.detailed_days;
      opt.long_tail_apps = cfg.long_tail_apps;
    }
    if (observation_days > 0)
      opt.observation_days = static_cast<int>(observation_days);
    if (detailed_start_day >= 0)
      opt.detailed_start_day = static_cast<int>(detailed_start_day);

    live::ReplayOptions replay_opt;
    replay_opt.speedup = speedup;
    replay_opt.snapshot_every_s =
        util::parse_duration_s(snapshot_every, "--snapshot-every");

    trace::TraceStore store = trace::load_bundle(bundle_dir);
    store.sort_by_time();

    trace::QuarantineStats pre_quarantine;
    if (chaos_seed >= 0) {
      const chaos::FaultPlan plan(static_cast<std::uint64_t>(chaos_seed),
                                  chaos::FaultProfile::named(chaos_profile));
      util::require(!verify || plan.profile().permanent_reads == 0,
                    "--verify needs a chaos profile without permanent read "
                    "faults (try --chaos-profile transient)");
      // Clean fixed point first, then damage, then sanitize-with-counting:
      // the survivors feed the engine, the counters ride into the snapshot.
      trace::sanitize_store(store);
      plan.inject_records(store);
      pre_quarantine = trace::sanitize_store(store);
      const chaos::RuntimeFaults runtime = plan.runtime_faults(
          store.proxy.size() + store.mme.size(), replay_opt.retry);
      replay_opt.read_faults = runtime.schedule;
      std::printf("chaos: profile '%s' seed %lld, %llu records quarantined "
                  "before replay, %zu reads scheduled to fail permanently\n",
                  plan.profile().name.c_str(),
                  static_cast<long long>(chaos_seed),
                  static_cast<unsigned long long>(
                      pre_quarantine.total_dropped()),
                  runtime.permanent_seqs.size());
    }

    const trace::TraceSummary sum = store.summarize();
    std::printf("replaying %zu proxy + %zu MME records through %lld "
                "shard(s)\n",
                sum.proxy_records, sum.mme_records,
                static_cast<long long>(shards));

    if (!partial_dir.empty()) {
      std::filesystem::create_directories(partial_dir);
    }

    live::LiveEngine engine(store.devices, opt);
    engine.add_quarantine(pre_quarantine);
    const live::FeedReplayer replayer(store, replay_opt);
    const live::ReplayReport report = replayer.replay(engine);
    const auto persist_partial = [&](const live::LiveSnapshot& snap) {
      const std::filesystem::path path =
          std::filesystem::path(partial_dir) /
          fed::partial_file_name(
              static_cast<std::uint32_t>(opt.partition_id),
              static_cast<std::uint32_t>(opt.partition_count), snap.epoch);
      fed::write_partial_file(path, fed::make_partial(snap, opt));
      std::printf("   wrote partial %s (%llu owned of %llu feed records)\n",
                  path.string().c_str(),
                  static_cast<unsigned long long>(snap.records),
                  static_cast<unsigned long long>(snap.feed_records));
    };
    for (const live::LiveSnapshot& snap : report.snapshots) {
      std::printf("-- periodic snapshot at epoch %llu: %llu records\n",
                  static_cast<unsigned long long>(snap.epoch),
                  static_cast<unsigned long long>(snap.records));
      if (!partial_dir.empty()) persist_partial(snap);
    }
    const live::LiveSnapshot final_snap = engine.stop();
    if (!partial_dir.empty()) persist_partial(final_snap);
    if (opt.partition_count > 1) {
      std::printf("partition %zu/%zu: %llu records owned, %llu filtered to "
                  "other partitions\n",
                  opt.partition_id, opt.partition_count,
                  static_cast<unsigned long long>(final_snap.records),
                  static_cast<unsigned long long>(engine.filtered_records()));
    }

    const double rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.records_pushed) / report.wall_seconds
            : 0.0;
    std::printf("replayed %llu records in %.2fs (%.0f records/s)\n",
                static_cast<unsigned long long>(report.records_pushed),
                report.wall_seconds, rate);
    print_snapshot(final_snap, "final snapshot");

    if (verify) {
      core::AnalysisOptions aopt;
      aopt.observation_days = opt.observation_days;
      aopt.detailed_start_day = opt.detailed_start_day;
      aopt.long_tail_apps = opt.long_tail_apps;
      if (!verify_against_batch(store, final_snap, aopt)) {
        std::fprintf(stderr,
                     "error: live snapshot diverges from batch pipeline\n");
        return 1;
      }
      std::printf("verify: live adoption == batch adoption (exact)\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
