#!/usr/bin/env sh
# One-shot pre-merge gate: configure, build, lint, test.
#
#   tools/check.sh [--full | --lint-only | --trace-bench] [build-dir]
#
# Default: a full build, the wearscope_lint determinism & concurrency
# checks (hard failure on any finding), then the whole ctest suite —
# which already includes the `lint`, `chaos`, `perf` and `sched` labels
# (the thread-sweep equivalence gate and the fast bounded interleaving
# enumeration run as part of the regular tests).
# With --lint-only it builds just the linter, runs the whole-program
# analysis over the tree and writes BENCH_lint.json (wall time plus
# file/rule/finding counts) — the fast pre-commit loop, no ctest.
# With --trace-bench it builds the columnar perf suite and refreshes
# BENCH_columnar.json: the rows-vs-columnar kernel comparison, the v2/v3
# encode/decode sweep and the sketch-vs-exact deltas — the numbers behind
# the v3 TraceStore's performance claims.
# With --fed it builds the federation path only and drives the
# partition/merge differential end to end: partitioned live runs at
# 1/2/4/8 processes over one small bundle, each cover federated by
# wearscope_merge --verify (byte-identical to the batch pipeline or the
# gate fails).
# With --full it additionally runs the sanitizer gates CONTRIBUTING.md
# requires — the chaos label under ASan+UBSan and the concurrency tests
# (live engine, batch task pool, parallel v2 trace decode, snapshot
# serving, federation) under TSan — plus a deep random-walk interleaving
# budget through the sched harness, and refreshes the
# BENCH_analysis.json / BENCH_trace_io.json / BENCH_serve.json /
# BENCH_fed.json sweeps.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
full=0
lint_only=0
trace_bench=0
fed_gate=0
if [ "${1:-}" = "--full" ]; then
  full=1
  shift
elif [ "${1:-}" = "--lint-only" ]; then
  lint_only=1
  shift
elif [ "${1:-}" = "--trace-bench" ]; then
  trace_bench=1
  shift
elif [ "${1:-}" = "--fed" ]; then
  fed_gate=1
  shift
fi
build=${1:-"$root/build"}
jobs=$(nproc 2>/dev/null || echo 2)

echo "== configure ($build)"
cmake -B "$build" -S "$root" >/dev/null

if [ "$lint_only" -eq 1 ]; then
  echo "== build (linter only)"
  cmake --build "$build" -j "$jobs" --target wearscope_lint_tool
  echo "== lint (BENCH_lint.json)"
  "$build/tools/wearscope_lint" --root "$root" --error-on-findings \
    --bench-json "$root/BENCH_lint.json"
  echo "== OK"
  exit 0
fi

if [ "$fed_gate" -eq 1 ]; then
  echo "== build (federation path)"
  cmake --build "$build" -j "$jobs" \
    --target wearscope_gen wearscope_live_tool wearscope_merge
  work="$build/fed_gate_work"
  rm -rf "$work"
  mkdir -p "$work"
  echo "== generate (small bundle)"
  "$build/tools/wearscope_gen" --preset small --seed 5 \
    --out "$work/trace" --format binary >/dev/null
  for n in 1 2 4 8; do
    echo "== partitioned ingest + federated merge --verify ($n partition(s))"
    rm -rf "$work/partials"
    p=0
    while [ "$p" -lt "$n" ]; do
      "$build/tools/wearscope_live" --bundle "$work/trace" --shards 2 \
        --snapshot-every 1d --partition "$p/$n" \
        --partial-dir "$work/partials" >/dev/null
      p=$((p + 1))
    done
    "$build/tools/wearscope_merge" --dir "$work/partials" \
      --verify --bundle "$work/trace"
  done
  rm -rf "$work"
  echo "== OK"
  exit 0
fi

if [ "$trace_bench" -eq 1 ]; then
  echo "== build (columnar perf suite)"
  cmake --build "$build" -j "$jobs" --target perf_columnar
  echo "== columnar kernels + v2/v3 IO + sketch deltas (BENCH_columnar.json)"
  "$build/bench/perf_columnar" --emit-json="$root/BENCH_columnar.json"
  echo "== OK"
  exit 0
fi

echo "== build"
cmake --build "$build" -j "$jobs"

echo "== lint"
"$build/tools/wearscope_lint" --root "$root" --error-on-findings

echo "== test (incl. lint + chaos + sched labels)"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== interleaving mutation gate (seeded bug must be found + replay)"
"$build/tools/wearscope_sched" --scenario mutation --expect-failure \
  2>/dev/null

if [ "$full" -eq 1 ]; then
  echo "== chaos label under ASan+UBSan"
  cmake -B "$root/build-asan" -S "$root" -DWEARSCOPE_SANITIZE=ON >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" -L chaos --output-on-failure

  echo "== concurrency tests under TSan"
  cmake -B "$root/build-tsan" -S "$root" -DWEARSCOPE_SANITIZE=thread \
    >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs"
  ctest --test-dir "$root/build-tsan" \
    -R "LiveRing|LiveEngine|TaskPool|ParPipeline|TraceV2|BundleParallel|ServeStress|ServeEquivalence|QueryEngine|SnapshotStore|LineServer|FedPartial|FedMerge|FedStream|FedSweep" \
    --output-on-failure

  echo "== deep interleaving walks (WEARSCOPE_SCHED_WALKS=${WEARSCOPE_SCHED_WALKS:-2000})"
  WEARSCOPE_SCHED_WALKS="${WEARSCOPE_SCHED_WALKS:-2000}" \
    ctest --test-dir "$build" -L sched --output-on-failure -j "$jobs"

  echo "== analysis thread sweep (BENCH_analysis.json)"
  "$build/bench/perf_analysis" --emit-json="$root/BENCH_analysis.json"

  echo "== trace-IO v1/v2 sweep (BENCH_trace_io.json)"
  "$build/bench/perf_trace_io" --emit-json="$root/BENCH_trace_io.json"

  echo "== query-serving reader sweep (BENCH_serve.json)"
  "$build/bench/perf_serve" --emit-json="$root/BENCH_serve.json"

  echo "== federated partition sweep (BENCH_fed.json)"
  "$build/bench/perf_fed" --emit-json="$root/BENCH_fed.json"
fi

echo "== OK"
