// wearscope_serve — replay a capture through the live-ingest engine while
// serving dashboard queries over the published snapshots.
//
//   wearscope_serve --bundle traces/run1                 # serve stdin queries
//   wearscope_serve --bundle d --snapshot-every 6h --retain 128
//   wearscope_serve --bundle d --port 0                  # + TCP listener
//   wearscope_serve --bundle d --verify                  # equivalence gate
//   wearscope_serve --partials p --bundle d --verify     # serve federated
//
// --partials serves federated snapshots instead of replaying: the WSFD
// partial files a partitioned wearscope_live fleet persisted are merged
// per epoch (fed/merge.h) and each federated snapshot is published into
// the same SnapshotStore — the serving layer cannot tell them from
// engine-published ones, and --verify holds them to the same batch gate.
//
// The feed thread drives live::FeedReplayer; every periodic snapshot is
// published into a serve::SnapshotStore (RCU-style: readers never block
// ingest), and the final drain snapshot is published with the final-epoch
// marker.  The main thread answers the newline-delimited query protocol on
// stdin/stdout (one response line per query line; see 'help'); --port adds
// a localhost TCP listener speaking the same protocol (0 picks a free
// port, printed on stderr).  Status output goes to stderr so stdout stays
// pure protocol.
//
// --verify proves the serving path: after ingest finishes, the canonical
// query set answered at the final epoch must be byte-identical to the
// batch references — adoption/activity against core::Pipeline (what
// wearscope_analyze runs), top-apps/sectors/class-mix against a
// sequential replay of the same tally machinery, quarantine against the
// feed-side accounting.  Exit status 1 on any divergence.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "fed/merge.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "serve/query_engine.h"
#include "serve/reference.h"
#include "serve/server.h"
#include "serve/snapshot_store.h"
#include "simnet/config_io.h"
#include "trace/bundle.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace wearscope;

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string bundle_dir;
    std::string partials_dir;
    std::int64_t shards = 4;
    std::int64_t ring_capacity = 4096;
    std::string snapshot_every = "1d";
    double speedup = 0.0;
    std::int64_t retain = 64;
    std::int64_t port = -1;
    std::int64_t top_k = 10;
    bool verify = false;
    std::int64_t observation_days = -1;
    std::int64_t detailed_start_day = -1;

    util::FlagParser flags(
        "wearscope_serve: replay a trace bundle through the live-ingest "
        "engine while serving adoption/app/sector/quarantine queries over "
        "the published snapshots (newline-delimited protocol on "
        "stdin/stdout; 'help' prints the grammar)");
    flags.add_string("bundle", &bundle_dir,
                     "bundle directory (required unless --partials; "
                     "--verify always needs it for the batch reference)");
    flags.add_string("partials", &partials_dir,
                     "serve federated snapshots merged per epoch from this "
                     "directory of WSFD partials (wearscope_live "
                     "--partition) instead of replaying --bundle");
    flags.add_int("shards", &shards, "worker shards (user partitions)");
    flags.add_int("ring-capacity", &ring_capacity,
                  "events buffered per shard ring");
    flags.add_string("snapshot-every", &snapshot_every,
                     "snapshot publication interval in stream time "
                     "(e.g. 90, 15m, 6h, 1d)");
    flags.add_double("speedup", &speedup,
                     "stream-time/wall-time ratio (0 = as fast as possible)");
    flags.add_int("retain", &retain,
                  "published snapshots kept for @epoch queries");
    flags.add_int("port", &port,
                  "TCP listener on 127.0.0.1 (-1 = stdio only, 0 = pick a "
                  "free port)");
    flags.add_int("top-k", &top_k, "rows returned by --verify's top-K set");
    flags.add_bool("verify", &verify,
                   "after ingest, require the final-epoch query answers to "
                   "match the batch pipeline byte-for-byte");
    flags.add_int("observation-days", &observation_days,
                  "window length (-1: from generator.cfg or default)");
    flags.add_int("detailed-start-day", &detailed_start_day,
                  "first detailed day (-1: from generator.cfg or default)");
    if (!flags.parse(argc, argv)) return 0;
    util::require(!bundle_dir.empty() || !partials_dir.empty(),
                  "--bundle or --partials is required");
    util::require(!verify || !bundle_dir.empty(),
                  "--verify needs --bundle for the batch reference");
    util::require(shards >= 1, "--shards must be >= 1");
    util::require(ring_capacity >= 1, "--ring-capacity must be >= 1");
    util::require(retain >= 1, "--retain must be >= 1");
    util::require(top_k >= 1, "--top-k must be >= 1");
    util::require(port >= -1 && port <= 65535,
                  "--port must be in [-1, 65535]");

    live::LiveOptions opt;
    opt.shards = static_cast<std::size_t>(shards);
    opt.ring_capacity = static_cast<std::size_t>(ring_capacity);
    const std::filesystem::path cfg_path =
        std::filesystem::path(bundle_dir) / "generator.cfg";
    if (std::filesystem::exists(cfg_path)) {
      const simnet::SimConfig cfg = simnet::load_config_file(cfg_path);
      opt.observation_days = cfg.observation_days;
      opt.detailed_start_day = cfg.observation_days - cfg.detailed_days;
      opt.long_tail_apps = cfg.long_tail_apps;
    }
    if (observation_days > 0)
      opt.observation_days = static_cast<int>(observation_days);
    if (detailed_start_day >= 0)
      opt.detailed_start_day = static_cast<int>(detailed_start_day);

    trace::TraceStore store;
    if (!bundle_dir.empty()) {
      store = trace::load_bundle(bundle_dir);
      store.sort_by_time();
    }

    serve::SnapshotStore snapshots(static_cast<std::size_t>(retain));
    serve::QueryEngine queries(snapshots);
    serve::LineServer server(queries);
    if (port >= 0) {
      server.start_listener(static_cast<std::uint16_t>(port));
      std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
                   static_cast<unsigned>(server.bound_port()));
    }

    if (!partials_dir.empty()) {
      // Federated serving: strictly load every partial, group the covers
      // by epoch and publish each merged snapshot in epoch order.  The
      // merge reproduces the single-process snapshot bitwise
      // (fed/merge.h), so every query — including @epoch history — reads
      // exactly what an engine-attached server would have published.
      std::vector<std::filesystem::path> paths;
      for (const auto& entry :
           std::filesystem::directory_iterator(partials_dir)) {
        if (entry.path().extension() == ".wsfd") paths.push_back(entry.path());
      }
      std::sort(paths.begin(), paths.end());
      util::require(!paths.empty(),
                    "--partials directory holds no .wsfd files");
      std::map<std::uint64_t, std::vector<fed::LoadedPartial>> covers;
      for (fed::LoadedPartial& part : fed::load_partials(
               paths, std::max<std::size_t>(
                          1, std::thread::hardware_concurrency()))) {
        covers[part.partial.header.epoch].push_back(std::move(part));
      }
      live::LiveOptions merged_opt;
      for (auto it = covers.begin(); it != covers.end(); ++it) {
        fed::MergeResult merged = fed::merge_partials(std::move(it->second));
        merged_opt = merged.options;
        std::fprintf(stderr,
                     "published federated snapshot: epoch %llu, %llu "
                     "partition(s), %llu records\n",
                     static_cast<unsigned long long>(merged.snapshot.epoch),
                     static_cast<unsigned long long>(merged.merged_partitions),
                     static_cast<unsigned long long>(merged.snapshot.records));
        snapshots.publish(std::move(merged.snapshot),
                          /*final_epoch=*/std::next(it) == covers.end());
      }

      const std::uint64_t responses = server.serve_stream(stdin, stdout);
      server.stop_listener();
      const serve::ServingStats qstats = queries.stats();
      std::fprintf(stderr,
                   "served %llu federated epoch(s), answered %llu stdin "
                   "responses (%llu queries, %llu errors)\n",
                   static_cast<unsigned long long>(snapshots.published()),
                   static_cast<unsigned long long>(responses),
                   static_cast<unsigned long long>(qstats.answered),
                   static_cast<unsigned long long>(qstats.errors));

      if (verify) {
        const serve::SnapshotRef final_snap = snapshots.latest();
        util::ensure(final_snap != nullptr && final_snap->final_epoch,
                     "no final federated snapshot was published");
        const std::vector<serve::VerifyMismatch> mismatches =
            serve::verify_responses(final_snap->snap, store, merged_opt,
                                    final_snap->snap.quarantine,
                                    static_cast<std::size_t>(top_k));
        for (const serve::VerifyMismatch& m : mismatches) {
          std::fprintf(stderr, "MISMATCH %s\n  serve: %s\n  batch: %s\n",
                       m.query.c_str(), m.serve.c_str(), m.batch.c_str());
        }
        if (!mismatches.empty()) {
          std::fprintf(stderr,
                       "error: federated serve answers diverge from the "
                       "batch pipeline\n");
          return 1;
        }
        std::fprintf(stderr,
                     "verify: federated query answers == batch pipeline "
                     "(bitwise)\n");
      }
      return 0;
    }

    const trace::TraceSummary sum = store.summarize();

    live::ReplayOptions replay_opt;
    replay_opt.speedup = speedup;
    replay_opt.snapshot_every_s =
        util::parse_duration_s(snapshot_every, "--snapshot-every");
    replay_opt.on_snapshot = [&snapshots](live::LiveSnapshot snap) {
      snapshots.publish(std::move(snap));
    };

    std::fprintf(stderr,
                 "serving %zu proxy + %zu MME records through %lld shard(s), "
                 "snapshot every %s, retaining %lld epochs\n",
                 sum.proxy_records, sum.mme_records,
                 static_cast<long long>(shards), snapshot_every.c_str(),
                 static_cast<long long>(retain));

    live::LiveEngine engine(store.devices, opt);
    const live::FeedReplayer replayer(store, replay_opt);
    live::ReplayReport report;
    std::thread ingest([&] {
      report = replayer.replay(engine);
      snapshots.publish(engine.stop(), /*final_epoch=*/true);
    });

    // The always-on part: stdin queries are answered while ingest runs.
    const std::uint64_t responses = server.serve_stream(stdin, stdout);
    ingest.join();
    server.stop_listener();

    const double rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.records_pushed) / report.wall_seconds
            : 0.0;
    const serve::ServingStats qstats = queries.stats();
    std::fprintf(stderr,
                 "ingested %llu records in %.2fs (%.0f records/s), "
                 "published %llu epochs, answered %llu stdin responses "
                 "(%llu queries, %llu errors)\n",
                 static_cast<unsigned long long>(report.records_pushed),
                 report.wall_seconds, rate,
                 static_cast<unsigned long long>(snapshots.published()),
                 static_cast<unsigned long long>(responses),
                 static_cast<unsigned long long>(qstats.answered),
                 static_cast<unsigned long long>(qstats.errors));

    if (verify) {
      const serve::SnapshotRef final_snap = snapshots.latest();
      util::ensure(final_snap != nullptr && final_snap->final_epoch,
                   "ingest finished without a final snapshot");
      trace::QuarantineStats expected = report.quarantine;
      const std::vector<serve::VerifyMismatch> mismatches =
          serve::verify_responses(final_snap->snap, store, opt, expected,
                                  static_cast<std::size_t>(top_k));
      for (const serve::VerifyMismatch& m : mismatches) {
        std::fprintf(stderr,
                     "MISMATCH %s\n  serve: %s\n  batch: %s\n",
                     m.query.c_str(), m.serve.c_str(), m.batch.c_str());
      }
      if (!mismatches.empty()) {
        std::fprintf(stderr,
                     "error: serve answers diverge from the batch pipeline\n");
        return 1;
      }
      std::fprintf(stderr,
                   "verify: final-epoch query answers == batch pipeline "
                   "(bitwise)\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
