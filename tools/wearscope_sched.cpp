// wearscope_sched — deterministic interleaving exploration from the CLI.
//
//   wearscope_sched --scenario live --mode exhaustive --preemption-bound 2
//   wearscope_sched --scenario live-serve --mode walk --walks 1000 --seed 7
//   wearscope_sched --scenario mutation --mode exhaustive
//   wearscope_sched --scenario ring-close-producer --replay "0.2.1.0"
//   wearscope_sched --list
//
// Runs one of the registered concurrency scenarios (src/sched/models.h)
// under the deterministic scheduler, either exhaustively (bounded
// preemptions, partial-order reduction) or as seeded random walks.  A
// failing schedule prints its full replayable trace; feed the decision
// string back through --replay to re-execute the identical interleaving
// (e.g. under a debugger).  Exit status 1 on any invariant violation.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sched/explorer.h"
#include "sched/models.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace wearscope;

struct Scenario {
  const char* name;
  const char* what;
  sched::Model (*make)();
};

sched::Model make_ring() { return sched::ring_transfer_model(4, 2); }
sched::Model make_ring_close_producer() {
  return sched::ring_close_producer_model();
}
sched::Model make_ring_close_consumer() {
  return sched::ring_close_consumer_model();
}
sched::Model make_store() { return sched::store_publish_read_model(1, 3); }
sched::Model make_live() { return sched::live_barrier_model(); }
sched::Model make_live_serve() { return sched::live_serve_model(); }
sched::Model make_mutation() { return sched::racy_counter_model(true); }

constexpr Scenario kScenarios[] = {
    {"ring", "SPSC ring handoff (FIFO + exact stats)", make_ring},
    {"ring-close-producer", "close() racing a pushing producer",
     make_ring_close_producer},
    {"ring-close-consumer", "close() racing a draining consumer",
     make_ring_close_consumer},
    {"store", "SnapshotStore publish/read race (retain=1)", make_store},
    {"live", "2-shard engine vs sequential reference (tiny)", make_live},
    {"live-serve", "engine + snapshot store + racing reader",
     make_live_serve},
    {"mutation", "seeded lost-update bug (must be FOUND)", make_mutation},
};

int report(const sched::ScheduleTrace& trace) {
  if (trace.passed()) return 0;
  std::fputs(trace.format().c_str(), stderr);
  const std::string hint =
      "replay with: --replay \"" + trace.decision_string() + "\"\n";
  std::fputs(hint.c_str(), stderr);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string scenario = "live";
    std::string mode = "exhaustive";
    std::string replay_decisions;
    std::int64_t walks = 200;
    std::int64_t seed = 1;
    std::int64_t preemption_bound = 2;
    std::int64_t max_schedules = 200000;
    bool list = false;
    bool expect_failure = false;

    util::FlagParser flags(
        "wearscope_sched: explore thread interleavings of the live-ingest "
        "and serving layers under a deterministic scheduler; failing "
        "schedules print a seed + decision string that --replay re-executes "
        "exactly");
    flags.add_string("scenario", &scenario,
                     "scenario to explore (see --list)");
    flags.add_string("mode", &mode, "exhaustive | walk");
    flags.add_int("walks", &walks, "random-walk schedules (mode=walk)");
    flags.add_int("seed", &seed, "base seed for mode=walk");
    flags.add_int("preemption-bound", &preemption_bound,
                  "context bound for mode=exhaustive");
    flags.add_int("max-schedules", &max_schedules,
                  "exhaustive-enumeration budget");
    flags.add_string("replay", &replay_decisions,
                     "decision string to re-execute (overrides --mode)");
    flags.add_bool("list", &list, "print the scenario registry and exit");
    flags.add_bool("expect-failure", &expect_failure,
                   "invert the exit status: succeed only when a failing "
                   "schedule is found (mutation-test gate)");
    if (!flags.parse(argc, argv)) return 0;

    if (list) {
      for (const Scenario& s : kScenarios)
        std::fprintf(stdout, "%-22s %s\n", s.name, s.what);
      return 0;
    }

    const Scenario* chosen = nullptr;
    for (const Scenario& s : kScenarios) {
      if (scenario == s.name) chosen = &s;
    }
    util::require(chosen != nullptr,
                  "unknown --scenario (try --list): " + scenario);
    const sched::Model model = chosen->make();

    if (!replay_decisions.empty()) {
      const sched::ScheduleTrace trace =
          sched::replay(model, sched::parse_decisions(replay_decisions));
      std::fprintf(stderr, "replayed %zu steps: %s\n", trace.steps.size(),
                   trace.passed() ? "PASS" : "FAIL");
      const int rc = report(trace);
      return expect_failure ? (rc == 1 ? 0 : 1) : rc;
    }

    sched::ExploreStats stats;
    if (mode == "exhaustive") {
      sched::ExhaustOptions opt;
      opt.preemption_bound = static_cast<int>(preemption_bound);
      opt.max_schedules = static_cast<std::size_t>(max_schedules);
      stats = sched::exhaust(model, opt);
      std::fprintf(stderr,
                   "exhaustive: %zu schedules (pruned %zu independent, "
                   "%zu over bound)%s\n",
                   stats.schedules, stats.pruned_independent,
                   stats.pruned_bound,
                   stats.budget_exhausted ? " [budget exhausted]" : "");
    } else if (mode == "walk") {
      stats = sched::random_walks(model,
                                  static_cast<std::uint64_t>(seed),
                                  static_cast<std::size_t>(walks));
      std::fprintf(stderr, "walk: %zu seeded schedules\n", stats.schedules);
    } else {
      throw util::ConfigError("--mode must be exhaustive or walk, got " +
                              mode);
    }

    int rc = 0;
    if (stats.failure) rc = report(*stats.failure);
    return expect_failure ? (rc == 1 ? 0 : 1) : rc;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "wearscope_sched: %s\n", e.what());
    return 2;
  }
}
