// wearscope_inspect — look inside a trace bundle without running the study.
//
//   wearscope_inspect --trace d                    # summary
//   wearscope_inspect --trace d --daily            # per-day record counts
//   wearscope_inspect --trace d --top-hosts 20     # busiest endpoints
//   wearscope_inspect --trace d --devices          # DeviceDB + TAC usage
//   wearscope_inspect --trace d --convert e --format csv   # transcode
//   wearscope_inspect --partials p/                # audit partial files
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <unordered_map>

#include "core/device_id.h"
#include "fed/partial_io.h"
#include "trace/anonymize.h"
#include "trace/bundle.h"
#include "util/ascii_chart.h"
#include "util/error.h"
#include "util/flags.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace {

using namespace wearscope;

void print_files(const std::vector<trace::BundleLogAudit>& audits) {
  std::printf("== on-disk files ==\n");
  std::vector<std::vector<std::string>> rows;
  for (const trace::BundleLogAudit& a : audits) {
    const std::string format =
        a.version == 0 ? "csv" : "binary v" + std::to_string(a.version);
    rows.push_back({a.file, format,
                    a.version >= 2 ? std::to_string(a.blocks) : "-",
                    std::to_string(a.records)});
  }
  std::fputs(util::table({"file", "format", "blocks", "records"}, rows).c_str(),
             stdout);

  // v3 logs: the columnar layout (dictionary sizes, per-column compressed
  // bytes) is the whole story of the format, so the audit shows it.
  for (const trace::BundleLogAudit& a : audits) {
    if (a.version != trace::kBinaryFormatV3) continue;
    const trace::ColumnarLayoutInfo& c = a.columnar;
    std::printf("-- %s columnar layout: %llu groups, dicts "
                "hosts=%llu tacs=%llu sectors=%llu (%llu bytes)\n",
                a.file.c_str(), static_cast<unsigned long long>(c.groups),
                static_cast<unsigned long long>(c.dict_hosts),
                static_cast<unsigned long long>(c.dict_tacs),
                static_cast<unsigned long long>(c.dict_sectors),
                static_cast<unsigned long long>(c.dict_bytes));
    std::vector<std::vector<std::string>> cols;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < c.column_bytes.size(); ++i) {
      total += c.column_bytes[i];
      const double per_record =
          c.records > 0 ? static_cast<double>(c.column_bytes[i]) /
                              static_cast<double>(c.records)
                        : 0.0;
      cols.push_back({"col " + std::to_string(i),
                      std::to_string(c.column_bytes[i]),
                      util::format_num(per_record, 2)});
    }
    cols.push_back({"total", std::to_string(total),
                    util::format_num(
                        c.records > 0 ? static_cast<double>(total) /
                                            static_cast<double>(c.records)
                                      : 0.0,
                        2)});
    std::fputs(util::table({"column", "bytes", "B/record"}, cols).c_str(),
               stdout);
  }
}

void print_summary(const trace::TraceStore& store) {
  const trace::TraceSummary sum = store.summarize();
  std::printf("== bundle summary ==\n");
  std::printf("  proxy transactions : %zu\n", sum.proxy_records);
  std::printf("  MME events         : %zu\n", sum.mme_records);
  std::printf("  DeviceDB rows      : %zu\n", sum.devices);
  std::printf("  antenna sectors    : %zu\n", sum.sectors);
  std::printf("  users (proxy/MME)  : %zu / %zu\n", sum.distinct_proxy_users,
              sum.distinct_mme_users);
  std::printf("  total volume       : %.3f GB\n",
              static_cast<double>(sum.total_bytes) / 1e9);
  std::printf("  time span          : %s .. %s\n",
              util::format_sim_time(sum.first_timestamp).c_str(),
              util::format_sim_time(sum.last_timestamp).c_str());
}

void print_daily(const trace::TraceStore& store) {
  std::map<int, std::pair<std::size_t, std::size_t>> days;  // proxy, mme
  for (const trace::ProxyRecord& r : store.proxy)
    days[util::day_of(r.timestamp)].first++;
  for (const trace::MmeRecord& r : store.mme)
    days[util::day_of(r.timestamp)].second++;
  std::printf("== per-day record counts ==\n");
  std::vector<double> proxy_series;
  for (const auto& [day, counts] : days) proxy_series.push_back(
      static_cast<double>(counts.first));
  std::printf("proxy: [%s]\n", util::sparkline(proxy_series).c_str());
  std::printf("%-6s %12s %12s\n", "day", "proxy", "mme");
  for (const auto& [day, counts] : days) {
    std::printf("%-6d %12zu %12zu\n", day, counts.first, counts.second);
  }
}

void print_top_hosts(const trace::TraceStore& store, std::int64_t top) {
  std::unordered_map<std::string, std::pair<std::size_t, std::uint64_t>> hosts;
  for (const trace::ProxyRecord& r : store.proxy) {
    auto& [txns, bytes] = hosts[util::registrable_domain(r.host)];
    ++txns;
    bytes += r.bytes_total();
  }
  std::vector<std::pair<std::string, std::pair<std::size_t, std::uint64_t>>>
      ranked(hosts.begin(), hosts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.first > b.second.first;
  });
  std::printf("== top endpoints by transactions (registrable domain) ==\n");
  std::vector<std::vector<std::string>> rows;
  for (std::int64_t i = 0;
       i < top && i < static_cast<std::int64_t>(ranked.size()); ++i) {
    const auto& [domain, stats] = ranked[static_cast<std::size_t>(i)];
    rows.push_back({domain, std::to_string(stats.first),
                    util::format_num(
                        static_cast<double>(stats.second) / 1e6, 1)});
  }
  std::fputs(util::table({"domain", "txns", "MB"}, rows).c_str(), stdout);
}

void print_devices(const trace::TraceStore& store) {
  const core::DeviceClassifier classifier(store.devices);
  std::unordered_map<trace::Tac, std::size_t> tac_txns;
  for (const trace::ProxyRecord& r : store.proxy) tac_txns[r.tac]++;
  std::printf("== DeviceDB (wearable classification + traffic) ==\n");
  std::vector<std::vector<std::string>> rows;
  for (const trace::DeviceRecord& d : store.devices) {
    rows.push_back({std::to_string(d.tac), d.manufacturer, d.model, d.os,
                    classifier.is_wearable(d.tac) ? "WEARABLE" : "-",
                    std::to_string(tac_txns[d.tac])});
  }
  std::fputs(util::table({"TAC", "vendor", "model", "OS", "class", "txns"},
                         rows)
                 .c_str(),
             stdout);
}

/// Audits one candidate partial-snapshot file (never throws past I/O:
/// fed::audit_partial reports whatever structure survives).
void print_partial_audit(const std::filesystem::path& path) {
  const util::MappedFile file(path);
  const fed::PartialAudit audit = fed::audit_partial(file.bytes());
  std::printf("== partial %s (%llu bytes) ==\n", path.string().c_str(),
              static_cast<unsigned long long>(audit.file_bytes));
  if (audit.header_ok) {
    const fed::PartitionHeader& h = audit.header;
    std::printf("  partition %u of %u, epoch %llu, %llu owned / %llu feed "
                "records, sketch=%s\n",
                h.partition_id, h.partition_count,
                static_cast<unsigned long long>(h.epoch),
                static_cast<unsigned long long>(h.records),
                static_cast<unsigned long long>(h.feed_records),
                h.sketch_enabled ? "on" : "off");
    std::printf("  window %d days (detail from day %d), gap %llds, "
                "%u apps @ %.2f coverage, checksum %s\n",
                h.observation_days, h.detailed_start_day,
                static_cast<long long>(h.usage_gap_s), h.long_tail_apps,
                h.signature_coverage, audit.checksum_ok ? "OK" : "MISMATCH");
  } else {
    std::printf("  file/partition header DAMAGED — a lenient reader "
                "rejects the whole file\n");
  }
  std::vector<std::vector<std::string>> rows;
  for (const fed::SectionAudit& s : audit.sections) {
    rows.push_back({fed::section_name(s.id), std::to_string(s.id),
                    std::to_string(s.offset), std::to_string(s.byte_length),
                    s.crc_ok ? "OK" : "BAD",
                    s.decode_ok ? "OK" : (s.crc_ok ? "BAD" : "-")});
  }
  std::fputs(util::table({"section", "id", "offset", "bytes", "crc",
                          "decode"},
                         rows)
                 .c_str(),
             stdout);
  if (audit.quarantine.any()) {
    std::printf("  lenient read would quarantine: %llu corrupt files, "
                "%llu corrupt blocks\n",
                static_cast<unsigned long long>(
                    audit.quarantine.corrupt_files),
                static_cast<unsigned long long>(
                    audit.quarantine.corrupt_blocks));
  }
}

/// Expands --partials: a directory scans for *.wsfd, otherwise a
/// comma-separated file list.
std::vector<std::filesystem::path> partial_paths(const std::string& arg) {
  std::vector<std::filesystem::path> out;
  if (std::filesystem::is_directory(arg)) {
    for (const auto& entry : std::filesystem::directory_iterator(arg)) {
      if (entry.is_regular_file() &&
          entry.path().extension() == ".wsfd") {
        out.push_back(entry.path());
      }
    }
    std::sort(out.begin(), out.end());
    util::require(!out.empty(), "no .wsfd files in " + arg);
  } else {
    std::size_t start = 0;
    while (start <= arg.size()) {
      const std::size_t comma = arg.find(',', start);
      const std::size_t end = comma == std::string::npos ? arg.size() : comma;
      if (end > start) out.emplace_back(arg.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    util::require(!out.empty(), "--partials names no files");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wearscope;
  try {
    std::string trace_dir;
    std::string convert_dir;
    std::string anonymize_dir;
    std::int64_t anon_key = 1;
    std::int64_t anon_quantum = 1;
    std::string format = "csv";
    std::string trace_format = "v2";
    bool daily = false;
    bool devices = false;
    std::int64_t top_hosts = 0;
    std::int64_t threads = 1;
    std::string partials;

    util::FlagParser flags(
        "wearscope_inspect: summarize, slice or transcode a trace bundle");
    flags.add_string("trace", &trace_dir, "bundle directory (required)");
    flags.add_string("partials", &partials,
                     "audit partial-snapshot files instead: a directory of "
                     ".wsfd files or a comma-separated list");
    flags.add_bool("daily", &daily, "print per-day record counts");
    flags.add_bool("devices", &devices, "print the DeviceDB with wearable "
                                        "classification and per-TAC traffic");
    flags.add_int("top-hosts", &top_hosts,
                  "print the N busiest registrable domains");
    flags.add_string("convert", &convert_dir,
                     "re-write the bundle into this directory");
    flags.add_string("anonymize", &anonymize_dir,
                     "write a release-safe anonymized copy here");
    flags.add_int("anon-key", &anon_key,
                  "secret key for the user-id re-hash");
    flags.add_int("anon-quantum", &anon_quantum,
                  "timestamp quantization in seconds");
    flags.add_string("format", &format,
                     "target format for --convert: binary|csv");
    flags.add_string("trace-format", &trace_format,
                     "binary layout for --convert/--anonymize: v1|v2|v3");
    flags.add_int("threads", &threads,
                  "decoder threads for loading v2/v3 bundles");
    if (!flags.parse(argc, argv)) return 0;
    if (!partials.empty()) {
      for (const std::filesystem::path& path : partial_paths(partials)) {
        print_partial_audit(path);
      }
      return 0;
    }
    util::require(!trace_dir.empty(), "--trace is required");
    util::require(threads >= 1, "--threads must be >= 1");
    util::require(trace_format == "v1" || trace_format == "v2" ||
                      trace_format == "v3",
                  "unknown --trace-format (expected v1|v2|v3)");
    const std::uint16_t binary_version =
        trace_format == "v1"   ? std::uint16_t{1}
        : trace_format == "v2" ? trace::kBinaryFormatV2
                               : trace::kBinaryFormatV3;

    trace::LoadOptions load_options;
    load_options.threads = static_cast<int>(threads);
    trace::TraceStore store = trace::load_bundle(trace_dir, load_options);
    store.sort_by_time();

    print_files(trace::audit_bundle(trace_dir));
    print_summary(store);
    if (daily) print_daily(store);
    if (top_hosts > 0) print_top_hosts(store, top_hosts);
    if (devices) print_devices(store);
    if (!anonymize_dir.empty()) {
      trace::TraceStore anon = store;
      trace::AnonymizePolicy policy;
      policy.key = static_cast<std::uint64_t>(anon_key);
      policy.time_quantum_s = anon_quantum;
      trace::anonymize(anon, policy);
      trace::save_bundle(anon, anonymize_dir, trace::BundleFormat::kBinary,
                         binary_version);
      std::printf("anonymized bundle written to %s\n",
                  anonymize_dir.c_str());
    }
    if (!convert_dir.empty()) {
      const trace::BundleFormat f = format == "binary"
                                        ? trace::BundleFormat::kBinary
                                        : trace::BundleFormat::kCsv;
      util::require(format == "binary" || format == "csv",
                    "unknown --format (expected binary|csv)");
      trace::save_bundle(store, convert_dir, f, binary_version);
      std::printf("bundle transcoded to %s (%s)\n", convert_dir.c_str(),
                  format.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
