// wearscope_merge — federate N user-disjoint partial snapshots into the
// single-process snapshot, bitwise.
//
//   wearscope_merge --dir partials/                    # latest epoch
//   wearscope_merge --dir partials/ --epoch 3
//   wearscope_merge --partials a.wsfd,b.wsfd
//   wearscope_merge --dir p/ --verify --bundle traces/run1
//
// --dir scans for the canonical "part<i>of<N>_epoch<E>.wsfd" names and,
// unless --epoch pins one, picks the highest epoch present.  Partials
// load in parallel on --threads executors; the cover is validated
// (complete, disjoint, same feed/window/epoch/quarantine — any violation
// is a hard error) and merged in canonical partition order.
//
// --verify replays the differential gate: the federated snapshot must
// render byte-identically to the batch pipeline and the sequential
// reference over the original bundle.  When the partitions ran under
// chaos, pass the same --chaos-seed/--chaos-profile so the expected
// quarantine accounting is rebuilt here independently.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_plan.h"
#include "fed/merge.h"
#include "serve/reference.h"
#include "trace/bundle.h"
#include "trace/sanitize.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace wearscope;

/// Splits a comma-separated path list.
std::vector<std::filesystem::path> split_paths(const std::string& list) {
  std::vector<std::filesystem::path> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.emplace_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Collects the partials of one epoch from a directory of canonical
/// "part<i>of<N>_epoch<E>.wsfd" names (epoch < 0: the highest present).
std::vector<std::filesystem::path> scan_partial_dir(
    const std::filesystem::path& dir, std::int64_t epoch) {
  struct Candidate {
    std::filesystem::path path;
    unsigned long long epoch = 0;
  };
  std::vector<Candidate> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    unsigned long long pid = 0;
    unsigned long long pcount = 0;
    unsigned long long file_epoch = 0;
    char trailing = 0;
    if (std::sscanf(name.c_str(), "part%lluof%llu_epoch%llu.wsf%c", &pid,
                    &pcount, &file_epoch, &trailing) != 4 ||
        trailing != 'd') {
      continue;
    }
    found.push_back({entry.path(), file_epoch});
  }
  util::require(!found.empty(),
                "no partial files (part<i>of<N>_epoch<E>.wsfd) in " +
                    dir.string());
  unsigned long long want = 0;
  if (epoch >= 0) {
    want = static_cast<unsigned long long>(epoch);
  } else {
    for (const Candidate& c : found) want = std::max(want, c.epoch);
  }
  std::vector<std::filesystem::path> out;
  for (const Candidate& c : found) {
    if (c.epoch == want) out.push_back(c.path);
  }
  util::require(!out.empty(), "no partials for epoch " + std::to_string(want) +
                                  " in " + dir.string());
  std::sort(out.begin(), out.end());
  return out;
}

void print_summary(const fed::MergeResult& merged) {
  const live::LiveSnapshot& snap = merged.snapshot;
  std::printf("federated snapshot (epoch %llu, %llu partitions, "
              "%llu records):\n",
              static_cast<unsigned long long>(snap.epoch),
              static_cast<unsigned long long>(merged.merged_partitions),
              static_cast<unsigned long long>(snap.records));
  std::printf("  ever registered    : %zu (%.1f%% transacting)\n",
              snap.adoption.ever_registered,
              snap.adoption.ever_transacting_fraction * 100.0);
  std::printf("  monthly growth     : %+.2f%%\n",
              snap.adoption.monthly_growth * 100.0);
  std::printf("  mean active        : %.2f days/week, %.2f h/day\n",
              snap.activity.mean_active_days,
              snap.activity.mean_active_hours);
  std::printf("  median transaction : %.0f bytes (%.0f%% under 10 KB)\n",
              snap.activity.median_txn_bytes,
              snap.activity.frac_txn_under_10kb * 100.0);
  std::printf("  class mix (txns)   : app=%llu util=%llu ads=%llu "
              "analytics=%llu\n",
              static_cast<unsigned long long>(snap.class_txns[0]),
              static_cast<unsigned long long>(snap.class_txns[1]),
              static_cast<unsigned long long>(snap.class_txns[2]),
              static_cast<unsigned long long>(snap.class_txns[3]));
  const std::size_t top = std::min<std::size_t>(5, snap.apps.size());
  for (std::size_t i = 0; i < top; ++i) {
    const live::LiveSnapshot::AppRow& row = snap.apps[i];
    std::printf("  app #%zu            : %-18s %8llu txns %6llu usages "
                "%5llu users\n",
                i + 1, row.name.c_str(),
                static_cast<unsigned long long>(row.counter.transactions),
                static_cast<unsigned long long>(row.counter.usages),
                static_cast<unsigned long long>(row.counter.distinct_users));
  }
  if (snap.sketch.enabled) {
    std::printf("  sketch memory      : %zu bytes (merged across "
                "partitions)\n",
                snap.sketch.memory_bytes);
    std::printf("  ~registered users  : %.0f (HLL)\n",
                snap.sketch.registered_users);
    std::printf("  ~txn size p50/95/99: %.0f / %.0f / %.0f bytes "
                "(t-digest)\n",
                snap.sketch.txn_size_p50, snap.sketch.txn_size_p95,
                snap.sketch.txn_size_p99);
  }
  if (snap.quarantine.any()) {
    std::printf("  quarantine         : %llu dropped, %llu repaired, "
                "%llu retried reads\n",
                static_cast<unsigned long long>(
                    snap.quarantine.total_dropped()),
                static_cast<unsigned long long>(snap.quarantine.reordered),
                static_cast<unsigned long long>(
                    snap.quarantine.transient_retries));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string partials_list;
    std::string dir;
    std::int64_t epoch = -1;
    std::int64_t threads = 0;
    bool verify = false;
    std::string bundle_dir;
    std::int64_t chaos_seed = -1;
    std::string chaos_profile = "records";

    util::FlagParser flags(
        "wearscope_merge: federate user-disjoint partial snapshots "
        "(written by wearscope_live --partition) into the single-process "
        "snapshot, bitwise");
    flags.add_string("partials", &partials_list,
                     "comma-separated partial files (alternative to --dir)");
    flags.add_string("dir", &dir,
                     "directory of canonical partial files to scan");
    flags.add_int("epoch", &epoch,
                  "epoch to merge when scanning --dir (-1 = highest)");
    flags.add_int("threads", &threads,
                  "parallel partial loaders (0 = hardware concurrency)");
    flags.add_bool("verify", &verify,
                   "differential gate: the federated snapshot must render "
                   "byte-identically to the batch pipeline over --bundle");
    flags.add_string("bundle", &bundle_dir,
                     "original bundle directory (required by --verify)");
    flags.add_int("chaos-seed", &chaos_seed,
                  "fault seed the partitions ran under (-1 = none)");
    flags.add_string("chaos-profile", &chaos_profile,
                     "fault profile the partitions ran under");
    if (!flags.parse(argc, argv)) return 0;
    util::require(partials_list.empty() != dir.empty(),
                  "exactly one of --partials and --dir is required");
    util::require(!verify || !bundle_dir.empty(),
                  "--verify needs --bundle to rebuild the batch reference");

    const std::vector<std::filesystem::path> paths =
        dir.empty() ? split_paths(partials_list)
                    : scan_partial_dir(dir, epoch);
    const std::size_t loaders =
        threads > 0 ? static_cast<std::size_t>(threads)
                    : std::max(1u, std::thread::hardware_concurrency());
    std::printf("loading %zu partial(s) on %zu thread(s)\n", paths.size(),
                loaders);
    fed::MergeResult merged =
        fed::merge_partials(fed::load_partials(paths, loaders));
    print_summary(merged);

    if (verify) {
      trace::TraceStore store = trace::load_bundle(bundle_dir);
      store.sort_by_time();
      trace::QuarantineStats expected;
      if (chaos_seed >= 0) {
        const chaos::FaultPlan plan(
            static_cast<std::uint64_t>(chaos_seed),
            chaos::FaultProfile::named(chaos_profile));
        util::require(plan.profile().permanent_reads == 0,
                      "--verify needs a chaos profile without permanent "
                      "read faults (the partitions could not have replayed "
                      "the full feed)");
        // Identical preprocessing to the partitioned live runs: clean
        // fixed point, damage, sanitize-with-counting.
        trace::sanitize_store(store);
        plan.inject_records(store);
        expected = trace::sanitize_store(store);
      }
      const std::vector<serve::VerifyMismatch> mismatches =
          serve::verify_responses(merged.snapshot, store, merged.options,
                                  expected);
      for (const serve::VerifyMismatch& m : mismatches) {
        std::printf("  MISMATCH %s\n    federated: %s\n    batch:     %s\n",
                    m.query.c_str(), m.serve.c_str(), m.batch.c_str());
      }
      if (!mismatches.empty()) {
        std::fprintf(stderr,
                     "error: federated snapshot diverges from the batch "
                     "reference (%zu mismatched responses)\n",
                     mismatches.size());
        return 1;
      }
      std::printf("verify: federated == single-process == batch "
                  "(%llu partitions, byte-exact)\n",
                  static_cast<unsigned long long>(merged.merged_partitions));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
