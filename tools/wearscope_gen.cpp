// wearscope_gen — generate a synthetic ISP capture to disk.
//
//   wearscope_gen --out traces/run1                  # standard preset
//   wearscope_gen --preset paper --seed 7 --out d1   # full 7-week window
//   wearscope_gen --config my.cfg --out d2           # explicit knobs
//   wearscope_gen --preset small --write-config s.cfg --out d3
//
// The effective configuration is always echoed next to the bundle
// (<out>/generator.cfg) so any capture can be regenerated bit-for-bit.
#include <chrono>
#include <cstdio>

#include "simnet/config_io.h"
#include "simnet/simulator.h"
#include "trace/bundle.h"
#include "util/error.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  try {
    std::string preset = "standard";
    std::string config_path;
    std::string out_dir = "wearscope-trace";
    std::string format = "binary";
    std::string trace_format = "v2";
    std::string write_config_path;
    std::int64_t seed = 42;

    util::FlagParser flags(
        "wearscope_gen: generate a synthetic mobile-ISP capture "
        "(proxy/MME/DeviceDB/sector logs)");
    flags.add_string("preset", &preset,
                     "base preset: small|standard|paper (ignored with "
                     "--config)");
    flags.add_string("config", &config_path,
                     "load all generator knobs from this file");
    flags.add_int("seed", &seed, "generator seed (overrides config file)");
    flags.add_string("out", &out_dir, "output bundle directory");
    flags.add_string("format", &format, "bundle format: binary|csv");
    flags.add_string("trace-format", &trace_format,
                     "binary layout: v3 (columnar), v2 (blocked, parallel "
                     "decode) or v1 (legacy stream); ignored with "
                     "--format csv");
    flags.add_string("write-config", &write_config_path,
                     "also write the effective config to this path and exit "
                     "without generating when --out is empty");
    if (!flags.parse(argc, argv)) return 0;

    simnet::SimConfig cfg;
    if (!config_path.empty()) {
      cfg = simnet::load_config_file(config_path);
    } else if (preset == "small") {
      cfg = simnet::SimConfig::small();
    } else if (preset == "paper") {
      cfg = simnet::SimConfig::paper();
    } else if (preset == "standard") {
      cfg = simnet::SimConfig::standard();
    } else {
      throw util::ConfigError("unknown preset '" + preset + "'");
    }
    cfg.seed = static_cast<std::uint64_t>(seed);

    if (!write_config_path.empty()) {
      simnet::save_config_file(cfg, write_config_path);
      std::printf("config written to %s\n", write_config_path.c_str());
      if (out_dir.empty()) return 0;
    }

    trace::BundleFormat bundle_format;
    if (format == "binary") {
      bundle_format = trace::BundleFormat::kBinary;
    } else if (format == "csv") {
      bundle_format = trace::BundleFormat::kCsv;
    } else {
      throw util::ConfigError("unknown format '" + format +
                              "' (expected binary|csv)");
    }
    std::uint16_t binary_version = trace::kBinaryFormatV2;
    if (trace_format == "v1") {
      binary_version = 1;
    } else if (trace_format == "v3") {
      binary_version = trace::kBinaryFormatV3;
    } else if (trace_format != "v2") {
      throw util::ConfigError("unknown trace-format '" + trace_format +
                              "' (expected v1|v2|v3)");
    }

    const auto t0 = std::chrono::steady_clock::now();
    const simnet::SimResult sim = simnet::Simulator(cfg).run();
    const double gen_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    trace::save_bundle(sim.store, out_dir, bundle_format, binary_version);
    simnet::save_config_file(cfg, std::filesystem::path(out_dir) /
                                      "generator.cfg");

    const trace::TraceSummary sum = sim.store.summarize();
    std::printf("generated in %.2fs:\n", gen_s);
    std::printf("  proxy transactions : %zu\n", sum.proxy_records);
    std::printf("  MME events         : %zu\n", sum.mme_records);
    std::printf("  DeviceDB rows      : %zu\n", sum.devices);
    std::printf("  antenna sectors    : %zu\n", sum.sectors);
    std::printf("  distinct users     : %zu\n", sum.distinct_mme_users);
    std::printf("  total volume       : %.2f GB\n",
                static_cast<double>(sum.total_bytes) / 1e9);
    std::printf("  window             : day 0 .. day %d (detailed from day "
                "%d)\n",
                sim.observation_days - 1, sim.detailed_start_day);
    if (format == "binary") {
      std::printf("bundle + generator.cfg written to %s (binary %s)\n",
                  out_dir.c_str(), trace_format.c_str());
    } else {
      std::printf("bundle + generator.cfg written to %s (%s)\n",
                  out_dir.c_str(), format.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
