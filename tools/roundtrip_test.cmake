# End-to-end CLI test: generate -> inspect -> anonymize -> analyze.
# Invoked by ctest as
#   cmake -DGEN=<path> -DINSPECT=<path> -DANALYZE=<path> -DWORK=<dir>
#         -P roundtrip_test.cmake
# and fails on any non-zero tool exit or missing artifact.

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

# 1. Generate a tiny capture (explicit config exercises config_io too).
run_step(${GEN} --preset small --seed 5 --out ${WORK}/trace --format binary
         --write-config ${WORK}/gen.cfg)
foreach(artifact trace/proxy.bin trace/mme.bin trace/devices.bin
        trace/sectors.bin trace/generator.cfg gen.cfg)
  if(NOT EXISTS ${WORK}/${artifact})
    message(FATAL_ERROR "missing artifact: ${WORK}/${artifact}")
  endif()
endforeach()

# 2. Inspect + transcode + anonymize.
run_step(${INSPECT} --trace ${WORK}/trace --top-hosts 5 --devices
         --convert ${WORK}/trace_csv --format csv
         --anonymize ${WORK}/trace_anon)
if(NOT EXISTS ${WORK}/trace_csv/proxy.csv)
  message(FATAL_ERROR "csv transcode missing")
endif()
if(NOT EXISTS ${WORK}/trace_anon/proxy.bin)
  message(FATAL_ERROR "anonymized bundle missing")
endif()

# 3. Analyze the original and the anonymized capture; both must complete
#    and produce reports.
run_step(${ANALYZE} --trace ${WORK}/trace --report ${WORK}/report.txt
         --markdown ${WORK}/report.md --csv-dir ${WORK}/csv)
if(NOT EXISTS ${WORK}/report.txt)
  message(FATAL_ERROR "text report missing")
endif()
if(NOT EXISTS ${WORK}/report.md)
  message(FATAL_ERROR "markdown report missing")
endif()
file(GLOB csv_files ${WORK}/csv/*.csv)
list(LENGTH csv_files csv_count)
if(csv_count LESS 30)
  message(FATAL_ERROR "expected >=30 figure CSVs, got ${csv_count}")
endif()

run_step(${ANALYZE} --trace ${WORK}/trace_anon
         --observation-days 153 --detailed-start-day 139)

# 3b. Thread-sweep equivalence gate: the parallel batch pipeline must
#     produce a byte-identical report for every thread count.
foreach(t 2 4 8)
  run_step(${ANALYZE} --trace ${WORK}/trace --threads ${t}
           --report ${WORK}/report_t${t}.txt)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK}/report.txt ${WORK}/report_t${t}.txt
                  RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "report diverges at --threads ${t} (determinism contract broken)")
  endif()
endforeach()

# 3c. v1 -> v2 rewrite gate: the same capture written as a legacy v1
#     record stream, then rewritten into the blocked v2 format, must
#     analyze to a byte-identical report — at every thread count.  This
#     pins the two on-disk encodings to one logical content model.
run_step(${GEN} --preset small --seed 5 --out ${WORK}/trace_v1
         --format binary --trace-format v1)
run_step(${INSPECT} --trace ${WORK}/trace_v1
         --convert ${WORK}/trace_v2 --format binary --trace-format v2)
# --convert rewrites the four logs only; the analyzer also wants the
# generator config, so carry it across by hand.
file(COPY ${WORK}/trace_v1/generator.cfg DESTINATION ${WORK}/trace_v2)
run_step(${ANALYZE} --trace ${WORK}/trace_v1 --report ${WORK}/report_v1.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/report.txt ${WORK}/report_v1.txt
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "v1-format bundle analyzes differently from v2")
endif()
foreach(t 1 2 4 8)
  run_step(${ANALYZE} --trace ${WORK}/trace_v2 --threads ${t}
           --report ${WORK}/report_v2_t${t}.txt)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK}/report_v1.txt ${WORK}/report_v2_t${t}.txt
                  RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "v1->v2 rewrite diverges at --threads ${t}")
  endif()
endforeach()

# 3d. v2 -> v3 rewrite gate: the blocked v2 capture rewritten into the
#     columnar v3 format must analyze to a byte-identical report — at
#     every thread count.  This pins the columnar encoding (dictionaries,
#     delta timestamps, parallel group decode) to the same logical
#     content model as the row formats.
run_step(${INSPECT} --trace ${WORK}/trace_v2
         --convert ${WORK}/trace_v3 --format binary --trace-format v3)
file(COPY ${WORK}/trace_v1/generator.cfg DESTINATION ${WORK}/trace_v3)
foreach(t 1 2 4 8)
  run_step(${ANALYZE} --trace ${WORK}/trace_v3 --threads ${t}
           --report ${WORK}/report_v3_t${t}.txt)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK}/report_v1.txt ${WORK}/report_v3_t${t}.txt
                  RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "v2->v3 rewrite diverges at --threads ${t}")
  endif()
endforeach()

# 4. Compare a bundle against itself: must succeed (all deltas zero).
if(DEFINED COMPARE)
  run_step(${COMPARE} --a ${WORK}/trace --b ${WORK}/trace)
endif()

# 5. Live replay: the sharded online engine must reproduce the batch
#    pipeline's adoption result exactly (--verify enforces it).
if(DEFINED LIVE)
  run_step(${LIVE} --bundle ${WORK}/trace --shards 4 --snapshot-every 1d
           --verify)
endif()

# 5b. Federated round trip: two partitioned live runs over the same
#     bundle persist WSFD partial snapshots, and the merge coordinator's
#     --verify gate must prove the federated snapshot renders
#     byte-identically to the batch pipeline over the original bundle.
if(DEFINED LIVE AND DEFINED MERGE)
  foreach(p 0 1)
    run_step(${LIVE} --bundle ${WORK}/trace --shards 2 --snapshot-every 1d
             --partition ${p}/2 --partial-dir ${WORK}/partials)
  endforeach()
  run_step(${MERGE} --dir ${WORK}/partials --verify --bundle ${WORK}/trace)
  if(DEFINED INSPECT)
    run_step(${INSPECT} --partials ${WORK}/partials)
  endif()
endif()

# 6. Chaos fault-plan round trip: analysis under record-level injection
#    must hold quarantine == manifest exactly (the tool exits non-zero
#    otherwise), and a live replay with transient read faults must still
#    match the batch pipeline bit for bit.
run_step(${ANALYZE} --trace ${WORK}/trace --chaos-seed 7
         --chaos-profile records --report ${WORK}/report_chaos.txt)
if(NOT EXISTS ${WORK}/report_chaos.txt)
  message(FATAL_ERROR "chaos report missing")
endif()
file(READ ${WORK}/report_chaos.txt chaos_report)
if(NOT chaos_report MATCHES "quarantine")
  message(FATAL_ERROR "chaos report does not surface quarantine counters")
endif()
if(DEFINED LIVE)
  run_step(${LIVE} --bundle ${WORK}/trace --shards 3 --chaos-seed 7
           --chaos-profile transient --verify)
endif()

# 7. Lint gate: a machine-readable run over the shipped tree must report
#    zero findings (the JSON path exercises --format=json end to end).
if(DEFINED LINT)
  execute_process(COMMAND ${LINT} --root ${SRC} --format json
                  OUTPUT_VARIABLE lint_json RESULT_VARIABLE lint_rc)
  if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "lint run failed (${lint_rc}): ${lint_json}")
  endif()
  if(NOT lint_json MATCHES "\"total_findings\": 0")
    message(FATAL_ERROR "lint found issues in the shipped tree:\n${lint_json}")
  endif()
endif()

file(REMOVE_RECURSE ${WORK})
message(STATUS "tool round-trip OK")
