// wearscope_analyze — run the full study over an on-disk capture.
//
//   wearscope_analyze --trace traces/run1
//   wearscope_analyze --trace d --csv-dir out/csv --report out/report.txt
//
// Window parameters are read from the bundle's generator.cfg when present
// (a real deployment would know its own collection schedule); they can be
// overridden explicitly.
//
// --chaos-seed N injects a seeded fault plan (--chaos-profile) into the
// capture before analysis and requires the sanitizer's quarantine counters
// to match the injected manifest exactly — the CLI face of the chaos
// differential harness.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "chaos/fault_plan.h"
#include "core/pipeline.h"
#include "core/report_markdown.h"
#include "simnet/config_io.h"
#include "trace/bundle.h"
#include "trace/sanitize.h"
#include "util/error.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  try {
    std::string trace_dir;
    std::string csv_dir;
    std::string report_path;
    std::string markdown_path;
    std::int64_t observation_days = -1;
    std::int64_t detailed_start_day = -1;
    std::int64_t usage_gap_s = 60;
    double signature_coverage = 1.0;
    std::int64_t chaos_seed = -1;
    std::string chaos_profile = "records";
    std::int64_t threads = 1;

    util::FlagParser flags(
        "wearscope_analyze: regenerate every paper figure from a trace "
        "bundle");
    flags.add_string("trace", &trace_dir, "bundle directory (required)");
    flags.add_string("csv-dir", &csv_dir, "export figure series as CSV here");
    flags.add_string("report", &report_path,
                     "also write the text report to this file");
    flags.add_string("markdown", &markdown_path,
                     "write a paper-vs-measured Markdown report here");
    flags.add_int("observation-days", &observation_days,
                  "window length (-1: from generator.cfg or default)");
    flags.add_int("detailed-start-day", &detailed_start_day,
                  "first detailed day (-1: from generator.cfg or default)");
    flags.add_int("usage-gap", &usage_gap_s,
                  "sessionization gap in seconds (paper: 60)");
    flags.add_double("signature-coverage", &signature_coverage,
                     "fraction of app-signature rules retained");
    flags.add_int("chaos-seed", &chaos_seed,
                  "inject a seeded fault plan before analysis (-1 = off)");
    flags.add_string("chaos-profile", &chaos_profile,
                     "fault profile: records, records-heavy, io, transient, "
                     "runtime, all");
    flags.add_int("threads", &threads,
                  "batch pipeline threads (output is identical for any N)");
    if (!flags.parse(argc, argv)) return 0;
    util::require(!trace_dir.empty(), "--trace is required");
    util::require(threads >= 1, "--threads must be >= 1");

    // Window defaults: the bundle's generator.cfg, then library defaults.
    core::AnalysisOptions opt;
    const std::filesystem::path cfg_path =
        std::filesystem::path(trace_dir) / "generator.cfg";
    if (std::filesystem::exists(cfg_path)) {
      const simnet::SimConfig cfg = simnet::load_config_file(cfg_path);
      opt.observation_days = cfg.observation_days;
      opt.detailed_start_day = cfg.observation_days - cfg.detailed_days;
      opt.long_tail_apps = cfg.long_tail_apps;
      std::printf("window from %s: %d days, detailed from day %d\n",
                  cfg_path.c_str(), opt.observation_days,
                  opt.detailed_start_day);
    }
    if (observation_days > 0)
      opt.observation_days = static_cast<int>(observation_days);
    if (detailed_start_day >= 0)
      opt.detailed_start_day = static_cast<int>(detailed_start_day);
    opt.usage_gap_s = usage_gap_s;
    opt.signature_coverage = signature_coverage;
    opt.threads = static_cast<int>(threads);

    trace::LoadOptions load_options;
    load_options.threads = static_cast<int>(threads);
    trace::TraceStore store = trace::load_bundle(trace_dir, load_options);
    store.sort_by_time();
    const trace::TraceSummary sum = store.summarize();
    std::printf("loaded %zu proxy + %zu MME records (%zu users)\n",
                sum.proxy_records, sum.mme_records, sum.distinct_mme_users);

    trace::QuarantineStats quarantine;
    if (chaos_seed >= 0) {
      const chaos::FaultPlan plan(static_cast<std::uint64_t>(chaos_seed),
                                  chaos::FaultProfile::named(chaos_profile));
      // Establish the clean fixed point, then damage it and sanitize again:
      // the second pass must quarantine exactly what the plan injected.
      trace::sanitize_store(store);
      const chaos::FaultManifest manifest = plan.inject_records(store);
      quarantine = trace::sanitize_store(store);
      std::printf("chaos: profile '%s' seed %lld, %llu records quarantined\n",
                  plan.profile().name.c_str(),
                  static_cast<long long>(chaos_seed),
                  static_cast<unsigned long long>(quarantine.total_dropped()));
      if (!(quarantine == manifest.expected)) {
        std::fprintf(stderr,
                     "error: quarantine diverges from the injected fault "
                     "manifest\n%s",
                     trace::to_text(quarantine).c_str());
        return 1;
      }
      std::printf("chaos: quarantine == injected manifest (exact)\n");
    }

    const core::Pipeline pipeline(store, opt);
    core::StudyReport report = pipeline.run();
    report.quarantine = quarantine;
    const std::string text = report.to_text();
    std::fputs(text.c_str(), stdout);

    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out) throw util::IoError("cannot write report: " + report_path);
      out << text;
      std::printf("report written to %s\n", report_path.c_str());
    }
    if (!markdown_path.empty()) {
      core::MarkdownMeta meta;
      meta.extra = "Generated by wearscope_analyze from " + trace_dir + ".";
      std::ofstream out(markdown_path);
      if (!out) throw util::IoError("cannot write markdown: " + markdown_path);
      out << core::to_markdown(report, meta);
      std::printf("markdown report written to %s\n", markdown_path.c_str());
    }
    if (!csv_dir.empty()) {
      for (const core::FigureData& f : report.figures) f.write_csv(csv_dir);
      std::printf("figure CSVs written to %s\n", csv_dir.c_str());
    }
    std::printf("failed checks: %zu\n", report.failed_checks());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
