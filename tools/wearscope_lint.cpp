// wearscope_lint: the project's determinism & concurrency invariant
// checker (see src/lint/linter.h for the rule catalogue).
//
//   wearscope_lint --root . --error-on-findings
//   wearscope_lint --root . --format json
//   wearscope_lint --root . --format sarif > lint.sarif
//   wearscope_lint --rule unordered-emit,wallclock
//   wearscope_lint --root . --graph-dump          # debug the flow rules
//
// Exit status: 0 on a clean tree (or findings without --error-on-findings),
// 1 when --error-on-findings is set and findings remain, 2 on usage or
// I/O errors (including unknown --rule / --format values).
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "util/flags.h"

namespace {

std::vector<std::string> split_commas(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < csv.size()) {
    const std::size_t comma = csv.find(',', i);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > i) out.push_back(csv.substr(i, end - i));
    i = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string root = ".";
  std::string dirs = "src,tools,bench";
  std::string format = "text";
  std::string rules_csv;
  std::string bench_json;
  bool error_on_findings = false;
  bool list_rules = false;
  bool graph_dump = false;

  wearscope::util::FlagParser flags(
      "wearscope_lint: static determinism & concurrency invariant checker.\n"
      "Walks the project tree and reports named, suppressible rule "
      "violations.");
  flags.add_string("root", &root, "repository root to lint");
  flags.add_string("dirs", &dirs, "comma-separated directories under root");
  flags.add_string("format", &format, "report format: text, json, or sarif");
  flags.add_string("rule", &rules_csv,
                   "comma-separated rule ids to run (default: all)");
  flags.add_string("bench-json", &bench_json,
                   "write lint timing/count metrics to this JSON file");
  flags.add_bool("error-on-findings", &error_on_findings,
                 "exit with status 1 when any finding remains");
  flags.add_bool("list-rules", &list_rules, "print rule ids and exit");
  flags.add_bool("graph-dump", &graph_dump,
                 "dump the symbol index, call graph and lock-order edges "
                 "instead of linting");
  if (!flags.parse(argc, argv)) return 0;

  if (list_rules) {
    for (const std::string& rule : wearscope::lint::all_rules())
      std::cout << rule << "\n";
    return 0;
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "wearscope_lint: unknown --format '" << format
              << "' (expected text, json, or sarif)\n";
    return 2;
  }

  wearscope::lint::Options options;
  options.only_rules = split_commas(rules_csv);
  const std::vector<std::string> bad =
      wearscope::lint::unknown_rules(options.only_rules);
  if (!bad.empty()) {
    std::cerr << "wearscope_lint: unknown rule";
    if (bad.size() > 1) std::cerr << "s";
    for (const std::string& rule : bad) std::cerr << " '" << rule << "'";
    std::cerr << "\nvalid rules:";
    for (const std::string& rule : wearscope::lint::all_rules())
      std::cerr << " " << rule;
    std::cerr << "\n";
    return 2;
  }

  // steady_clock, not wall clock: we time a duration, we don't read the
  // time of day (and the wallclock rule holds this file to that).
  const auto started = std::chrono::steady_clock::now();
  const wearscope::lint::Project project =
      wearscope::lint::load_tree(root, split_commas(dirs));

  if (graph_dump) {
    std::cout << wearscope::lint::dump_graph(project);
    return 0;
  }

  const std::vector<wearscope::lint::Finding> findings =
      wearscope::lint::run_lint(project, options);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  if (!bench_json.empty()) {
    std::ofstream out(bench_json);
    if (!out) {
      std::cerr << "wearscope_lint: cannot write " << bench_json << "\n";
      return 2;
    }
    const std::size_t rules_run = options.only_rules.empty()
                                      ? wearscope::lint::all_rules().size()
                                      : options.only_rules.size();
    out << "{\n"
        << "  \"lint_seconds\": " << elapsed.count() << ",\n"
        << "  \"files\": " << project.sources().size() << ",\n"
        << "  \"rules\": " << rules_run << ",\n"
        << "  \"findings\": " << findings.size() << "\n"
        << "}\n";
  }

  if (format == "json") {
    std::cout << wearscope::lint::to_json(findings);
  } else if (format == "sarif") {
    std::cout << wearscope::lint::to_sarif(findings);
  } else {
    std::cout << wearscope::lint::to_text(findings);
    std::cout << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in "
              << project.sources().size() << " files\n";
  }
  return error_on_findings && !findings.empty() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "wearscope_lint: " << e.what() << "\n";
  return 2;
}
