// wearscope_lint: the project's determinism & concurrency invariant
// checker (see src/lint/linter.h for the rule catalogue).
//
//   wearscope_lint --root . --error-on-findings
//   wearscope_lint --root . --format json
//   wearscope_lint --rule unordered-emit,wallclock
//
// Exit status: 0 on a clean tree (or findings without --error-on-findings),
// 1 when --error-on-findings is set and findings remain, 2 on usage or
// I/O errors.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "util/flags.h"

namespace {

std::vector<std::string> split_commas(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < csv.size()) {
    const std::size_t comma = csv.find(',', i);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > i) out.push_back(csv.substr(i, end - i));
    i = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string root = ".";
  std::string dirs = "src,tools,bench";
  std::string format = "text";
  std::string rules_csv;
  bool error_on_findings = false;
  bool list_rules = false;

  wearscope::util::FlagParser flags(
      "wearscope_lint: static determinism & concurrency invariant checker.\n"
      "Walks the project tree and reports named, suppressible rule "
      "violations.");
  flags.add_string("root", &root, "repository root to lint");
  flags.add_string("dirs", &dirs, "comma-separated directories under root");
  flags.add_string("format", &format, "report format: text or json");
  flags.add_string("rule", &rules_csv,
                   "comma-separated rule ids to run (default: all)");
  flags.add_bool("error-on-findings", &error_on_findings,
                 "exit with status 1 when any finding remains");
  flags.add_bool("list-rules", &list_rules, "print rule ids and exit");
  if (!flags.parse(argc, argv)) return 0;

  if (list_rules) {
    for (const std::string& rule : wearscope::lint::all_rules())
      std::cout << rule << "\n";
    return 0;
  }
  if (format != "text" && format != "json") {
    std::cerr << "wearscope_lint: unknown --format '" << format
              << "' (expected text or json)\n";
    return 2;
  }

  wearscope::lint::Options options;
  options.only_rules = split_commas(rules_csv);
  const wearscope::lint::Project project =
      wearscope::lint::load_tree(root, split_commas(dirs));
  const std::vector<wearscope::lint::Finding> findings =
      wearscope::lint::run_lint(project, options);

  if (format == "json") {
    std::cout << wearscope::lint::to_json(findings);
  } else {
    std::cout << wearscope::lint::to_text(findings);
    std::cout << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in "
              << project.sources().size() << " files\n";
  }
  return error_on_findings && !findings.empty() ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "wearscope_lint: " << e.what() << "\n";
  return 2;
}
