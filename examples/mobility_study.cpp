// Mobility study (paper §4.4 / Fig. 4c-d): max-displacement distributions,
// dwell-weighted location entropy under both normalizations, and the
// single-location phenomenon — demonstrating the lower-level analysis API
// (AnalysisContext + per-user helpers) beyond the packaged Pipeline.
#include <cstdio>

#include "core/analysis_mobility.h"
#include "core/context.h"
#include "simnet/simulator.h"
#include "util/ascii_chart.h"
#include "util/flags.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "standard";
  std::int64_t seed = 42;
  util::FlagParser flags("mobility study over the detailed window");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  if (!flags.parse(argc, argv)) return 0;

  simnet::SimConfig cfg = preset == "paper"   ? simnet::SimConfig::paper()
                          : preset == "small" ? simnet::SimConfig::small()
                                              : simnet::SimConfig::standard();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);
  const core::MobilityResult r = core::analyze_mobility(ctx);

  std::printf("== max displacement (km) ==\n");
  std::vector<std::vector<std::string>> rows;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    rows.push_back({"p" + util::format_num(q * 100, 0),
                    util::format_num(r.wearable_displacement_km.quantile(q), 1),
                    util::format_num(r.all_displacement_km.quantile(q), 1)});
  }
  std::fputs(util::table({"quantile", "wearable users", "all users"}, rows)
                 .c_str(),
             stdout);
  std::printf("means: %.1f km vs %.1f km (ratio %.2f; paper ~2x)\n",
              r.wearable_mean_km, r.all_mean_km, r.displacement_ratio);
  std::printf("%.0f%% of wearable users move < 30 km a day (paper: 90%%)\n",
              100.0 * r.frac_under_30km);

  std::printf("\n== location entropy, both normalizations ==\n");
  for (const auto norm : {core::EntropyNorm::kDwellWeighted,
                          core::EntropyNorm::kVisitCount}) {
    util::OnlineStats wear;
    util::OnlineStats all;
    for (const core::UserView& u : ctx.users()) {
      if (u.mme.empty()) continue;
      const double h = core::user_location_entropy(ctx, u, norm);
      all.add(h);
      if (u.has_wearable) wear.add(h);
    }
    std::printf("  %-22s wearable=%.2f bits, all=%.2f bits (ratio %.2f)\n",
                norm == core::EntropyNorm::kDwellWeighted ? "dwell-weighted:"
                                                          : "visit-count:",
                wear.mean(), all.mean(),
                all.mean() > 0 ? wear.mean() / all.mean() : 0.0);
  }

  std::printf("\n== activity vs mobility (Fig. 4d) ==\n");
  for (std::size_t b = 0; b < r.displacement_vs_txns.x_centers.size(); ++b) {
    std::printf("  txns/hour %5.1f -> displacement %5.1f km (%zu users)\n",
                r.displacement_vs_txns.x_centers[b],
                r.displacement_vs_txns.y_means[b], r.displacement_vs_txns.n[b]);
  }
  std::printf("Spearman correlation: %.2f\n", r.mobility_activity_corr);
  std::printf(
      "\n%.0f%% of transacting wearable users use cellular data from a "
      "single location (paper: 60%%)\n",
      100.0 * r.single_location_fraction);
  return 0;
}
