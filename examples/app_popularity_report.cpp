// App popularity report (paper §5.1 / Figs. 5-7): the named-app ranking,
// the category roll-up, and per-usage behaviour, rendered as log-scale
// terminal charts like the paper's figures.
#include <cstdio>

#include "core/analysis_apps.h"
#include "core/analysis_categories.h"
#include "core/analysis_usage.h"
#include "core/context.h"
#include "simnet/simulator.h"
#include "util/ascii_chart.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "standard";
  std::int64_t seed = 42;
  std::int64_t top = 15;
  util::FlagParser flags("application popularity and usage report");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  flags.add_int("top", &top, "apps per chart");
  if (!flags.parse(argc, argv)) return 0;

  simnet::SimConfig cfg = preset == "paper"   ? simnet::SimConfig::paper()
                          : preset == "small" ? simnet::SimConfig::small()
                                              : simnet::SimConfig::standard();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);

  const core::AppPopularityResult apps = core::analyze_apps(ctx);
  std::printf("== daily associated users (named apps, log scale) ==\n");
  std::vector<util::Bar> bars;
  for (const core::AppStats& a : apps.apps) {
    if (a.name.starts_with("LongTail-") || a.name == "Unknown") continue;
    bars.push_back({a.name, a.user_share_pct});
    if (bars.size() >= static_cast<std::size_t>(top)) break;
  }
  std::fputs(util::bar_chart(bars, 40, /*log_scale=*/true).c_str(), stdout);
  std::printf(
      "apps per user: mean %.1f observed on cellular (paper: 8 installed); "
      "%.0f%% of days run one app (paper: 93%%)\n\n",
      apps.mean_apps_per_user, 100.0 * apps.one_app_day_fraction);

  const core::CategoryResult cats = core::analyze_categories(ctx);
  std::printf("== category share of daily users ==\n");
  bars.clear();
  for (const core::CategoryStats& s : cats.by_users) {
    bars.push_back(
        {std::string(appdb::category_name(s.category)), s.user_share_pct});
  }
  std::fputs(util::bar_chart(bars, 40, /*log_scale=*/true).c_str(), stdout);

  const core::UsageResult usage = core::analyze_usage(ctx);
  std::printf("\n== data per single usage (KB, log scale) ==\n");
  bars.clear();
  for (const core::PerUsageStats& s : usage.apps) {
    if (s.name.starts_with("LongTail-") || s.name == "Unknown") continue;
    bars.push_back({s.name, s.mean_kb_per_usage});
    if (bars.size() >= static_cast<std::size_t>(top)) break;
  }
  std::fputs(util::bar_chart(bars, 40, /*log_scale=*/true).c_str(), stdout);
  std::printf(
      "\nmedia/communication apps top the per-usage volume; payments and\n"
      "notification apps populate the tail (paper Fig. 7).\n");
  return 0;
}
