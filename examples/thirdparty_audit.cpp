// Third-party audit (paper §5.2 / Fig. 8): classifies every wearable
// transaction into Application / Utilities / Advertising / Analytics and
// then goes beyond the paper with a per-app privacy scorecard — which apps
// leak the largest share of their traffic to ad/analytics networks.
// Demonstrates composing the public attribution primitives into a custom
// analysis.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/analysis_thirdparty.h"
#include "core/context.h"
#include "simnet/simulator.h"
#include "util/ascii_chart.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "standard";
  std::int64_t seed = 42;
  std::int64_t top = 12;
  util::FlagParser flags("third-party traffic audit of wearable apps");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  flags.add_int("top", &top, "rows in the per-app scorecard");
  if (!flags.parse(argc, argv)) return 0;

  simnet::SimConfig cfg = preset == "paper"   ? simnet::SimConfig::paper()
                          : preset == "small" ? simnet::SimConfig::small()
                                              : simnet::SimConfig::standard();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);

  // The packaged Fig. 8 view.
  const core::ThirdPartyResult fig8 = core::analyze_thirdparty(ctx);
  std::printf("== transaction classes (share of wearable daily total) ==\n");
  for (const core::ClassStats& s : fig8.classes) {
    std::printf("  %-12s users=%6.2f%%  freq=%6.2f%%  data=%6.2f%%\n",
                std::string(appdb::transaction_class_name(s.cls)).c_str(),
                s.user_share_pct, s.txn_share_pct, s.data_share_pct);
  }
  std::printf("first-party/third-party data ratio: %.2f "
              "(paper: same order of magnitude)\n\n",
              fig8.app_over_thirdparty_data);

  // Custom analysis: per-app third-party byte share via the attribution
  // primitives (third-party hosts inherit the nearby app by the paper's
  // temporal-proximity rule, so they CAN be charged to an app).
  struct AppAudit {
    double first_party = 0.0;
    double ads = 0.0;
    double analytics = 0.0;
    double cdn = 0.0;
  };
  std::map<std::string, AppAudit> audit;
  for (const core::UserView* u : ctx.wearable_users()) {
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const core::EndpointClass& e = u->wearable_classes[i];
      if (e.app == core::kUnknownApp) continue;
      const double bytes =
          static_cast<double>(u->wearable_txns[i]->bytes_total());
      AppAudit& a = audit[std::string(ctx.signatures().app_name(e.app))];
      switch (e.cls) {
        case appdb::TransactionClass::kApplication:
          a.first_party += bytes;
          break;
        case appdb::TransactionClass::kUtilities:
          a.cdn += bytes;
          break;
        case appdb::TransactionClass::kAdvertising:
          a.ads += bytes;
          break;
        case appdb::TransactionClass::kAnalytics:
          a.analytics += bytes;
          break;
      }
    }
  }
  std::vector<std::pair<std::string, AppAudit>> ranked(audit.begin(),
                                                       audit.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    const auto total = [](const AppAudit& a) {
      return a.first_party + a.ads + a.analytics + a.cdn;
    };
    return total(x.second) > total(y.second);
  });

  std::printf("== per-app privacy scorecard (top %lld apps by volume) ==\n",
              static_cast<long long>(top));
  std::vector<std::vector<std::string>> rows;
  std::int64_t shown = 0;
  for (const auto& [name, a] : ranked) {
    if (name.starts_with("LongTail-")) continue;
    const double total = a.first_party + a.ads + a.analytics + a.cdn;
    if (total <= 0.0) continue;
    rows.push_back({name, util::format_num(total / 1e6, 1),
                    util::format_num(100.0 * a.ads / total, 1) + "%",
                    util::format_num(100.0 * a.analytics / total, 1) + "%",
                    util::format_num(100.0 * a.cdn / total, 1) + "%"});
    if (++shown >= top) break;
  }
  std::fputs(
      util::table({"app", "MB", "ads", "analytics", "cdn"}, rows).c_str(),
      stdout);
  std::printf(
      "\nnote: with wearables' small data plans and batteries, the paper\n"
      "warns this third-party share is costlier than on smartphones.\n");
  return 0;
}
