// Adoption study (paper §4.1 / Fig. 2): plots the five-month ramp of
// registered SIM-wearable users, the retention split between the first and
// the last week, and the silent-user phenomenon — then shows how the
// structured results can drive custom what-if arithmetic (e.g. projecting
// the ramp forward).
#include <cstdio>

#include "core/analysis_adoption.h"
#include "core/context.h"
#include "simnet/simulator.h"
#include "util/ascii_chart.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "standard";
  std::int64_t seed = 42;
  std::int64_t horizon_months = 12;
  util::FlagParser flags("adoption study over the five-month window");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  flags.add_int("horizon", &horizon_months,
                "projection horizon in months at the measured growth rate");
  if (!flags.parse(argc, argv)) return 0;

  simnet::SimConfig cfg = preset == "paper"      ? simnet::SimConfig::paper()
                          : preset == "small"    ? simnet::SimConfig::small()
                                                 : simnet::SimConfig::standard();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);
  const core::AdoptionResult r = core::analyze_adoption(ctx);

  std::printf("== SIM-enabled wearable adoption ==\n");
  std::printf("registered users per day (normalized; %d days):\n",
              sim.observation_days);
  std::printf("[%s]\n", util::sparkline(r.daily_registered_norm).c_str());
  std::printf("total growth: %.1f%% (%.2f%%/month)\n",
              100.0 * r.total_growth, 100.0 * r.monthly_growth);

  std::printf("\n== first week vs last week ==\n");
  std::fputs(util::bar_chart({{"still-active", r.still_active_share},
                              {"gone", r.gone_share},
                              {"new", r.new_share}},
                             40)
                 .c_str(),
             stdout);
  std::printf("%.1f%% of the initial users abandoned the wearable\n",
              100.0 * r.churned_of_initial);

  std::printf("\n== the silent majority ==\n");
  std::printf("%zu users registered; %zu transmitted data (%.1f%%)\n",
              r.ever_registered, r.ever_transacted,
              100.0 * r.ever_transacting_fraction);
  std::printf("(the paper attributes the gap to missing data plans and "
              "WiFi-preferring apps)\n");

  std::printf("\n== projection ==\n");
  double base = 1.0;
  for (int m = 1; m <= horizon_months; ++m) base *= 1.0 + r.monthly_growth;
  std::printf(
      "at the measured %.2f%%/month, the base grows %.1f%% in %lld months\n",
      100.0 * r.monthly_growth, 100.0 * (base - 1.0),
      static_cast<long long>(horizon_months));
  return 0;
}
