// Quickstart: the whole system in ~60 lines.
//
//   1. Synthesize a small mobile-ISP capture (the paper's three vantage
//      points: transparent proxy, MME, DeviceDB).
//   2. Persist it to disk and load it back (the logs are the only interface
//      between generation and analysis).
//   3. Run the full analysis pipeline and print every figure's
//      paper-vs-measured checks.
//
// Run:  ./quickstart [--preset small|standard|paper] [--seed N]
#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "simnet/simulator.h"
#include "trace/bundle.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "standard";
  std::int64_t seed = 42;
  util::FlagParser flags("wearscope quickstart: simulate -> persist -> analyze");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  if (!flags.parse(argc, argv)) return 0;

  // 1. Simulate the ISP.
  simnet::SimConfig cfg = preset == "paper"      ? simnet::SimConfig::paper()
                          : preset == "standard" ? simnet::SimConfig::standard()
                                                 : simnet::SimConfig::small();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  const trace::TraceSummary sum = sim.store.summarize();
  std::printf("simulated %zu proxy transactions, %zu MME events, "
              "%zu users, %.1f GB\n",
              sum.proxy_records, sum.mme_records, sum.distinct_mme_users,
              static_cast<double>(sum.total_bytes) / 1e9);

  // 2. Round-trip the capture through the on-disk bundle format.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wearscope_quickstart";
  trace::save_bundle(sim.store, dir);
  const trace::TraceStore logs = trace::load_bundle(dir);
  std::printf("bundle round-trip via %s\n", dir.c_str());

  // 3. Analyze: the pipeline sees only the logs, like the paper's authors.
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::Pipeline pipeline(logs, opt);
  const core::StudyReport report = pipeline.run();
  std::fputs(report.to_text().c_str(), stdout);

  std::printf("== takeaways ==\n");
  std::printf("only %.0f%% of wearable users transmit data (paper: 34%%)\n",
              100.0 * report.adoption.ever_transacting_fraction);
  std::printf("owners: +%.0f%% data, +%.0f%% transactions (paper: +26/+48)\n",
              100.0 * (report.comparison.data_ratio - 1.0),
              100.0 * (report.comparison.txn_ratio - 1.0));
  std::printf("wearable users roam %.1fx farther (paper: ~2x)\n",
              report.mobility.displacement_ratio);
  std::printf("%zu of %zu checks passed\n",
              [&] {
                std::size_t total = 0;
                for (const auto& f : report.figures) total += f.checks.size();
                return total - report.failed_checks();
              }(),
              [&] {
                std::size_t total = 0;
                for (const auto& f : report.figures) total += f.checks.size();
                return total;
              }());
  return report.failed_checks() == 0 ? 0 : 1;
}
