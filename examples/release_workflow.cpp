// Release workflow: how an ISP research team would share results from a
// capture they cannot publish raw (paper §3.5 ethics constraints):
//
//   1. anonymize the capture (keyed user-id re-hash, host coarsening,
//      timestamp quantization, URL-path drop);
//   2. verify the anonymized copy still supports the full study;
//   3. emit the shareable artifacts: the anonymized bundle plus a
//      paper-vs-measured Markdown report.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "core/report_markdown.h"
#include "simnet/simulator.h"
#include "trace/anonymize.h"
#include "trace/bundle.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  std::string preset = "small";
  std::int64_t seed = 42;
  std::int64_t key = 20260708;
  std::string out = "";
  util::FlagParser flags("release workflow: anonymize, re-verify, publish");
  flags.add_string("preset", &preset, "small|standard|paper");
  flags.add_int("seed", &seed, "generator seed");
  flags.add_int("key", &key, "anonymization key (keep secret!)");
  flags.add_string("out", &out,
                   "output directory (default: temp directory)");
  if (!flags.parse(argc, argv)) return 0;
  const std::filesystem::path out_dir =
      out.empty() ? std::filesystem::temp_directory_path() /
                        "wearscope_release"
                  : std::filesystem::path(out);

  // The "internal" capture.
  simnet::SimConfig cfg = preset == "paper"      ? simnet::SimConfig::paper()
                          : preset == "standard" ? simnet::SimConfig::standard()
                                                 : simnet::SimConfig::small();
  cfg.seed = static_cast<std::uint64_t>(seed);
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  std::printf("internal capture: %zu proxy records\n",
              sim.store.proxy.size());

  // 1. Anonymize.
  trace::TraceStore anon = sim.store;
  trace::AnonymizePolicy policy;
  policy.key = static_cast<std::uint64_t>(key);
  policy.time_quantum_s = 5;
  trace::anonymize(anon, policy);
  std::printf("anonymized: ids re-keyed, hosts coarsened, paths dropped, "
              "timestamps floored to %llds\n",
              static_cast<long long>(policy.time_quantum_s));

  // 2. Re-verify: the study must still hold on the release copy.
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::Pipeline pipeline(anon, opt);
  const core::StudyReport report = pipeline.run();
  std::size_t checks = 0;
  for (const core::FigureData& f : report.figures) checks += f.checks.size();
  std::printf("re-verified on the anonymized copy: %zu/%zu checks pass "
              "(unknown traffic %.1f%% after host coarsening)\n",
              checks - report.failed_checks(), checks,
              100.0 * report.apps.unknown_traffic_fraction);

  // 3. Publish.
  trace::save_bundle(anon, out_dir / "bundle");
  core::MarkdownMeta meta;
  meta.title = "WearScope release report (anonymized capture)";
  meta.preset = preset;
  meta.seed = std::to_string(seed);
  meta.extra = "All identifiers re-keyed; endpoint hosts coarsened to "
               "registrable domains; URL paths removed.";
  std::ofstream md(out_dir / "report.md");
  md << core::to_markdown(report, meta);
  std::printf("release artifacts in %s: bundle/ + report.md\n",
              out_dir.c_str());
  return 0;
}
