// Unit tests for the command-line flag parser.
#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::util {
namespace {

TEST(Flags, ParsesAllForms) {
  std::int64_t n = 1;
  double d = 0.5;
  std::string s = "default";
  bool b = false;
  FlagParser p("test");
  p.add_int("n", &n, "an int");
  p.add_double("d", &d, "a double");
  p.add_string("s", &s, "a string");
  p.add_bool("b", &b, "a bool");

  const char* argv[] = {"prog", "--n=42", "--d", "2.5", "--s=hello", "--b"};
  ASSERT_TRUE(p.parse(6, argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(Flags, DefaultsSurviveWhenAbsent) {
  std::int64_t n = 7;
  FlagParser p("test");
  p.add_int("n", &n, "an int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(n, 7);
}

TEST(Flags, BoolExplicitValues) {
  bool b = true;
  FlagParser p("test");
  p.add_bool("b", &b, "a bool");
  const char* argv[] = {"prog", "--b=false"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_FALSE(b);
  const char* argv2[] = {"prog", "--b=1"};
  ASSERT_TRUE(p.parse(2, argv2));
  EXPECT_TRUE(b);
}

TEST(Flags, UnknownFlagThrows) {
  FlagParser p("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Flags, BadValueThrows) {
  std::int64_t n = 0;
  double d = 0;
  FlagParser p("test");
  p.add_int("n", &n, "an int");
  p.add_double("d", &d, "a double");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
  const char* argv2[] = {"prog", "--d=1.2.3"};
  EXPECT_THROW(p.parse(2, argv2), ConfigError);
}

TEST(Flags, MissingValueThrows) {
  std::int64_t n = 0;
  FlagParser p("test");
  p.add_int("n", &n, "an int");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Flags, NonFlagArgumentThrows) {
  FlagParser p("test");
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Flags, DuplicateRegistrationThrows) {
  std::int64_t n = 0;
  FlagParser p("test");
  p.add_int("n", &n, "an int");
  EXPECT_THROW(p.add_int("n", &n, "again"), ConfigError);
}

TEST(Flags, HelpReturnsFalseAndListsFlags) {
  std::int64_t n = 3;
  FlagParser p("my program");
  p.add_int("count", &n, "how many");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_NE(p.help().find("--count"), std::string::npos);
  EXPECT_NE(p.help().find("how many"), std::string::npos);
  EXPECT_NE(p.help().find("default: 3"), std::string::npos);
}

}  // namespace
}  // namespace wearscope::util
