// Unit tests for the subscriber population builder.
#include "simnet/population.h"

#include "util/stats.h"

#include <set>

#include <gtest/gtest.h>

namespace wearscope::simnet {
namespace {

struct World {
  SimConfig cfg = SimConfig::small();
  appdb::AppCatalog apps{cfg.long_tail_apps};
  appdb::DeviceModelCatalog devices;
  Geography geo{cfg, util::Pcg32(1)};
  Population pop{cfg, geo, apps, devices, util::Pcg32(2)};
};

TEST(Population, SegmentCountsMatchConfig) {
  World w;
  EXPECT_EQ(w.pop.subscribers().size(),
            w.cfg.wearable_users + w.cfg.control_users +
                w.cfg.through_device_users);
  EXPECT_EQ(w.pop.of_segment(Segment::kWearableOwner).size(),
            w.cfg.wearable_users);
  EXPECT_EQ(w.pop.of_segment(Segment::kControl).size(), w.cfg.control_users);
  EXPECT_EQ(w.pop.of_segment(Segment::kThroughDevice).size(),
            w.cfg.through_device_users);
}

TEST(Population, UserIdsAreUnique) {
  World w;
  std::set<trace::UserId> ids;
  for (const Subscriber& s : w.pop.subscribers()) {
    EXPECT_TRUE(ids.insert(s.user_id).second);
  }
}

TEST(Population, DevicesMatchSegments) {
  World w;
  for (const Subscriber& s : w.pop.subscribers()) {
    EXPECT_NE(s.phone_tac, 0u);
    EXPECT_EQ(w.devices.class_of_tac(s.phone_tac),
              appdb::DeviceClass::kSmartphone);
    if (s.segment == Segment::kWearableOwner) {
      EXPECT_EQ(w.devices.class_of_tac(s.wearable_tac),
                appdb::DeviceClass::kSimWearable);
    } else {
      EXPECT_EQ(s.wearable_tac, 0u);
    }
  }
}

TEST(Population, OnlyThroughDeviceUsersCarryCompanions) {
  World w;
  std::size_t fingerprinted = 0;
  for (const Subscriber& s : w.pop.subscribers()) {
    if (s.segment != Segment::kThroughDevice) {
      EXPECT_EQ(s.companion_signature, -1);
    } else if (s.companion_signature >= 0) {
      ++fingerprinted;
      EXPECT_LT(static_cast<std::size_t>(s.companion_signature),
                appdb::companion_signatures().size());
    }
  }
  // ~16% of TD users, generously banded for the small preset.
  const double frac = static_cast<double>(fingerprinted) /
                      static_cast<double>(w.cfg.through_device_users);
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.35);
}

TEST(Population, AdoptionSplitPreWindowVsRamp) {
  World w;
  std::size_t pre = 0;
  std::size_t ramp = 0;
  for (const Subscriber* s : w.pop.of_segment(Segment::kWearableOwner)) {
    if (s->adoption_day == 0) {
      ++pre;
    } else {
      ++ramp;
      EXPECT_GT(s->adoption_day, 0);
      EXPECT_LT(s->adoption_day, w.cfg.observation_days);
    }
  }
  const double pre_frac =
      static_cast<double>(pre) / static_cast<double>(pre + ramp);
  EXPECT_NEAR(pre_frac, 0.86, 0.07);
}

TEST(Population, ChurnOnlyAffectsEarlyAdopters) {
  World w;
  std::size_t churned = 0;
  std::size_t early = 0;
  for (const Subscriber* s : w.pop.of_segment(Segment::kWearableOwner)) {
    if (s->adoption_day <= 7) ++early;
    if (s->churn_day < (1 << 30)) {
      ++churned;
      EXPECT_LE(s->adoption_day, 7);
      EXPECT_GE(s->churn_day, w.cfg.observation_days / 3);
      EXPECT_LT(s->churn_day, w.cfg.observation_days - 7);
    }
  }
  const double churn_frac =
      static_cast<double>(churned) / static_cast<double>(early);
  EXPECT_NEAR(churn_frac, w.cfg.churn_fraction, 0.05);
}

TEST(Population, SilentFractionNearConfig) {
  World w;
  std::size_t silent = 0;
  for (const Subscriber* s : w.pop.of_segment(Segment::kWearableOwner)) {
    if (s->silent) ++silent;
  }
  EXPECT_NEAR(static_cast<double>(silent) / w.cfg.wearable_users,
              w.cfg.silent_user_fraction, 0.08);
}

TEST(Population, WearableAppsBoundsAndStats) {
  World w;
  double total = 0.0;
  std::size_t under20 = 0;
  std::size_t owners = 0;
  for (const Subscriber* s : w.pop.of_segment(Segment::kWearableOwner)) {
    ++owners;
    EXPECT_GE(s->wearable_apps.size(), 1u);
    EXPECT_LE(s->wearable_apps.size(), w.apps.size());
    std::set<appdb::AppId> distinct(s->wearable_apps.begin(),
                                    s->wearable_apps.end());
    EXPECT_EQ(distinct.size(), s->wearable_apps.size());
    total += static_cast<double>(s->wearable_apps.size());
    if (s->wearable_apps.size() < 20) ++under20;
  }
  EXPECT_NEAR(total / static_cast<double>(owners), 8.0, 3.0);
  EXPECT_GT(static_cast<double>(under20) / static_cast<double>(owners), 0.85);
}

TEST(Population, MobilityAnchorsAreValidSectors) {
  World w;
  const auto max_sector =
      static_cast<trace::SectorId>(w.geo.sectors().size());
  for (const Subscriber& s : w.pop.subscribers()) {
    EXPECT_GE(s.home_sector, 1u);
    EXPECT_LE(s.home_sector, max_sector);
    EXPECT_GE(s.work_sector, 1u);
    EXPECT_LE(s.work_sector, max_sector);
    EXPECT_FALSE(s.errand_sectors.empty());
    EXPECT_GT(s.mobility_level, 0.0);
  }
}

TEST(Population, OwnersRoamFartherOnAverage) {
  World w;
  util::OnlineStats owner_mob;
  util::OnlineStats control_mob;
  for (const Subscriber& s : w.pop.subscribers()) {
    if (s.segment == Segment::kWearableOwner) owner_mob.add(s.mobility_level);
    if (s.segment == Segment::kControl) control_mob.add(s.mobility_level);
  }
  EXPECT_GT(owner_mob.mean(), control_mob.mean() * 1.5);
}

TEST(Population, DeterministicForEqualSeeds) {
  World a;
  World b;
  ASSERT_EQ(a.pop.subscribers().size(), b.pop.subscribers().size());
  for (std::size_t i = 0; i < a.pop.subscribers().size(); ++i) {
    const Subscriber& sa = a.pop.subscribers()[i];
    const Subscriber& sb = b.pop.subscribers()[i];
    EXPECT_EQ(sa.user_id, sb.user_id);
    EXPECT_EQ(sa.wearable_tac, sb.wearable_tac);
    EXPECT_EQ(sa.home_sector, sb.home_sector);
    EXPECT_EQ(sa.wearable_apps, sb.wearable_apps);
    EXPECT_DOUBLE_EQ(sa.engagement, sb.engagement);
  }
}

TEST(SubscriberStruct, WearableAliveWindow) {
  Subscriber s;
  s.segment = Segment::kWearableOwner;
  s.adoption_day = 10;
  s.churn_day = 100;
  EXPECT_FALSE(s.wearable_alive(9));
  EXPECT_TRUE(s.wearable_alive(10));
  EXPECT_TRUE(s.wearable_alive(99));
  EXPECT_FALSE(s.wearable_alive(100));
  s.segment = Segment::kControl;
  EXPECT_FALSE(s.wearable_alive(50));
}

}  // namespace
}  // namespace wearscope::simnet
