// Unit tests for the descriptive-statistics helpers.
#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::util {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10 + i;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, EmptyAndClamping) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> v = {5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 2.0), 5.0);
}

TEST(Quantile, UnsortedConvenience) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(median({9.0, 1.0, 5.0}), 5.0);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(EcdfTest, AtAndQuantile) {
  Ecdf e({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.5);
  EXPECT_EQ(e.size(), 4u);
}

TEST(EcdfTest, Empty) {
  Ecdf e;
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 0.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0, 2.0);  // bin 2 with weight 2
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_count(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  const auto norm = h.normalized();
  EXPECT_NEAR(norm[0], 2.0 / 6.0, 1e-12);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(ShannonEntropy, KnownValues) {
  // Uniform over 4 outcomes -> 2 bits.
  EXPECT_NEAR(shannon_entropy(std::vector<double>{1, 1, 1, 1}), 2.0, 1e-12);
  // Degenerate -> 0 bits.
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>{1.0, 0.0}), 0.0);
  // Empty / non-positive -> 0.
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>{0.0, -1.0}), 0.0);
  // (1/2, 1/4, 1/4) -> 1.5 bits.
  EXPECT_NEAR(shannon_entropy(std::vector<double>{2, 1, 1}), 1.5, 1e-12);
}

TEST(ShannonEntropy, ScaleInvariant) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30};
  EXPECT_NEAR(shannon_entropy(a), shannon_entropy(b), 1e-12);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> ny = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(pearson(x, y), ConfigError);
}

TEST(FractionalRanks, TiesGetMidRank) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const auto r = fractional_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(BinnedRelationTest, EqualPopulationBuckets) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i);
  }
  const BinnedRelation rel = binned_relation(x, y, 10);
  ASSERT_EQ(rel.x_centers.size(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(rel.n[b], 10u);
    EXPECT_NEAR(rel.y_means[b], 2.0 * rel.x_centers[b], 1e-9);
  }
  // Buckets ordered by x.
  for (std::size_t b = 1; b < 10; ++b)
    EXPECT_GT(rel.x_centers[b], rel.x_centers[b - 1]);
}

TEST(BinnedRelationTest, EmptyAndZeroBuckets) {
  EXPECT_TRUE(binned_relation({}, {}, 4).x_centers.empty());
  const std::vector<double> x = {1.0};
  EXPECT_TRUE(binned_relation(x, x, 0).x_centers.empty());
}

}  // namespace
}  // namespace wearscope::util
