// Tests for the release-safe anonymization pass: identifiers become
// unlinkable across keys but joinable within one key, and every analysis
// still works on the anonymized capture.
#include "trace/anonymize.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "simnet/simulator.h"
#include "util/error.h"

namespace wearscope::trace {
namespace {

TEST(AnonymizeUserId, StableWithinKeyDistinctAcrossKeys) {
  EXPECT_EQ(anonymize_user_id(42, 7), anonymize_user_id(42, 7));
  EXPECT_NE(anonymize_user_id(42, 7), anonymize_user_id(42, 8));
  EXPECT_NE(anonymize_user_id(42, 7), anonymize_user_id(43, 7));
  // The mapping must not be the identity.
  EXPECT_NE(anonymize_user_id(42, 7), 42u);
}

TEST(AnonymizeUserId, InjectiveOnRealisticIdRange) {
  std::unordered_set<UserId> seen;
  for (UserId id = 1'000'000; id < 1'050'000; ++id) {
    ASSERT_TRUE(seen.insert(anonymize_user_id(id, 99)).second)
        << "collision at " << id;
  }
}

TEST(Anonymize, RewritesIdsHostsPathsAndTimes) {
  TraceStore store;
  ProxyRecord p;
  p.timestamp = 3723;  // 01:02:03
  p.user_id = 5;
  p.tac = 1;
  p.host = "api.weather.com";
  p.url_path = "/v1/secret?user=5";
  p.bytes_down = 100;
  store.proxy.push_back(p);
  store.mme.push_back({3724, 5, 1, MmeEvent::kAttach, 9});

  AnonymizePolicy policy;
  policy.key = 1234;
  policy.time_quantum_s = 60;
  anonymize(store, policy);

  EXPECT_EQ(store.proxy[0].user_id, anonymize_user_id(5, 1234));
  EXPECT_EQ(store.proxy[0].user_id, store.mme[0].user_id)
      << "joinability across vantage points must survive";
  EXPECT_EQ(store.proxy[0].host, "weather.com");
  EXPECT_TRUE(store.proxy[0].url_path.empty());
  EXPECT_EQ(store.proxy[0].timestamp, 3720);  // floored to the minute
  EXPECT_EQ(store.mme[0].timestamp, 3720);
  EXPECT_EQ(store.proxy[0].bytes_down, 100u);  // volumes untouched
  EXPECT_EQ(store.mme[0].sector_id, 9u);       // infrastructure untouched
}

TEST(Anonymize, PolicyTogglesRespected) {
  TraceStore store;
  ProxyRecord p;
  p.timestamp = 100;
  p.user_id = 5;
  p.host = "api.weather.com";
  p.url_path = "/x";
  store.proxy.push_back(p);

  AnonymizePolicy policy;
  policy.coarsen_hosts = false;
  policy.drop_url_paths = false;
  anonymize(store, policy);
  EXPECT_EQ(store.proxy[0].host, "api.weather.com");
  EXPECT_EQ(store.proxy[0].url_path, "/x");
  EXPECT_EQ(store.proxy[0].timestamp, 100);  // quantum 1 keeps exact times
}

TEST(Anonymize, RejectsBadQuantum) {
  TraceStore store;
  AnonymizePolicy policy;
  policy.time_quantum_s = 0;
  EXPECT_THROW(anonymize(store, policy), util::ConfigError);
}

TEST(Anonymize, FullPipelineStillPassesOnAnonymizedCapture) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 11;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  TraceStore anon = sim.store;
  AnonymizePolicy policy;
  policy.key = 0xFEED;
  anonymize(anon, policy);

  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::Pipeline pipeline(anon, opt);
  const core::StudyReport report = pipeline.run();

  // The registrable-domain fallback keeps most traffic attributable, but
  // shared platforms (googleapis.com serves Maps, Pay, Street-View, ...)
  // become irreducibly ambiguous once hosts are coarsened.
  EXPECT_LT(report.apps.unknown_traffic_fraction, 0.45);
  // ...and the headline adoption statistics are identity-independent.
  const core::Pipeline original(sim.store, opt);
  const core::StudyReport base = original.run();
  EXPECT_EQ(report.adoption.ever_registered, base.adoption.ever_registered);
  EXPECT_DOUBLE_EQ(report.adoption.ever_transacting_fraction,
                   base.adoption.ever_transacting_fraction);
  EXPECT_DOUBLE_EQ(report.comparison.data_ratio, base.comparison.data_ratio);
}

}  // namespace
}  // namespace wearscope::trace
