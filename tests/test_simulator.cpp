// Integration tests of the full synthetic-ISP simulation.
#include "simnet/simulator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::simnet {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  static const SimResult& result() {
    static const SimResult res = [] {
      SimConfig cfg = SimConfig::small();
      cfg.seed = 77;
      return Simulator(cfg).run();
    }();
    return res;
  }
};

TEST_F(SimulatorTest, StoreIsSortedAndPopulated) {
  const SimResult& r = result();
  EXPECT_TRUE(r.store.is_sorted());
  EXPECT_FALSE(r.store.proxy.empty());
  EXPECT_FALSE(r.store.mme.empty());
  EXPECT_FALSE(r.store.devices.empty());
  EXPECT_FALSE(r.store.sectors.empty());
}

TEST_F(SimulatorTest, AllRecordUsersExistInPopulation) {
  const SimResult& r = result();
  std::unordered_set<trace::UserId> ids;
  for (const Subscriber& s : r.subscribers) ids.insert(s.user_id);
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    ASSERT_TRUE(ids.contains(rec.user_id));
  }
  for (const trace::MmeRecord& rec : r.store.mme) {
    ASSERT_TRUE(ids.contains(rec.user_id));
  }
}

TEST_F(SimulatorTest, TimestampsWithinObservationWindow) {
  const SimResult& r = result();
  const util::SimTime end = util::day_start(r.observation_days);
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    EXPECT_GE(rec.timestamp, 0);
    EXPECT_LT(rec.timestamp, end);
  }
}

TEST_F(SimulatorTest, PhoneTrafficOnlyInDetailedWindow) {
  const SimResult& r = result();
  std::unordered_set<trace::Tac> wearable_tacs;
  for (const Subscriber& s : r.subscribers) {
    if (s.wearable_tac != 0) wearable_tacs.insert(s.wearable_tac);
  }
  const util::SimTime detailed = util::day_start(r.detailed_start_day);
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    if (!wearable_tacs.contains(rec.tac)) {
      EXPECT_GE(rec.timestamp, detailed)
          << "phone traffic must not precede the detailed window";
    }
  }
}

TEST_F(SimulatorTest, WearableTrafficSpansFullWindow) {
  const SimResult& r = result();
  std::unordered_set<trace::Tac> wearable_tacs;
  for (const Subscriber& s : r.subscribers) {
    if (s.wearable_tac != 0) wearable_tacs.insert(s.wearable_tac);
  }
  bool early = false;
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    if (wearable_tacs.contains(rec.tac) &&
        rec.timestamp < util::day_start(r.detailed_start_day)) {
      early = true;
      break;
    }
  }
  EXPECT_TRUE(early) << "adoption analysis needs five months of wearable logs";
}

TEST_F(SimulatorTest, ControlUsersNeverEmitWearableTraffic) {
  const SimResult& r = result();
  std::unordered_set<trace::UserId> control;
  std::unordered_set<trace::Tac> wearable_tacs;
  for (const Subscriber& s : r.subscribers) {
    if (s.segment == Segment::kControl) control.insert(s.user_id);
    if (s.wearable_tac != 0) wearable_tacs.insert(s.wearable_tac);
  }
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    if (control.contains(rec.user_id)) {
      EXPECT_FALSE(wearable_tacs.contains(rec.tac));
    }
  }
}

TEST_F(SimulatorTest, ChurnedUsersGoDark) {
  const SimResult& r = result();
  std::unordered_set<trace::Tac> wearable_tacs;
  for (const Subscriber& s : r.subscribers) {
    if (s.wearable_tac != 0) wearable_tacs.insert(s.wearable_tac);
  }
  for (const Subscriber& s : r.subscribers) {
    if (s.churn_day >= (1 << 30)) continue;
    for (const trace::MmeRecord& rec : r.store.mme) {
      if (rec.user_id == s.user_id && wearable_tacs.contains(rec.tac)) {
        EXPECT_LT(util::day_of(rec.timestamp), s.churn_day);
      }
    }
  }
}

TEST_F(SimulatorTest, MmeSectorsExistInSectorDb) {
  const SimResult& r = result();
  for (const trace::MmeRecord& rec : r.store.mme) {
    ASSERT_TRUE(r.store.find_sector(rec.sector_id).has_value());
  }
}

TEST(Simulator, DeterministicForEqualConfigs) {
  SimConfig cfg = SimConfig::small();
  cfg.wearable_users = 40;
  cfg.control_users = 60;
  cfg.through_device_users = 10;
  cfg.seed = 5;
  const SimResult a = Simulator(cfg).run();
  const SimResult b = Simulator(cfg).run();
  ASSERT_EQ(a.store.proxy.size(), b.store.proxy.size());
  ASSERT_EQ(a.store.mme.size(), b.store.mme.size());
  for (std::size_t i = 0; i < a.store.proxy.size(); ++i) {
    ASSERT_EQ(a.store.proxy[i], b.store.proxy[i]);
  }
  for (std::size_t i = 0; i < a.store.mme.size(); ++i) {
    ASSERT_EQ(a.store.mme[i], b.store.mme[i]);
  }
}

TEST(Simulator, ThreadCountDoesNotChangeTheTrace) {
  SimConfig cfg = SimConfig::small();
  cfg.wearable_users = 60;
  cfg.control_users = 90;
  cfg.through_device_users = 15;
  cfg.seed = 9;
  cfg.threads = 1;
  const SimResult serial = Simulator(cfg).run();
  for (const std::uint32_t threads : {2u, 4u, 7u}) {
    cfg.threads = threads;
    const SimResult parallel = Simulator(cfg).run();
    ASSERT_EQ(parallel.store.proxy.size(), serial.store.proxy.size())
        << threads << " threads";
    ASSERT_EQ(parallel.store.mme.size(), serial.store.mme.size());
    for (std::size_t i = 0; i < serial.store.proxy.size(); ++i) {
      ASSERT_EQ(parallel.store.proxy[i], serial.store.proxy[i])
          << "record " << i << " with " << threads << " threads";
    }
    for (std::size_t i = 0; i < serial.store.mme.size(); ++i) {
      ASSERT_EQ(parallel.store.mme[i], serial.store.mme[i]);
    }
  }
}

TEST(Simulator, DifferentSeedsProduceDifferentTraces) {
  SimConfig cfg = SimConfig::small();
  cfg.wearable_users = 40;
  cfg.control_users = 60;
  cfg.through_device_users = 10;
  cfg.seed = 5;
  const SimResult a = Simulator(cfg).run();
  cfg.seed = 6;
  const SimResult b = Simulator(cfg).run();
  EXPECT_NE(a.store.proxy.size(), b.store.proxy.size());
}

TEST(Simulator, RejectsInvalidConfig) {
  SimConfig cfg = SimConfig::small();
  cfg.detailed_days = 13;  // not a multiple of 7
  EXPECT_THROW(Simulator{cfg}, util::ConfigError);
  cfg = SimConfig::small();
  cfg.wearable_users = 0;
  EXPECT_THROW(Simulator{cfg}, util::ConfigError);
  cfg = SimConfig::small();
  cfg.detailed_days = cfg.observation_days + 7;
  EXPECT_THROW(Simulator{cfg}, util::ConfigError);
}

TEST(SimConfig, PresetsValidate) {
  EXPECT_NO_THROW(SimConfig::small().validate());
  EXPECT_NO_THROW(SimConfig::standard().validate());
  EXPECT_NO_THROW(SimConfig::paper().validate());
}

}  // namespace
}  // namespace wearscope::simnet
