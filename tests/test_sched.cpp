// The deterministic-interleaving gate (ctest label: sched).
//
// Exhaustively enumerates the bounded schedules of the ring close-races
// and the 2-shard live barrier scenario, runs seeded random walks over
// the full live+serve path, and proves the harness can actually catch
// bugs: a seeded lost-update mutation must be FOUND, and its printed
// schedule must replay deterministically from the decision string alone.
//
// Walk budget: WEARSCOPE_SCHED_WALKS overrides the per-model random-walk
// count (tools/check.sh --full raises it); WEARSCOPE_TEST_SEED overrides
// the base seed for reproduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "sched/explorer.h"
#include "sched/models.h"
#include "sched/trace.h"
#include "test_support.h"

namespace wearscope::sched {
namespace {

/// Per-model random-walk budget (>= 250 so the suite total clears 1000).
std::size_t walk_budget() {
  const char* env = std::getenv("WEARSCOPE_SCHED_WALKS");
  if (env == nullptr || *env == '\0') return 250;
  return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
}

/// Asserts a completed, all-passing exhaustive enumeration.
void expect_exhaustive_pass(const Model& model, int bound,
                            std::size_t max_schedules,
                            std::size_t* schedules_out = nullptr) {
  ExhaustOptions opt;
  opt.preemption_bound = bound;
  opt.max_schedules = max_schedules;
  const ExploreStats stats = exhaust(model, opt);
  EXPECT_FALSE(stats.budget_exhausted)
      << "enumeration hit the " << max_schedules << "-schedule budget";
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
  EXPECT_GT(stats.schedules, 1u);
  if (schedules_out != nullptr) *schedules_out = stats.schedules;
}

TEST(SchedExplorer, RingTransferExhaustive) {
  expect_exhaustive_pass(ring_transfer_model(4, 2), /*bound=*/2, 60000);
}

TEST(SchedExplorer, RingTransferRendezvousCapacityOne) {
  // capacity 1 degenerates into a rendezvous buffer: every element takes
  // the park/wake path in some schedule.
  expect_exhaustive_pass(ring_transfer_model(3, 1), /*bound=*/2, 60000);
}

// Satellite: close() racing a (possibly parked) producer — no element
// lost or double-delivered, rejected accounts for the remainder.
TEST(SchedExplorer, RingCloseVsProducerExhaustive) {
  expect_exhaustive_pass(ring_close_producer_model(), /*bound=*/2, 60000);
}

// Satellite: close() racing a (possibly parked) consumer — the buffered
// element is drained exactly once and the consumer terminates.
TEST(SchedExplorer, RingCloseVsConsumerExhaustive) {
  expect_exhaustive_pass(ring_close_consumer_model(), /*bound=*/2, 60000);
}

// Satellite: a query racing eviction in a retain=1 store — checksums
// intact, publish_seq monotone, held references survive eviction.
TEST(SchedExplorer, StorePublishReadExhaustive) {
  expect_exhaustive_pass(store_publish_read_model(1, 3), /*bound=*/2,
                         120000);
}

// The tentpole acceptance scenario: exhaustive bounded enumeration of the
// 2-shard ring/barrier pipeline at preemption bound 2, with the
// independence reduction actually pruning commuting cross-shard branches.
TEST(SchedExplorer, LiveBarrierExhaustiveBound2) {
  ExhaustOptions opt;
  opt.preemption_bound = 2;
  opt.max_schedules = 150000;
  const ExploreStats stats = exhaust(live_barrier_model(), opt);
  EXPECT_FALSE(stats.budget_exhausted);
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
  EXPECT_GT(stats.schedules, 10u);
  EXPECT_GT(stats.pruned_independent, 0u)
      << "cross-shard operations should commute";
}

// Without the independence reduction the same enumeration must still pass
// (the reduction only skips equivalent schedules, never distinct ones) —
// on a scenario small enough to afford the unreduced tree.
TEST(SchedExplorer, ReductionOnlySkipsEquivalentSchedules) {
  ExhaustOptions reduced;
  reduced.preemption_bound = 1;
  ExhaustOptions full = reduced;
  full.independence_reduction = false;
  const ExploreStats with_red = exhaust(ring_close_consumer_model(), reduced);
  const ExploreStats without = exhaust(ring_close_consumer_model(), full);
  ASSERT_TRUE(with_red.passed()) << with_red.failure->format();
  ASSERT_TRUE(without.passed()) << without.failure->format();
  EXPECT_LE(with_red.schedules, without.schedules);
}

TEST(SchedExplorer, LiveServeRandomWalks) {
  const std::uint64_t seed = testing::seed_or(0xD15C0);
  WEARSCOPE_SCOPED_SEED(seed);
  const ExploreStats stats =
      random_walks(live_serve_model(), seed, walk_budget());
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
  EXPECT_EQ(stats.schedules, walk_budget());
}

TEST(SchedExplorer, LiveBarrierRandomWalks) {
  const std::uint64_t seed = testing::seed_or(0xBA221E);
  WEARSCOPE_SCOPED_SEED(seed);
  const ExploreStats stats =
      random_walks(live_barrier_model(), seed, walk_budget());
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
}

TEST(SchedExplorer, StoreRandomWalks) {
  const std::uint64_t seed = testing::seed_or(0x570E);
  WEARSCOPE_SCOPED_SEED(seed);
  const ExploreStats stats =
      random_walks(store_publish_read_model(2, 4), seed, walk_budget());
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
}

TEST(SchedExplorer, RingRandomWalks) {
  const std::uint64_t seed = testing::seed_or(0x21C6);
  WEARSCOPE_SCOPED_SEED(seed);
  const ExploreStats stats =
      random_walks(ring_transfer_model(6, 2), seed, walk_budget());
  ASSERT_TRUE(stats.passed()) << stats.failure->format();
}

// The mutation test: a deliberately seeded lost-update race MUST be
// found, and the printed schedule must replay deterministically.
TEST(SchedExplorer, MutationIsFoundAndReplays) {
  ExhaustOptions opt;
  opt.preemption_bound = 2;
  const ExploreStats stats = exhaust(racy_counter_model(true), opt);
  ASSERT_TRUE(stats.failure.has_value())
      << "the seeded lost-update bug escaped " << stats.schedules
      << " explored schedules";
  const ScheduleTrace& found = *stats.failure;
  EXPECT_FALSE(found.failures.empty());
  EXPECT_FALSE(found.decisions.empty());

  // Round-trip the printed decision string — the replay recipe is text.
  const std::vector<int> decisions =
      parse_decisions(found.decision_string());
  ASSERT_EQ(decisions, found.decisions);

  // Replaying the decision string alone reproduces the identical failing
  // run: same steps, same threads, same failure message.
  const ScheduleTrace again = replay(racy_counter_model(true), decisions);
  EXPECT_FALSE(again.passed());
  ASSERT_EQ(again.failures.size(), found.failures.size());
  EXPECT_EQ(again.failures, found.failures);
  ASSERT_EQ(again.steps.size(), found.steps.size());
  for (std::size_t i = 0; i < found.steps.size(); ++i) {
    EXPECT_EQ(again.steps[i].thread, found.steps[i].thread) << "step " << i;
    EXPECT_EQ(again.steps[i].op, found.steps[i].op) << "step " << i;
    EXPECT_EQ(again.steps[i].obj, found.steps[i].obj) << "step " << i;
  }
  EXPECT_EQ(again.decision_string(), found.decision_string());
}

// The fixed variant of the same scenario passes every bounded schedule —
// the finding above is the bug, not harness noise.
TEST(SchedExplorer, FixedCounterPassesExhaustively) {
  expect_exhaustive_pass(racy_counter_model(false), /*bound=*/2, 60000);
}

TEST(SchedExplorer, TraceFormatCarriesReplayRecipe) {
  ExhaustOptions opt;
  opt.preemption_bound = 1;
  const ExploreStats stats = exhaust(racy_counter_model(true), opt);
  ASSERT_TRUE(stats.failure.has_value());
  const std::string text = stats.failure->format();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("decisions=" + stats.failure->decision_string()),
            std::string::npos);
  EXPECT_NE(text.find("lost update"), std::string::npos);
}

TEST(SchedTrace, DecisionStringRoundTrip) {
  ScheduleTrace trace;
  trace.decisions = {0, 2, 1, 0, 3};
  EXPECT_EQ(trace.decision_string(), "0.2.1.0.3");
  EXPECT_EQ(parse_decisions("0.2.1.0.3"), trace.decisions);
  EXPECT_TRUE(parse_decisions("").empty());
  EXPECT_THROW(parse_decisions("1..2"), util::Error);
  EXPECT_THROW(parse_decisions("1.x"), util::Error);
  EXPECT_THROW(parse_decisions("-1"), util::Error);
}

// The fixtures themselves: the walk fixture must carry a non-trivial
// chaos-injected quarantine, and the sequential references must differ
// between the mid cut and the full capture (the cut is real).
TEST(SchedModels, FixturesAreNonTrivial) {
  const LiveFixture& tiny = tiny_live_fixture();
  EXPECT_EQ(tiny.options.shards, 2u);
  EXPECT_EQ(tiny.feed.size(), 4u);
  EXPECT_EQ(tiny.final_expected.records, tiny.feed.size());

  const LiveFixture& walk = walk_live_fixture();
  EXPECT_TRUE(walk.quarantine.any());
  EXPECT_GT(walk.mid_cut, 0u);
  EXPECT_LT(walk.mid_cut, walk.feed.size());
  EXPECT_EQ(walk.mid_expected.records, walk.mid_cut);
  EXPECT_EQ(walk.final_expected.records, walk.feed.size());
  EXPECT_FALSE(
      snapshot_diff(walk.final_expected, walk.mid_expected).empty());
  EXPECT_TRUE(
      snapshot_diff(walk.final_expected, walk.final_expected).empty());
}

}  // namespace
}  // namespace wearscope::sched
