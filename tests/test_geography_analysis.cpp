// Tests for the spatial-adoption extension analysis.
#include "core/analysis_geography.h"

#include <gtest/gtest.h>

#include "core/context.h"
#include "simnet/simulator.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;
constexpr trace::Tac kPhoneTac = 35332008;

trace::TraceStore micro_store() {
  trace::TraceStore s;
  s.devices = {
      {kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {kPhoneTac, "iPhone 7", "Apple", "iOS"},
  };
  // Two sector clusters 200 km apart; sectors within a cluster 5 km apart.
  const util::GeoPoint city_a{40.0, -3.0};
  const util::GeoPoint city_b = util::destination(city_a, 90.0, 200.0);
  s.sectors = {
      {1, city_a},
      {2, util::destination(city_a, 0.0, 5.0)},
      {3, city_b},
      {4, util::destination(city_b, 0.0, 5.0)},
  };
  // User 1 (wearable owner) lives at sector 1: dwells there all day.
  const auto day_at = [&](trace::UserId u, trace::Tac tac, int day,
                          trace::SectorId home, trace::SectorId away) {
    s.mme.push_back({util::day_start(day) + 0, u, tac,
                     trace::MmeEvent::kAttach, home});
    s.mme.push_back({util::day_start(day) + 10 * 3600, u, tac,
                     trace::MmeEvent::kHandover, away});
    s.mme.push_back({util::day_start(day) + 12 * 3600, u, tac,
                     trace::MmeEvent::kHandover, home});
  };
  day_at(1, kWearTac, 20, 1, 2);
  day_at(2, kPhoneTac, 20, 2, 1);   // same cluster, phone-only user
  day_at(3, kPhoneTac, 20, 3, 4);   // other city
  s.sort_by_time();
  return s;
}

AnalysisContext micro_context(const trace::TraceStore& store) {
  AnalysisOptions o;
  o.observation_days = 28;
  o.detailed_start_day = 14;
  o.long_tail_apps = 10;
  return AnalysisContext(store, o);
}

TEST(GeographyAnalysis, ClustersSectorsAndAnchorsUsers) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const GeographyResult r = analyze_geography(ctx, 25.0);

  ASSERT_EQ(r.areas.size(), 2u);
  // Densest area first: cluster A holds users 1 (wearable) and 2.
  EXPECT_EQ(r.areas[0].users, 2u);
  EXPECT_EQ(r.areas[0].wearable_users, 1u);
  EXPECT_EQ(r.areas[0].sectors, 2u);
  EXPECT_DOUBLE_EQ(r.areas[0].adoption_rate(), 0.5);
  EXPECT_EQ(r.areas[1].users, 1u);
  EXPECT_EQ(r.areas[1].wearable_users, 0u);
  // Urban (= denser half) adoption 0.5, rural 0.
  EXPECT_DOUBLE_EQ(r.urban_adoption, 0.5);
  EXPECT_DOUBLE_EQ(r.rural_adoption, 0.0);
}

TEST(GeographyAnalysis, TightRadiusSplitsClusters) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const GeographyResult r = analyze_geography(ctx, 2.0);
  EXPECT_EQ(r.areas.size(), 4u);  // every sector its own area
}

TEST(GeographyAnalysis, EmptyStore) {
  trace::TraceStore store;
  store.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sort_by_time();
  const AnalysisContext ctx = micro_context(store);
  const GeographyResult r = analyze_geography(ctx);
  EXPECT_TRUE(r.areas.empty());
  EXPECT_DOUBLE_EQ(r.urban_adoption, 0.0);
}

TEST(GeographyAnalysis, SimulatedAdoptionIsSpatiallyUniform) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 37;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  AnalysisOptions o;
  o.observation_days = sim.observation_days;
  o.detailed_start_day = sim.detailed_start_day;
  o.long_tail_apps = cfg.long_tail_apps;
  const AnalysisContext ctx(sim.store, o);
  const GeographyResult r = analyze_geography(ctx);
  EXPECT_GE(r.areas.size(), 2u);
  EXPECT_GT(r.urban_adoption, 0.0);
  EXPECT_TRUE(figure_geography(r).all_pass());
  // Every subscriber with MME presence is anchored somewhere.
  std::size_t anchored = 0;
  for (const AreaStats& a : r.areas) anchored += a.users;
  EXPECT_GT(anchored, ctx.users().size() * 9 / 10);
}

}  // namespace
}  // namespace wearscope::core
