// Unit tests for the shared AnalysisContext indexing.
#include "core/context.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;   // Gear S3 frontier LTE
constexpr trace::Tac kPhoneTac = 35332008;  // iPhone 7

trace::TraceStore micro_store() {
  trace::TraceStore s;
  s.devices = {
      {kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {kPhoneTac, "iPhone 7", "Apple", "iOS"},
  };
  s.sectors = {{1, {40.0, -3.0}}, {2, {40.1, -3.0}}};

  const auto proxy = [](util::SimTime t, trace::UserId u, trace::Tac tac,
                        const char* host) {
    trace::ProxyRecord r;
    r.timestamp = t;
    r.user_id = u;
    r.tac = tac;
    r.host = host;
    r.bytes_down = 1000;
    return r;
  };
  // User 1: wearable owner with wearable + phone traffic.
  s.proxy.push_back(proxy(100, 1, kWearTac, "api.weather.com"));
  s.proxy.push_back(proxy(200, 1, kWearTac, "api.weather.com"));
  s.proxy.push_back(proxy(300, 1, kPhoneTac, "graph.facebook.com"));
  // User 2: phone only.
  s.proxy.push_back(proxy(150, 2, kPhoneTac, "api.twitter.com"));

  s.mme = {
      {50, 1, kWearTac, trace::MmeEvent::kAttach, 1},
      {250, 1, kPhoneTac, trace::MmeEvent::kHandover, 2},
      {60, 2, kPhoneTac, trace::MmeEvent::kAttach, 1},
  };
  s.sort_by_time();
  return s;
}

AnalysisOptions micro_options() {
  AnalysisOptions o;
  o.observation_days = 28;
  o.detailed_start_day = 0;
  o.long_tail_apps = 10;
  return o;
}

TEST(Context, GroupsUsersAndClassifiesWearables) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx(store, micro_options());
  EXPECT_EQ(ctx.users().size(), 2u);
  ASSERT_EQ(ctx.wearable_users().size(), 1u);
  ASSERT_EQ(ctx.other_users().size(), 1u);
  const UserView& owner = *ctx.wearable_users()[0];
  EXPECT_EQ(owner.user_id, 1u);
  EXPECT_EQ(owner.wearable_txns.size(), 2u);
  EXPECT_EQ(owner.phone_txns.size(), 1u);
  EXPECT_EQ(owner.mme.size(), 2u);
  EXPECT_EQ(ctx.other_users()[0]->user_id, 2u);
}

TEST(Context, AttributesAndSessionizesWearableTraffic) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx(store, micro_options());
  const UserView& owner = *ctx.wearable_users()[0];
  ASSERT_EQ(owner.wearable_classes.size(), 2u);
  EXPECT_EQ(ctx.signatures().app_name(owner.wearable_classes[0].app),
            "Weather");
  // Two transactions 100 s apart -> two usages under the 60 s rule.
  EXPECT_EQ(owner.usages.size(), 2u);
}

TEST(Context, FindUser) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx(store, micro_options());
  ASSERT_NE(ctx.find_user(1), nullptr);
  EXPECT_EQ(ctx.find_user(1)->user_id, 1u);
  EXPECT_EQ(ctx.find_user(99), nullptr);
}

TEST(Context, SectorAtUsesLatestEventAtOrBefore) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx(store, micro_options());
  const UserView& owner = *ctx.wearable_users()[0];
  EXPECT_EQ(ctx.sector_at(owner, 49), 1u);   // before first: clamps forward
  EXPECT_EQ(ctx.sector_at(owner, 50), 1u);
  EXPECT_EQ(ctx.sector_at(owner, 100), 1u);
  EXPECT_EQ(ctx.sector_at(owner, 250), 2u);
  EXPECT_EQ(ctx.sector_at(owner, 9999), 2u);
}

TEST(Context, SectorAtWithoutMme) {
  trace::TraceStore store = micro_store();
  store.mme.clear();
  const AnalysisContext ctx(store, micro_options());
  const UserView& owner = *ctx.wearable_users()[0];
  EXPECT_FALSE(ctx.sector_at(owner, 100).has_value());
}

TEST(Context, DetailedWindowHelpers) {
  const trace::TraceStore store = micro_store();
  AnalysisOptions o = micro_options();
  o.detailed_start_day = 14;
  const AnalysisContext ctx(store, o);
  EXPECT_EQ(ctx.detailed_start(), util::day_start(14));
  EXPECT_FALSE(ctx.in_detailed_window(util::day_start(13)));
  EXPECT_TRUE(ctx.in_detailed_window(util::day_start(14)));
  EXPECT_EQ(ctx.detailed_weeks(), 2);
}

TEST(Context, RequiresSortedStore) {
  trace::TraceStore store = micro_store();
  std::swap(store.proxy.front(), store.proxy.back());
  EXPECT_THROW(AnalysisContext(store, micro_options()), util::ConfigError);
}

TEST(Context, RejectsBadWindow) {
  const trace::TraceStore store = micro_store();
  AnalysisOptions o = micro_options();
  o.detailed_start_day = o.observation_days;
  EXPECT_THROW(AnalysisContext(store, o), util::ConfigError);
}

TEST(Context, SignatureCoverageOptionPropagates) {
  const trace::TraceStore store = micro_store();
  AnalysisOptions o = micro_options();
  o.signature_coverage = 0.0;
  const AnalysisContext ctx(store, o);
  EXPECT_EQ(ctx.signatures().rule_count(), 0u);
  // With no rules, all wearable traffic is unknown.
  const UserView& owner = *ctx.wearable_users()[0];
  for (const EndpointClass& c : owner.wearable_classes) {
    EXPECT_EQ(c.app, kUnknownApp);
  }
}

}  // namespace
}  // namespace wearscope::core
