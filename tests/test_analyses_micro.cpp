// Exact-value tests of every analysis on tiny hand-crafted traces.
//
// Each test constructs a micro TraceStore where the correct answer can be
// computed by hand, then checks the analysis reproduces it exactly — this
// pins down metric *definitions*, while the integration tests pin down the
// paper-level calibration.
#include <gtest/gtest.h>

#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "core/analysis_apps.h"
#include "core/analysis_categories.h"
#include "core/analysis_comparison.h"
#include "core/analysis_diurnal.h"
#include "core/analysis_mobility.h"
#include "core/analysis_thirdparty.h"
#include "core/analysis_throughdevice.h"
#include "core/analysis_usage.h"
#include "core/context.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;   // Gear S3 frontier LTE
constexpr trace::Tac kPhoneTac = 35332008;  // iPhone 7

/// Builder for micro traces.
class MicroTrace {
 public:
  MicroTrace() {
    store_.devices = {
        {kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
        {kPhoneTac, "iPhone 7", "Apple", "iOS"},
    };
    // Sector 1 at a reference point; 2 and 3 exactly 10 km / 50 km east.
    const util::GeoPoint base{40.0, -3.0};
    store_.sectors = {
        {1, base},
        {2, util::destination(base, 90.0, 10.0)},
        {3, util::destination(base, 90.0, 50.0)},
    };
  }

  void proxy(int day, int hour, int minute, int second, trace::UserId user,
             trace::Tac tac, const char* host, std::uint64_t bytes) {
    trace::ProxyRecord r;
    r.timestamp = util::day_start(day) + hour * 3600 + minute * 60 + second;
    r.user_id = user;
    r.tac = tac;
    r.host = host;
    r.bytes_up = bytes / 10;
    r.bytes_down = bytes - bytes / 10;
    store_.proxy.push_back(std::move(r));
  }

  void mme(int day, int hour, trace::UserId user, trace::Tac tac,
           trace::MmeEvent event, trace::SectorId sector) {
    store_.mme.push_back(
        {util::day_start(day) + hour * 3600, user, tac, event, sector});
  }

  /// Sorts the store and builds a context over it.  The returned context
  /// points into this MicroTrace, which must stay alive.
  AnalysisContext context(int observation_days, int detailed_start_day) {
    store_.sort_by_time();
    AnalysisOptions o;
    o.observation_days = observation_days;
    o.detailed_start_day = detailed_start_day;
    o.long_tail_apps = 10;
    return AnalysisContext(store_, o);
  }

  trace::TraceStore store_;
};

// ---- Fig. 2: adoption ------------------------------------------------------

TEST(MicroAdoption, RetentionAndTransactingFraction) {
  MicroTrace t;
  // user 1: registered all 28 days; user 2: first two weeks only (churn);
  // user 3: last week only (new adopter); user 4: all days + transacts.
  for (int d = 0; d < 28; ++d) {
    t.mme(d, 8, 1, kWearTac, trace::MmeEvent::kAttach, 1);
    if (d < 14) t.mme(d, 8, 2, kWearTac, trace::MmeEvent::kAttach, 1);
    if (d >= 21) t.mme(d, 8, 3, kWearTac, trace::MmeEvent::kAttach, 1);
    t.mme(d, 9, 4, kWearTac, trace::MmeEvent::kAttach, 1);
  }
  t.proxy(5, 10, 0, 0, 4, kWearTac, "api.weather.com", 1000);
  const AnalysisContext ctx = t.context(28, 14);
  const AdoptionResult r = analyze_adoption(ctx);

  EXPECT_EQ(r.ever_registered, 4u);
  EXPECT_EQ(r.ever_transacted, 1u);
  EXPECT_DOUBLE_EQ(r.ever_transacting_fraction, 0.25);
  // Daily counts: 3 for days 0-13, 2 for 14-20, 3 for 21-27.
  ASSERT_EQ(r.daily_registered_norm.size(), 28u);
  EXPECT_DOUBLE_EQ(r.daily_registered_norm[0], 1.0);
  EXPECT_DOUBLE_EQ(r.daily_registered_norm[15], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.daily_registered_norm[27], 1.0);
  EXPECT_DOUBLE_EQ(r.total_growth, 0.0);  // first wk avg == last wk avg
  // First week {1,2,4}, last week {1,3,4}: union 4, both 2.
  EXPECT_DOUBLE_EQ(r.still_active_share, 0.5);
  EXPECT_DOUBLE_EQ(r.gone_share, 0.25);
  EXPECT_DOUBLE_EQ(r.new_share, 0.25);
  EXPECT_NEAR(r.churned_of_initial, 1.0 / 3.0, 1e-12);
}

TEST(MicroAdoption, EmptyStore) {
  MicroTrace t;
  const AnalysisContext ctx = t.context(28, 14);
  const AdoptionResult r = analyze_adoption(ctx);
  EXPECT_EQ(r.ever_registered, 0u);
  EXPECT_DOUBLE_EQ(r.ever_transacting_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.still_active_share, 0.0);
}

// ---- Fig. 3a: diurnal -------------------------------------------------------

TEST(MicroDiurnal, HourProfilesAndWeekendSplit) {
  MicroTrace t;
  // Window: days 14-27 (2 weeks). Day 17 is a Monday (weekday), day 15 a
  // Saturday (weekend); day 0 of the window is a Friday.
  ASSERT_EQ(util::weekday_of_day(17), util::Weekday::kMonday);
  ASSERT_TRUE(util::is_weekend_day(15));
  // Weekday: user 1, two txns at 08h (1 KB each) on day 17.
  t.proxy(17, 8, 0, 0, 1, kWearTac, "api.weather.com", 1000);
  t.proxy(17, 8, 10, 0, 1, kWearTac, "api.weather.com", 1000);
  // Weekend: user 2, one txn at 20h (3 KB) on day 15.
  t.proxy(15, 20, 0, 0, 2, kWearTac, "api.weather.com", 3000);
  const AnalysisContext ctx = t.context(28, 14);
  const DiurnalResult r = analyze_diurnal(ctx);

  // Transactions: weekly total = 3/2 weeks = 1.5.
  // Weekday 08h: 2 txns over 10 weekdays -> 0.2/day; share = 0.2/1.5.
  EXPECT_NEAR(r.txns_weekday[8], 0.2 / 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.txns_weekday[20], 0.0);
  // Weekend 20h: 1 txn over 4 weekend days -> 0.25/day; share = 0.25/1.5.
  EXPECT_NEAR(r.txns_weekend[20], 0.25 / 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.txns_weekend[8], 0.0);

  // Data: weekly total = 5 KB / 2 weeks = 2.5 KB.
  EXPECT_NEAR(r.data_weekday[8], (2000.0 / 10.0) / 2500.0, 1e-9);
  EXPECT_NEAR(r.data_weekend[20], (3000.0 / 4.0) / 2500.0, 1e-9);

  // Active users: 2 user-days over 14 days; 2 user-weeks over 2 weeks
  // -> daily_active_fraction = (2/14) / (2/2).
  EXPECT_NEAR(r.daily_active_fraction, (2.0 / 14.0) / 1.0, 1e-9);

  // Day-of-week user-day spread: Mon has 1, Sat has 1, others 0 ->
  // min is 0, spread stays 0 (undefined on sparse micro traces).
  EXPECT_DOUBLE_EQ(r.day_of_week_spread, 0.0);
}

// ---- Fig. 3b/3c/3d: activity ----------------------------------------------

TEST(MicroActivity, DaysHoursAndTransactionSizes) {
  MicroTrace t;
  // User A (wearable): day 15 hours 10 (2 txns) and 11 (1 txn);
  //                    day 20 hour 9 (1 txn). Window: days 14-27 (2 weeks).
  t.proxy(15, 10, 0, 0, 1, kWearTac, "api.weather.com", 1000);
  t.proxy(15, 10, 0, 30, 1, kWearTac, "api.weather.com", 2000);
  t.proxy(15, 11, 5, 0, 1, kWearTac, "api.weather.com", 3000);
  t.proxy(20, 9, 0, 0, 1, kWearTac, "api.weather.com", 6000);
  // User B: day 15 hours 8,9,10 with 2 txns each.
  for (const int h : {8, 9, 10}) {
    t.proxy(15, h, 0, 0, 2, kWearTac, "api.accuweather.com", 1000);
    t.proxy(15, h, 0, 20, 2, kWearTac, "api.accuweather.com", 1000);
  }
  const AnalysisContext ctx = t.context(28, 14);
  const ActivityResult r = analyze_activity(ctx);

  // A: 2 active days / 2 weeks = 1.0; B: 1 day / 2 weeks = 0.5.
  ASSERT_EQ(r.active_days_per_week.size(), 2u);
  EXPECT_DOUBLE_EQ(r.mean_active_days, 0.75);
  // A: (2 hours + 1 hour)/2 days = 1.5; B: 3 hours.
  EXPECT_DOUBLE_EQ(r.mean_active_hours, 2.25);
  EXPECT_DOUBLE_EQ(r.frac_over_10h, 0.0);
  EXPECT_DOUBLE_EQ(r.frac_under_5h, 1.0);

  // Transaction sizes: {1,2,3,6}KB from A and 6x1KB from B.
  ASSERT_EQ(r.txn_size_bytes.size(), 10u);
  EXPECT_DOUBLE_EQ(r.mean_txn_bytes, 1800.0);
  EXPECT_DOUBLE_EQ(r.frac_txn_under_10kb, 1.0);

  // Hourly txn counts: A {2,1,1}, B {2,2,2}.
  ASSERT_EQ(r.hourly_txns_per_user.size(), 6u);
  EXPECT_DOUBLE_EQ(r.hourly_txns_per_user.quantile(1.0), 2.0);

  // Fig. 3d inputs: A (1.5 h, 4/3 txns/h), B (3 h, 2 txns/h) -> positive.
  EXPECT_NEAR(r.correlation, 1.0, 1e-9);
}

TEST(MicroActivity, IgnoresTrafficOutsideDetailedWindow) {
  MicroTrace t;
  t.proxy(2, 10, 0, 0, 1, kWearTac, "api.weather.com", 1000);  // pre-window
  t.proxy(15, 10, 0, 0, 1, kWearTac, "api.weather.com", 2000);
  const AnalysisContext ctx = t.context(28, 14);
  const ActivityResult r = analyze_activity(ctx);
  EXPECT_EQ(r.txn_size_bytes.size(), 1u);
  EXPECT_DOUBLE_EQ(r.mean_txn_bytes, 2000.0);
}

// ---- Fig. 4a/4b: comparison ------------------------------------------------

TEST(MicroComparison, RatiosAndShares) {
  MicroTrace t;
  // Owner (user 1): 2 wearable txns of 500 B + 2 phone txns of 49500 B.
  t.proxy(1, 10, 0, 0, 1, kWearTac, "api.weather.com", 500);
  t.proxy(2, 10, 0, 0, 1, kWearTac, "api.weather.com", 500);
  t.proxy(3, 10, 0, 0, 1, kPhoneTac, "graph.facebook.com", 49500);
  t.proxy(4, 10, 0, 0, 1, kPhoneTac, "graph.facebook.com", 49500);
  // Other (user 2): 1 phone txn of 50000 B.
  t.proxy(1, 12, 0, 0, 2, kPhoneTac, "api.twitter.com", 50000);
  const AnalysisContext ctx = t.context(14, 0);
  const ComparisonResult r = analyze_comparison(ctx);

  EXPECT_DOUBLE_EQ(r.data_ratio, 2.0);   // 100000 vs 50000
  EXPECT_DOUBLE_EQ(r.txn_ratio, 4.0);    // 4 vs 1
  ASSERT_EQ(r.wearable_share.size(), 1u);
  EXPECT_DOUBLE_EQ(r.median_wearable_share, 0.01);
  EXPECT_DOUBLE_EQ(r.frac_share_over_3pct, 0.0);
  // Normalized by the max user: owner 1.0, other 0.5.
  EXPECT_DOUBLE_EQ(r.owner_daily_bytes_norm.quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.other_daily_bytes_norm.quantile(1.0), 0.5);
}

// ---- Fig. 4c/4d: mobility ---------------------------------------------------

TEST(MicroMobility, DisplacementEntropySingleLocation) {
  MicroTrace t;
  // Owner (user 1): day 0 sectors 1 (08h) -> 2 (12h): 10 km; day 1 static.
  t.mme(0, 8, 1, kWearTac, trace::MmeEvent::kAttach, 1);
  t.mme(0, 12, 1, kWearTac, trace::MmeEvent::kHandover, 2);
  t.mme(1, 0, 1, kWearTac, trace::MmeEvent::kAttach, 1);
  // One wearable transaction at 13h on day 0: located at sector 2.
  t.proxy(0, 13, 0, 0, 1, kWearTac, "api.weather.com", 1000);
  // Control (user 2): static at sector 1 for two days.
  t.mme(0, 8, 2, kPhoneTac, trace::MmeEvent::kAttach, 1);
  t.mme(1, 8, 2, kPhoneTac, trace::MmeEvent::kAttach, 1);

  const AnalysisContext ctx = t.context(14, 0);
  const MobilityResult r = analyze_mobility(ctx);

  // Owner daily displacements: 10 km and 0 -> mean 5 km. Control: 0.
  EXPECT_NEAR(r.wearable_mean_km, 5.0, 0.01);
  EXPECT_NEAR(r.all_mean_km, 2.5, 0.01);
  EXPECT_NEAR(r.displacement_ratio, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(r.frac_under_30km, 1.0);

  // Owner dwell: s1 4h+24h=28h, s2 12h -> H(0.7, 0.3) = 0.8813 bits.
  EXPECT_NEAR(r.wearable_entropy_bits, 0.8813, 0.001);
  EXPECT_NEAR(r.all_entropy_bits, 0.8813 / 2.0, 0.001);
  EXPECT_NEAR(r.entropy_ratio, 2.0, 0.01);

  // The single wearable transaction maps to exactly one sector.
  EXPECT_DOUBLE_EQ(r.single_location_fraction, 1.0);
}

TEST(MicroMobility, EntropyNormAblationHelper) {
  MicroTrace t;
  // Dwell-weighted vs visit-count entropy differ when dwell is skewed:
  // 23 h at sector 1, 1 h at sector 2, one event each.
  t.mme(0, 0, 1, kWearTac, trace::MmeEvent::kAttach, 1);
  t.mme(0, 23, 1, kWearTac, trace::MmeEvent::kHandover, 2);
  const AnalysisContext ctx = t.context(14, 0);
  const UserView& u = *ctx.wearable_users()[0];
  const double dwell = user_location_entropy(ctx, u, EntropyNorm::kDwellWeighted);
  const double visits = user_location_entropy(ctx, u, EntropyNorm::kVisitCount);
  // Dwell weights: the 23h/0h split means sector 2 never accumulates dwell
  // within the day -> entropy 0; visit counts are 1:1 -> 1 bit.
  EXPECT_NEAR(visits, 1.0, 1e-9);
  EXPECT_LT(dwell, visits);
}

// ---- Fig. 5/6/7/8: apps, categories, usage, third parties -------------------

class MicroApps : public ::testing::Test {
 protected:
  void SetUp() override {
    // User 1: Weather usage day 0 (3 txns + 1 attributed ad txn),
    //         WhatsApp usage day 1 (2 txns).
    t_.proxy(0, 10, 0, 0, 1, kWearTac, "api.weather.com", 1000);
    t_.proxy(0, 10, 0, 30, 1, kWearTac, "api.weather.com", 1000);
    t_.proxy(0, 10, 1, 0, 1, kWearTac, "dsx.weather.com", 1000);
    t_.proxy(0, 10, 1, 20, 1, kWearTac, "pubads.doubleclick.net", 500);
    t_.proxy(1, 20, 0, 0, 1, kWearTac, "e1.whatsapp.net", 10000);
    t_.proxy(1, 20, 0, 40, 1, kWearTac, "mmg.whatsapp.net", 10000);
    // User 2: one Weather txn day 0.
    t_.proxy(0, 9, 0, 0, 2, kWearTac, "api.weather.com", 1000);
    ctx_ = std::make_unique<AnalysisContext>(t_.context(7, 0));
  }

  MicroTrace t_;
  std::unique_ptr<AnalysisContext> ctx_;
};

TEST_F(MicroApps, AppSharesAndPerUserStats) {
  const AppPopularityResult r = analyze_apps(*ctx_);
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_EQ(r.apps[0].name, "Weather");
  EXPECT_EQ(r.apps[1].name, "WhatsApp");
  // User-days: Weather 2 (u1d0, u2d0), WhatsApp 1 (u1d1).
  EXPECT_NEAR(r.apps[0].user_share_pct, 100.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.apps[1].user_share_pct, 100.0 / 3.0, 1e-9);
  // Txns: Weather 3 + 1 (attributed ad) + 1 = 5; WhatsApp 2.
  EXPECT_NEAR(r.apps[0].txn_share_pct, 100.0 * 5.0 / 7.0, 1e-9);
  // Every day ran exactly one app.
  EXPECT_DOUBLE_EQ(r.one_app_day_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_apps_per_user, 1.5);
  EXPECT_DOUBLE_EQ(r.frac_users_under_20, 1.0);
  EXPECT_DOUBLE_EQ(r.unknown_traffic_fraction, 0.0);
}

TEST_F(MicroApps, CategoryShares) {
  const CategoryResult r = analyze_categories(*ctx_);
  // Weather category: 2 user-days; Communication: 1.
  ASSERT_FALSE(r.by_users.empty());
  EXPECT_EQ(r.by_users[0].category, appdb::Category::kWeather);
  EXPECT_NEAR(r.by_users[0].user_share_pct, 100.0 * 2.0 / 3.0, 1e-9);
  EXPECT_EQ(r.user_rank[static_cast<std::size_t>(appdb::Category::kWeather)],
            0u);
  EXPECT_EQ(
      r.user_rank[static_cast<std::size_t>(appdb::Category::kCommunication)],
      1u);
}

TEST_F(MicroApps, PerUsageStats) {
  const UsageResult r = analyze_usage(*ctx_);
  ASSERT_EQ(r.apps.size(), 2u);
  // WhatsApp: 1 usage, 2 txns, 20 KB -> tops data per usage.
  EXPECT_EQ(r.apps[0].name, "WhatsApp");
  EXPECT_DOUBLE_EQ(r.apps[0].mean_txns_per_usage, 2.0);
  EXPECT_DOUBLE_EQ(r.apps[0].mean_kb_per_usage, 20.0);
  // Weather: usages u1 (4 txns incl. the ad, 3.5 KB) and u2 (1 txn, 1 KB).
  EXPECT_EQ(r.apps[1].name, "Weather");
  EXPECT_DOUBLE_EQ(r.apps[1].mean_txns_per_usage, 2.5);
  EXPECT_DOUBLE_EQ(r.apps[1].mean_kb_per_usage, 2.25);
}

TEST_F(MicroApps, ThirdPartyShares) {
  const ThirdPartyResult r = analyze_thirdparty(*ctx_);
  const auto& app =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kApplication)];
  const auto& ads =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kAdvertising)];
  // Txns: 6 application, 1 advertising.
  EXPECT_NEAR(app.txn_share_pct, 100.0 * 6.0 / 7.0, 1e-9);
  EXPECT_NEAR(ads.txn_share_pct, 100.0 / 7.0, 1e-9);
  // Data: app 24 KB, ads 0.5 KB -> ratio 48.
  EXPECT_NEAR(r.app_over_thirdparty_data, 48.0, 1e-9);
  // Users: application {1,2}, advertising {1}.
  EXPECT_NEAR(app.user_share_pct, 100.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(ads.user_share_pct, 100.0 / 3.0, 1e-9);
}

// ---- §6: through-device ------------------------------------------------------

TEST(MicroThroughDevice, DetectsCompanionTraffic) {
  MicroTrace t;
  // SIM-wearable owner for the comparison baseline.
  t.mme(0, 8, 1, kWearTac, trace::MmeEvent::kAttach, 1);
  t.proxy(0, 10, 0, 0, 1, kWearTac, "api.weather.com", 1000);
  t.proxy(0, 11, 0, 0, 1, kPhoneTac, "graph.facebook.com", 5000);
  // TD user 2: Fitbit sync traffic on the phone.
  t.mme(0, 8, 2, kPhoneTac, trace::MmeEvent::kAttach, 1);
  t.proxy(0, 12, 0, 0, 2, kPhoneTac, "api.fitbit.com", 3000);
  t.proxy(0, 13, 0, 0, 2, kPhoneTac, "android-cdn-api.fitbit.com", 2000);
  // Plain user 3: no companion traffic.
  t.proxy(0, 12, 0, 0, 3, kPhoneTac, "api.twitter.com", 4000);

  const AnalysisContext ctx = t.context(14, 0);
  const ThroughDeviceResult r = analyze_throughdevice(ctx);
  EXPECT_EQ(r.detected_users, 1u);
  ASSERT_EQ(r.per_signature.size(), 5u);
  EXPECT_EQ(r.per_signature[0], 1u);  // Fitbit
  EXPECT_EQ(r.per_signature[1], 0u);
  EXPECT_GT(r.daily_txn_ratio, 0.0);
}

}  // namespace
}  // namespace wearscope::core
