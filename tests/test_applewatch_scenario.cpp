// Tests for the Apple-Watch-launch what-if extension.
#include <gtest/gtest.h>

#include "core/analysis_adoption.h"
#include "core/context.h"
#include "core/device_id.h"
#include "simnet/simulator.h"
#include "util/error.h"

namespace wearscope {
namespace {

simnet::SimConfig scenario_config() {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 31;
  cfg.apple_watch_launch_day = cfg.observation_days / 2;
  cfg.launch_adoption_boost = 3.0;
  cfg.apple_watch_share = 0.6;
  return cfg;
}

TEST(AppleWatchScenario, DisabledByDefault) {
  const appdb::DeviceModelCatalog default_catalog;
  EXPECT_EQ(default_catalog.model_of_tac(
                appdb::DeviceModelCatalog::kAppleWatchTac),
            nullptr);
  const simnet::SimConfig cfg;
  EXPECT_EQ(cfg.apple_watch_launch_day, -1);
}

TEST(AppleWatchScenario, CatalogGainsTheWatchWhenEnabled) {
  const appdb::DeviceModelCatalog catalog(/*include_apple_watch=*/true);
  const appdb::DeviceModel* m =
      catalog.model_of_tac(appdb::DeviceModelCatalog::kAppleWatchTac);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->manufacturer, "Apple");
  EXPECT_EQ(m->device_class, appdb::DeviceClass::kSimWearable);
}

TEST(AppleWatchScenario, AppleWatchesOnlyAfterLaunch) {
  const simnet::SimConfig cfg = scenario_config();
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  std::size_t apple_owners = 0;
  for (const simnet::Subscriber& s : sim.subscribers) {
    if (s.wearable_tac == appdb::DeviceModelCatalog::kAppleWatchTac) {
      ++apple_owners;
      EXPECT_GE(s.adoption_day, cfg.apple_watch_launch_day);
    }
  }
  EXPECT_GT(apple_owners, 0u);
}

TEST(AppleWatchScenario, CuratedListDetectsTheWatchFromLogs) {
  const simnet::SimConfig cfg = scenario_config();
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  // The analysts' curated list (§3.2) already names the Apple Watch, so
  // the unchanged classifier must flag the new TAC.
  const core::DeviceClassifier classifier(sim.store.devices);
  EXPECT_TRUE(
      classifier.is_wearable(appdb::DeviceModelCatalog::kAppleWatchTac));
  bool seen_in_mme = false;
  for (const trace::MmeRecord& r : sim.store.mme) {
    if (r.tac == appdb::DeviceModelCatalog::kAppleWatchTac) {
      seen_in_mme = true;
      EXPECT_GE(util::day_of(r.timestamp), cfg.apple_watch_launch_day);
    }
  }
  EXPECT_TRUE(seen_in_mme);
}

TEST(AppleWatchScenario, GrowthAcceleratesAfterLaunch) {
  simnet::SimConfig base = scenario_config();
  base.apple_watch_launch_day = -1;  // status quo
  const simnet::SimResult sim_base = simnet::Simulator(base).run();
  const simnet::SimConfig launch = scenario_config();
  const simnet::SimResult sim_launch = simnet::Simulator(launch).run();

  const auto adoption = [](const simnet::SimResult& sim) {
    core::AnalysisOptions opt;
    opt.observation_days = sim.observation_days;
    opt.detailed_start_day = sim.detailed_start_day;
    opt.long_tail_apps = sim.config.long_tail_apps;
    const core::AnalysisContext ctx(sim.store, opt);
    return core::analyze_adoption(ctx);
  };
  const core::AdoptionResult before = adoption(sim_base);
  const core::AdoptionResult after = adoption(sim_launch);
  // Same subscriber count, but the in-window adopters concentrate after
  // the launch day: total measured growth must rise markedly.
  EXPECT_GT(after.total_growth, before.total_growth * 1.2);
}

TEST(AppleWatchScenario, ValidationGuards) {
  simnet::SimConfig cfg = scenario_config();
  cfg.apple_watch_launch_day = cfg.observation_days;  // beyond window
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = scenario_config();
  cfg.launch_adoption_boost = 0.5;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = scenario_config();
  cfg.apple_watch_share = 1.5;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

}  // namespace
}  // namespace wearscope
