// Unit tests for the v3 columnar on-disk format (trace/columnar_io):
// write/decode round trips for all four record types, dictionary coding,
// group chaining, layout probing, and bundle-level v3 save/load equality
// against v1/v2.  Hostile-input behaviour (truncation, CRC flips, dict
// damage) lives with the other fuzzers in test_fuzz_io.cpp.
#include "trace/columnar_io.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <functional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "par/task_pool.h"
#include "trace/bundle.h"
#include "util/error.h"

namespace wearscope::trace {
namespace {

std::vector<ProxyRecord> make_proxy(int n) {
  std::vector<ProxyRecord> rows;
  for (int i = 0; i < n; ++i) {
    ProxyRecord r;
    r.timestamp = 1000 + 7 * i;
    r.user_id = 1'000'000 + static_cast<UserId>(i % 97);
    r.tac = 35254208u + static_cast<Tac>(i % 11);
    r.protocol = i % 3 == 0 ? Protocol::kHttp : Protocol::kHttps;
    r.host = "host" + std::to_string(i % 23) + ".example.com";
    r.url_path = "/path/" + std::to_string(i);
    r.bytes_up = static_cast<std::uint64_t>(i) * 13;
    r.bytes_down = static_cast<std::uint64_t>(i) * 131 + 1;
    r.duration_ms = static_cast<std::uint32_t>(i % 5000);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<MmeRecord> make_mme(int n) {
  std::vector<MmeRecord> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({2000 + 3 * i, 2'000'000 + static_cast<UserId>(i % 53),
                    35254208u + static_cast<Tac>(i % 7),
                    static_cast<MmeEvent>(i % 4),
                    static_cast<SectorId>(i % 19)});
  }
  return rows;
}

/// Writes `records` as a v3 log and decodes the body back (optionally on
/// a pool), asserting zero corruption.
template <typename Record>
std::vector<Record> v3_round_trip(const std::vector<Record>& records,
                                  int threads = 1,
                                  BlockWriterOptions wopt = {}) {
  std::stringstream buf;
  const ColumnarWriteInfo info = write_columnar_log(buf, records, wopt);
  EXPECT_EQ(info.records, records.size());
  const std::string data = buf.str();
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data.data()), data.size());

  ColumnarLogDecode<Record> decode(bytes.subspan(8), /*lenient=*/false);
  EXPECT_TRUE(decode.dicts_ok());
  EXPECT_EQ(decode.total_records(), records.size());
  std::vector<Record> out;
  std::vector<std::function<void()>> batch;
  decode.schedule(out, batch);
  if (threads > 1) {
    par::TaskPool pool(threads);
    pool.run(std::move(batch));
  } else {
    for (const auto& task : batch) task();
  }
  EXPECT_EQ(decode.finalize(out), 0u);
  return out;
}

TEST(ColumnarIo, ProxyRoundTrip) {
  const std::vector<ProxyRecord> in = make_proxy(1000);
  EXPECT_EQ(v3_round_trip(in), in);
}

TEST(ColumnarIo, MmeRoundTrip) {
  const std::vector<MmeRecord> in = make_mme(1000);
  EXPECT_EQ(v3_round_trip(in), in);
}

TEST(ColumnarIo, DeviceAndSectorRoundTrip) {
  const std::vector<DeviceRecord> devices = {
      {35254208u, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {35332008u, "iPhone 7", "Apple", "iOS"},
  };
  EXPECT_EQ(v3_round_trip(devices), devices);
  const std::vector<SectorInfo> sectors = {
      {7, {40.123456, -3.654321}},
      {8, {40.2, -3.7}},
  };
  EXPECT_EQ(v3_round_trip(sectors), sectors);
}

TEST(ColumnarIo, EmptyLogRoundTrips) {
  EXPECT_TRUE(v3_round_trip(std::vector<ProxyRecord>{}).empty());
}

TEST(ColumnarIo, ThreadCountDoesNotChangeTheDecode) {
  const std::vector<ProxyRecord> in = make_proxy(5000);
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(v3_round_trip(in, threads), in) << "threads=" << threads;
  }
}

TEST(ColumnarIo, SmallGroupsChainCorrectly) {
  // Force many row groups; every group must decode independently (the
  // timestamp deltas restart per group).
  BlockWriterOptions wopt;
  wopt.max_block_records = 17;
  const std::vector<ProxyRecord> in = make_proxy(400);
  EXPECT_EQ(v3_round_trip(in, 4, wopt), in);
}

TEST(ColumnarIo, HeaderSaysVersionThree) {
  std::stringstream buf;
  (void)write_columnar_log(buf, make_proxy(3));
  const std::string data = buf.str();
  ASSERT_GE(data.size(), 8u);
  std::uint16_t version = 0;
  std::memcpy(&version, data.data() + 4, 2);
  EXPECT_EQ(version, kBinaryFormatV3);
}

TEST(ColumnarIo, DictionariesAreFirstAppearanceAndShared) {
  const std::vector<ProxyRecord> in = make_proxy(200);
  std::stringstream buf;
  (void)write_columnar_log(buf, in);
  const std::string data = buf.str();
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data.data()), data.size());
  ColumnarLogDecode<ProxyRecord> decode(bytes.subspan(8), false);
  const ColumnDicts& dicts = decode.dicts();
  // 23 distinct hosts, 11 distinct TACs, in first-appearance order.
  ASSERT_EQ(dicts.hosts.size(), 23u);
  ASSERT_EQ(dicts.tacs.size(), 11u);
  EXPECT_EQ(dicts.hosts[0], "host0.example.com");
  EXPECT_EQ(dicts.hosts[1], "host1.example.com");
  EXPECT_EQ(dicts.tacs[0], 35254208u);
  EXPECT_TRUE(dicts.sectors.empty());  // proxy logs carry no sectors
}

TEST(ColumnarIo, ScanSkipsImpossibleGroupHeader) {
  // record_count > byte_length is impossible (>= 1 byte per record per
  // column); the scan must skip the frame and keep going.
  std::stringstream buf;
  (void)write_columnar_log(buf, make_mme(10));
  std::string data = buf.str();
  const std::span<const std::byte> whole(
      reinterpret_cast<const std::byte*>(data.data()), data.size());
  ColumnarLogDecode<MmeRecord> probe(whole.subspan(8), false);
  ASSERT_EQ(probe.index().groups.size(), 1u);

  // The group chain starts after the header + 3 dict sections; corrupt
  // the record_count to something absurd.
  const std::size_t chain_off =
      data.size() - (kGroupHeaderBytes + probe.index().groups[0].byte_length);
  const std::uint32_t absurd = 0xffffffffu;
  std::memcpy(data.data() + chain_off, &absurd, 4);
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data.data()), data.size());
  const ColumnarLogDecode<MmeRecord> decode(bytes.subspan(8), true);
  EXPECT_EQ(decode.index().corrupt_blocks, 1u);
  EXPECT_EQ(decode.index().total_records, 0u);
  // Strict mode refuses the same damage loudly.
  EXPECT_THROW(ColumnarLogDecode<MmeRecord>(bytes.subspan(8), false),
               util::ParseError);
}

TEST(ColumnarIo, ProbeLayoutCountsDictsAndColumns) {
  const std::vector<ProxyRecord> in = make_proxy(500);
  std::stringstream buf;
  (void)write_columnar_log(buf, in);
  const std::string data = buf.str();
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data.data()), data.size());
  const ColumnarLayoutInfo layout =
      probe_columnar_layout<ProxyRecord>(bytes.subspan(8));
  EXPECT_EQ(layout.records, 500u);
  EXPECT_GE(layout.groups, 1u);
  EXPECT_EQ(layout.dict_hosts, 23u);
  EXPECT_EQ(layout.dict_tacs, 11u);
  EXPECT_EQ(layout.dict_sectors, 0u);
  EXPECT_GT(layout.dict_bytes, 0u);
  ASSERT_EQ(layout.column_bytes.size(), columnar_column_count<ProxyRecord>());
  std::uint64_t payload = 0;
  for (const std::uint64_t b : layout.column_bytes) {
    EXPECT_GT(b, 0u);
    payload += b;
  }
  // Compressed payload must be well under the raw row encoding; the
  // repetitive columns (hosts, TACs) shrink to ~1 byte per record.
  EXPECT_LT(payload, data.size());
}

TEST(ColumnarIo, BundleRoundTripsAcrossAllThreeVersions) {
  TraceStore store;
  store.proxy = make_proxy(800);
  store.mme = make_mme(800);
  store.devices = {{35254208u, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sectors = {{7, {40.1, -3.6}}};
  store.sort_by_time();

  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "wearscope_v3_bundle_test";
  std::filesystem::remove_all(base);

  TraceStore loaded[3];
  for (std::uint16_t version : {1, 2, 3}) {
    const std::filesystem::path dir = base / ("v" + std::to_string(version));
    save_bundle(store, dir, BundleFormat::kBinary, version);
    LoadOptions lopt;
    lopt.threads = 4;
    loaded[version - 1] = load_bundle(dir, lopt);
  }
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(loaded[v].proxy, store.proxy) << "v" << (v + 1);
    EXPECT_EQ(loaded[v].mme, store.mme) << "v" << (v + 1);
    EXPECT_EQ(loaded[v].devices, store.devices) << "v" << (v + 1);
    EXPECT_EQ(loaded[v].sectors, store.sectors) << "v" << (v + 1);
  }
  std::filesystem::remove_all(base);
}

TEST(ColumnarIo, AuditReportsColumnarLayout) {
  TraceStore store;
  store.proxy = make_proxy(300);
  store.mme = make_mme(300);
  store.devices = {{35254208u, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sectors = {{7, {40.1, -3.6}}};
  store.sort_by_time();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wearscope_v3_audit_test";
  std::filesystem::remove_all(dir);
  save_bundle(store, dir, BundleFormat::kBinary, kBinaryFormatV3);

  const std::vector<BundleLogAudit> audits = audit_bundle(dir);
  ASSERT_EQ(audits.size(), 4u);
  for (const BundleLogAudit& audit : audits) {
    EXPECT_EQ(audit.version, kBinaryFormatV3) << audit.stem;
    EXPECT_FALSE(audit.columnar.column_bytes.empty()) << audit.stem;
    EXPECT_EQ(audit.columnar.records, audit.records) << audit.stem;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wearscope::trace
