// Unit and equivalence tests for the always-on serving layer: query
// parsing/rendering, SnapshotStore publication + retention semantics,
// QueryEngine protocol behavior, the stdio/TCP front ends, and the
// epoch-equivalence gate — at EVERY published epoch, the served answers
// must equal the batch machinery run over the same stream prefix.
#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "serve/query.h"
#include "serve/reference.h"
#include "serve/server.h"
#include "serve/snapshot_store.h"
#include "simnet/simulator.h"

namespace wearscope::serve {
namespace {

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 33;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

live::LiveOptions options_for(const simnet::SimResult& sim,
                              std::size_t shards) {
  live::LiveOptions opt;
  opt.shards = shards;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  return opt;
}

/// Replays the shared capture, publishing every periodic snapshot plus the
/// final drain snapshot into `store`.
live::ReplayReport replay_into(SnapshotStore& store, std::size_t shards,
                               util::SimTime snapshot_every) {
  const simnet::SimResult& sim = capture();
  live::LiveEngine engine(sim.store.devices, options_for(sim, shards));
  live::ReplayOptions ropt;
  ropt.snapshot_every_s = snapshot_every;
  ropt.on_snapshot = [&store](live::LiveSnapshot snap) {
    store.publish(std::move(snap));
  };
  const live::ReplayReport report =
      live::FeedReplayer(sim.store, ropt).replay(engine);
  store.publish(engine.stop(), /*final_epoch=*/true);
  return report;
}

// --------------------------------------------------------------- parsing

TEST(ServeQueryParse, AcceptsEveryVerb) {
  EXPECT_EQ(parse_query("adoption").query->kind, QueryKind::kAdoption);
  EXPECT_EQ(parse_query("activity").query->kind, QueryKind::kActivity);
  EXPECT_EQ(parse_query("top-apps").query->kind, QueryKind::kTopApps);
  EXPECT_EQ(parse_query("sectors").query->kind, QueryKind::kSectors);
  EXPECT_EQ(parse_query("quarantine").query->kind, QueryKind::kQuarantine);
  EXPECT_EQ(parse_query("epochs").query->kind, QueryKind::kEpochs);
  EXPECT_EQ(parse_query("stats").query->kind, QueryKind::kStats);
  EXPECT_EQ(parse_query("help").query->kind, QueryKind::kHelp);
}

TEST(ServeQueryParse, TopKAndEpochSelectors) {
  const ParsedQuery k = parse_query("top-apps 25");
  ASSERT_TRUE(k.query.has_value());
  EXPECT_EQ(k.query->top_k, 25u);
  EXPECT_FALSE(k.query->epoch.has_value());

  const ParsedQuery e = parse_query("sectors 3 @17");
  ASSERT_TRUE(e.query.has_value());
  EXPECT_EQ(e.query->top_k, 3u);
  ASSERT_TRUE(e.query->epoch.has_value());
  EXPECT_EQ(*e.query->epoch, 17u);

  const ParsedQuery latest_default = parse_query("adoption @0");
  ASSERT_TRUE(latest_default.query.has_value());
  EXPECT_EQ(*latest_default.query->epoch, 0u);
}

TEST(ServeQueryParse, WhitespaceAndCommentsAreSilent) {
  EXPECT_FALSE(parse_query("").query.has_value());
  EXPECT_TRUE(parse_query("").error.empty());
  EXPECT_FALSE(parse_query("   \t ").query.has_value());
  EXPECT_TRUE(parse_query("   \t ").error.empty());
  EXPECT_FALSE(parse_query("# a comment").query.has_value());
  EXPECT_TRUE(parse_query("# a comment").error.empty());
}

TEST(ServeQueryParse, RejectsMalformedLines) {
  EXPECT_FALSE(parse_query("bogus").query.has_value());
  EXPECT_FALSE(parse_query("bogus").error.empty());
  EXPECT_FALSE(parse_query("adoption extra").query.has_value());
  EXPECT_FALSE(parse_query("top-apps 0").query.has_value());
  EXPECT_FALSE(parse_query("top-apps -3").query.has_value());
  EXPECT_FALSE(parse_query("adoption @").query.has_value());
  EXPECT_FALSE(parse_query("adoption @x").query.has_value());
  EXPECT_FALSE(parse_query("epochs @1").query.has_value());
}

// --------------------------------------------------------- snapshot store

TEST(SnapshotStore, PublishSwapsLatestAndRetainsWindow) {
  SnapshotStore store(3);
  EXPECT_EQ(store.latest(), nullptr);
  EXPECT_EQ(store.published(), 0u);
  EXPECT_EQ(store.capacity(), 3u);

  for (std::uint64_t e = 0; e < 5; ++e) {
    live::LiveSnapshot snap;
    snap.epoch = e;
    snap.records = 100 * (e + 1);
    store.publish(std::move(snap), /*final_epoch=*/e == 4);
  }
  EXPECT_EQ(store.published(), 5u);
  const SnapshotRef latest = store.latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->snap.epoch, 4u);
  EXPECT_TRUE(latest->final_epoch);
  EXPECT_EQ(latest->publish_seq, 5u);

  // Capacity 3: epochs 0 and 1 were evicted, 2..4 remain reachable.
  EXPECT_EQ(store.retained_epochs(), (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(store.at_epoch(0), nullptr);
  EXPECT_EQ(store.at_epoch(1), nullptr);
  ASSERT_NE(store.at_epoch(2), nullptr);
  EXPECT_EQ(store.at_epoch(2)->snap.records, 300u);
  EXPECT_EQ(store.at_epoch(99), nullptr);
}

TEST(SnapshotStore, EvictedEpochSurvivesWhileReferenced) {
  SnapshotStore store(1);
  live::LiveSnapshot first;
  first.epoch = 0;
  first.records = 1;
  store.publish(std::move(first));
  const SnapshotRef held = store.latest();

  live::LiveSnapshot second;
  second.epoch = 1;
  second.records = 2;
  store.publish(std::move(second));

  // The reader's reference keeps the retired epoch alive and intact.
  EXPECT_EQ(store.at_epoch(0), nullptr);
  EXPECT_EQ(held->snap.records, 1u);
  EXPECT_EQ(held->checksum,
            ServedSnapshot::fold(held->snap, held->publish_seq,
                                 held->final_epoch));
}

TEST(SnapshotStore, RetainOneKeepsExactlyTheNewestEpoch) {
  // The degenerate retention window: every publish evicts its
  // predecessor, so the historical surface is always exactly one epoch
  // deep and @epoch lookups age out immediately.
  SnapshotStore store(1);
  EXPECT_EQ(store.capacity(), 1u);
  for (std::uint64_t e = 0; e < 4; ++e) {
    live::LiveSnapshot snap;
    snap.epoch = e;
    snap.records = e + 1;
    store.publish(std::move(snap));
    EXPECT_EQ(store.retained_epochs(), (std::vector<std::uint64_t>{e}));
    ASSERT_NE(store.at_epoch(e), nullptr);
    EXPECT_EQ(store.at_epoch(e)->snap.records, e + 1);
    if (e > 0) EXPECT_EQ(store.at_epoch(e - 1), nullptr);
  }
  EXPECT_EQ(store.published(), 4u);
  ASSERT_NE(store.latest(), nullptr);
  EXPECT_EQ(store.latest()->snap.epoch, 3u);
}

TEST(QueryEngine, EvictedEpochLookupReportsNotRetained) {
  // An @epoch query for an epoch the retention window has already
  // dropped must fail loudly — not serve the wrong snapshot.
  SnapshotStore store(1);
  QueryEngine engine(store);
  for (std::uint64_t e = 0; e < 2; ++e) {
    live::LiveSnapshot snap;
    snap.epoch = e;
    store.publish(std::move(snap));
  }
  EXPECT_EQ(engine.answer("adoption @0"),
            "ERR epoch 0 not retained (see 'epochs')");
  EXPECT_EQ(engine.answer("adoption @1").rfind("OK adoption ", 0), 0u);
  EXPECT_EQ(engine.answer("epochs"),
            "OK epochs retained=1 capacity=1 published=2");
}

TEST(SnapshotStore, ChecksumCoversRowsAndScalars) {
  live::LiveSnapshot snap;
  snap.epoch = 7;
  snap.records = 1234;
  live::LiveSnapshot::SectorRow row;
  row.sector = 42;
  row.counter.events = 9;
  snap.sectors.push_back(row);
  const std::uint64_t base = ServedSnapshot::fold(snap, 1, false);
  EXPECT_NE(base, ServedSnapshot::fold(snap, 2, false));
  EXPECT_NE(base, ServedSnapshot::fold(snap, 1, true));
  snap.sectors[0].counter.events = 10;
  EXPECT_NE(base, ServedSnapshot::fold(snap, 1, false));
}

// ----------------------------------------------------------- query engine

TEST(QueryEngine, ErrorsBeforeFirstPublish) {
  SnapshotStore store;
  QueryEngine engine(store);
  EXPECT_EQ(engine.answer("adoption"), "ERR no snapshot published yet");
  EXPECT_EQ(engine.answer("top-apps 5 @3"),
            "ERR epoch 3 not retained (see 'epochs')");
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.answered, 0u);
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.no_snapshot, 2u);
}

TEST(QueryEngine, MetaQueriesAndCounters) {
  SnapshotStore store(8);
  QueryEngine engine(store);
  live::LiveSnapshot snap;
  snap.epoch = 5;
  store.publish(std::move(snap));

  EXPECT_EQ(engine.answer("epochs"),
            "OK epochs retained=5 capacity=8 published=1");
  EXPECT_EQ(engine.answer("help"), render_help());
  EXPECT_EQ(render_help().rfind("OK help ", 0), 0u);
  EXPECT_TRUE(engine.answer("# comment").empty());
  EXPECT_TRUE(engine.answer("").empty());
  const std::string err = engine.answer("wat");
  EXPECT_EQ(err.rfind("ERR ", 0), 0u) << err;

  // stats reflects everything answered so far, then counts itself.
  EXPECT_EQ(engine.answer("stats"),
            "OK stats answered=2 errors=1 no_snapshot=0 published=1");
  EXPECT_EQ(engine.stats().answered, 3u);
}

TEST(QueryEngine, HistoricalAnswersMatchDirectRendering) {
  SnapshotStore store(8);
  QueryEngine engine(store);
  replay_into(store, /*shards=*/2, /*snapshot_every=*/30 * util::kSecondsPerDay);

  const std::vector<std::uint64_t> epochs = store.retained_epochs();
  ASSERT_GE(epochs.size(), 2u);
  const SnapshotRef past = store.at_epoch(epochs.front());
  ASSERT_NE(past, nullptr);

  Query q;
  q.kind = QueryKind::kTopApps;
  q.top_k = 7;
  const std::string direct = render_snapshot_query(q, past->snap);
  const std::string via_engine =
      engine.answer("top-apps 7 @" + std::to_string(epochs.front()));
  EXPECT_EQ(via_engine, direct);
}

// ------------------------------------------------------------ front ends

TEST(LineServer, ServesStreamOneResponsePerQuery) {
  SnapshotStore store;
  QueryEngine engine(store);
  live::LiveSnapshot snap;
  snap.epoch = 0;
  snap.records = 50;
  store.publish(std::move(snap), /*final_epoch=*/true);

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("epochs\n# ignored\n\nquarantine\nbogus\n", in);
  std::rewind(in);

  LineServer server(engine);
  EXPECT_EQ(server.serve_stream(in, out), 3u);

  std::rewind(out);
  char buf[256];
  std::vector<std::string> lines;
  while (std::fgets(buf, sizeof(buf), out) != nullptr) lines.emplace_back(buf);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "OK epochs retained=0 capacity=64 published=1\n");
  EXPECT_EQ(lines[1].rfind("OK quarantine epoch=0 ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("ERR ", 0), 0u) << lines[2];
  std::fclose(in);
  std::fclose(out);
}

TEST(LineServer, TcpListenerAnswersAndStops) {
  SnapshotStore store;
  QueryEngine engine(store);
  live::LiveSnapshot snap;
  snap.epoch = 2;
  store.publish(std::move(snap));

  LineServer server(engine);
  server.start_listener(0);  // kernel-assigned port
  ASSERT_NE(server.bound_port(), 0u);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.bound_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "epochs\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[128];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    response.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(response, "OK epochs retained=2 capacity=64 published=1\n");
  ::close(fd);
  server.stop_listener();
  EXPECT_EQ(server.bound_port(), 0u);
  server.stop_listener();  // idempotent
}

// ------------------------------------------------------ epoch equivalence

// The tentpole gate: at EVERY published epoch, the served answers must be
// byte-identical to the batch machinery run over the same stream prefix —
// figures against core::Pipeline, tallies against the sequential
// reference replay.  Quarantine is all-zero here (clean capture), checked
// against a default QuarantineStats to keep the comparison honest.
TEST(ServeEquivalence, EveryEpochMatchesBatchOverSamePrefix) {
  const simnet::SimResult& sim = capture();
  SnapshotStore store(64);
  replay_into(store, /*shards=*/3,
              /*snapshot_every=*/30 * util::kSecondsPerDay);
  ASSERT_GE(store.published(), 3u);

  const live::LiveOptions opt = options_for(sim, 3);
  for (const std::uint64_t epoch : store.retained_epochs()) {
    const SnapshotRef served = store.at_epoch(epoch);
    ASSERT_NE(served, nullptr);
    const trace::TraceStore prefix =
        prefix_store(sim.store, served->snap.records);
    const std::vector<VerifyMismatch> mismatches = verify_responses(
        served->snap, prefix, opt, trace::QuarantineStats{}, /*top_k=*/10);
    for (const VerifyMismatch& m : mismatches) {
      ADD_FAILURE() << "epoch " << epoch << " query '" << m.query
                    << "'\n  serve: " << m.serve << "\n  batch: " << m.batch;
    }
  }
}

// Shard-count independence seen through the protocol: the rendered answer
// strings must be identical for any worker layout.
TEST(ServeEquivalence, AnswersIndependentOfShardCount) {
  const std::vector<std::string> queries = {
      "adoption", "activity", "top-apps 10", "sectors 10", "quarantine"};
  std::vector<std::string> baseline;
  for (const std::size_t shards : {1u, 4u}) {
    SnapshotStore store;
    QueryEngine engine(store);
    replay_into(store, shards, /*snapshot_every=*/0);
    std::vector<std::string> answers;
    answers.reserve(queries.size());
    for (const std::string& q : queries) answers.push_back(engine.answer(q));
    if (baseline.empty()) {
      baseline = answers;
    } else {
      EXPECT_EQ(answers, baseline) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace wearscope::serve
