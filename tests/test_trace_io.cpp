// Unit tests for binary/CSV trace serialization and bundle persistence.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>

#include <gtest/gtest.h>

#include "par/task_pool.h"
#include "trace/binary_io.h"
#include "trace/block_io.h"
#include "trace/bundle.h"
#include "trace/csv_io.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/mapped_file.h"

namespace wearscope::trace {
namespace {

ProxyRecord sample_proxy() {
  ProxyRecord r;
  r.timestamp = 123456;
  r.user_id = 1'000'042;
  r.tac = 35254208;
  r.protocol = Protocol::kHttp;
  r.host = "api.weather.com";
  r.url_path = "/v1/forecast?loc=x,y";
  r.bytes_up = 512;
  r.bytes_down = 4096;
  r.duration_ms = 250;
  return r;
}

MmeRecord sample_mme() {
  return MmeRecord{98765, 1'000'001, 35909306, MmeEvent::kHandover, 42};
}

DeviceRecord sample_device() {
  return DeviceRecord{35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"};
}

SectorInfo sample_sector() {
  return SectorInfo{7, {40.123456, -3.654321}};
}

template <typename Record>
Record binary_round_trip(const Record& in) {
  std::stringstream buf;
  {
    BinaryLogWriter<Record> w(buf);
    w.write(in);
    EXPECT_EQ(w.count(), 1u);
  }
  BinaryLogReader<Record> r(buf);
  Record out;
  EXPECT_TRUE(r.next(out));
  Record extra;
  EXPECT_FALSE(r.next(extra));
  return out;
}

TEST(BinaryIo, ProxyRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_proxy()), sample_proxy());
}

TEST(BinaryIo, MmeRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_mme()), sample_mme());
}

TEST(BinaryIo, DeviceRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_device()), sample_device());
}

TEST(BinaryIo, SectorRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_sector()), sample_sector());
}

TEST(BinaryIo, ManyRecordsPreserveOrder) {
  std::stringstream buf;
  BinaryLogWriter<ProxyRecord> w(buf);
  for (int i = 0; i < 500; ++i) {
    ProxyRecord r = sample_proxy();
    r.timestamp = i;
    r.host = "host" + std::to_string(i) + ".example";
    w.write(r);
  }
  BinaryLogReader<ProxyRecord> reader(buf);
  ProxyRecord r;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.timestamp, i);
    EXPECT_EQ(r.host, "host" + std::to_string(i) + ".example");
  }
  EXPECT_FALSE(reader.next(r));
}

TEST(BinaryIo, WrongMagicRejected) {
  std::stringstream buf;
  { BinaryLogWriter<MmeRecord> w(buf); }
  EXPECT_THROW(BinaryLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(BinaryIo, TruncatedRecordRejected) {
  std::stringstream buf;
  {
    BinaryLogWriter<ProxyRecord> w(buf);
    w.write(sample_proxy());
  }
  std::string data = buf.str();
  data.resize(data.size() - 3);  // chop the tail
  std::stringstream cut(data);
  BinaryLogReader<ProxyRecord> reader(cut);
  ProxyRecord r;
  EXPECT_THROW(reader.next(r), util::ParseError);
}

TEST(BinaryIo, EmptyStreamRejected) {
  std::stringstream buf;
  EXPECT_THROW(BinaryLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(BinaryIo, PrimitivesLittleEndian) {
  std::stringstream buf;
  BinaryEncoder enc(buf);
  enc.put_u32(0x01020304u);
  const std::string bytes = buf.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
  BinaryDecoder dec(buf);
  EXPECT_EQ(dec.get_u32(), 0x01020304u);
}

TEST(BinaryIo, NegativeTimestampSurvives) {
  ProxyRecord r = sample_proxy();
  r.timestamp = -42;
  EXPECT_EQ(binary_round_trip(r).timestamp, -42);
}

template <typename Record>
Record csv_round_trip(const Record& in) {
  std::stringstream buf;
  {
    CsvLogWriter<Record> w(buf);
    w.write(in);
  }
  CsvLogReader<Record> r(buf);
  Record out;
  EXPECT_TRUE(r.next(out));
  Record extra;
  EXPECT_FALSE(r.next(extra));
  return out;
}

TEST(CsvIo, ProxyRoundTrip) {
  EXPECT_EQ(csv_round_trip(sample_proxy()), sample_proxy());
}

TEST(CsvIo, MmeRoundTrip) { EXPECT_EQ(csv_round_trip(sample_mme()), sample_mme()); }

TEST(CsvIo, DeviceRoundTrip) {
  EXPECT_EQ(csv_round_trip(sample_device()), sample_device());
}

TEST(CsvIo, SectorRoundTripWithPrecision) {
  const SectorInfo out = csv_round_trip(sample_sector());
  EXPECT_EQ(out.sector_id, 7u);
  EXPECT_NEAR(out.position.lat_deg, 40.123456, 1e-6);
  EXPECT_NEAR(out.position.lon_deg, -3.654321, 1e-6);
}

TEST(CsvIo, FieldWithCommaSurvives) {
  ProxyRecord r = sample_proxy();
  r.url_path = "/search?q=a,b,c";
  EXPECT_EQ(csv_round_trip(r), r);
}

TEST(CsvIo, HeaderMismatchRejected) {
  std::stringstream buf;
  { CsvLogWriter<MmeRecord> w(buf); }
  EXPECT_THROW(CsvLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(CsvIo, MalformedRowRejected) {
  std::stringstream buf("timestamp,user_id,tac,event,sector_id\n1,2,3\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, BadNumberRejected) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\nabc,2,3,attach,4\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, BadEventNameRejected) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\n1,2,3,flying,4\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, SkipsBlankLinesAndCrLf) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\r\n\n1,2,3,attach,4\r\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.sector_id, 4u);
}

class BundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wearscope_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TraceStore make_store() {
    TraceStore s;
    s.proxy = {sample_proxy()};
    s.mme = {sample_mme()};
    s.devices = {sample_device()};
    s.sectors = {sample_sector()};
    return s;
  }

  std::filesystem::path dir_;
};

TEST_F(BundleTest, BinaryRoundTrip) {
  const TraceStore in = make_store();
  save_bundle(in, dir_, BundleFormat::kBinary);
  const TraceStore out = load_bundle(dir_);
  EXPECT_EQ(out.proxy, in.proxy);
  EXPECT_EQ(out.mme, in.mme);
  EXPECT_EQ(out.devices, in.devices);
  EXPECT_EQ(out.sectors, in.sectors);
}

TEST_F(BundleTest, CsvRoundTrip) {
  const TraceStore in = make_store();
  save_bundle(in, dir_, BundleFormat::kCsv);
  const TraceStore out = load_bundle(dir_);
  EXPECT_EQ(out.proxy, in.proxy);
  EXPECT_EQ(out.sectors, in.sectors);
}

TEST_F(BundleTest, MissingLogThrows) {
  save_bundle(make_store(), dir_, BundleFormat::kBinary);
  std::filesystem::remove(dir_ / "mme.bin");
  EXPECT_THROW(load_bundle(dir_), util::IoError);
}

TEST_F(BundleTest, MissingDirectoryThrows) {
  EXPECT_THROW(load_bundle(dir_ / "nonexistent"), util::IoError);
}

// ---------------------------------------------------------------------------
// Blocked v2 format (trace/block_io)
// ---------------------------------------------------------------------------

std::span<const std::byte> blob_bytes(const std::string& blob) {
  return std::as_bytes(std::span<const char>(blob.data(), blob.size()));
}

template <typename Record>
std::string v2_blob(const std::vector<Record>& records,
                    BlockWriterOptions options = {}) {
  std::ostringstream out;
  BlockLogWriter<Record> writer(out, options);
  for (const Record& r : records) writer.write(r);
  writer.finish();
  return out.str();
}

std::vector<ProxyRecord> many_proxy(std::size_t n) {
  std::vector<ProxyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProxyRecord r = sample_proxy();
    r.timestamp = static_cast<util::SimTime>(i * 13);
    r.user_id = 1'000'000 + i;
    r.host = "host" + std::to_string(i % 97) + ".example";
    r.url_path = i % 3 == 0 ? "" : "/p/" + std::to_string(i);
    r.bytes_down = i * 17 + 1;
    records.push_back(r);
  }
  return records;
}

TEST(TraceV2, Crc32MatchesKnownVectors) {
  // The standard check value for the reflected 0xEDB88320 polynomial with
  // the zlib init/final-xor convention.
  const std::string check = "123456789";
  EXPECT_EQ(util::crc32(blob_bytes(check)), 0xCBF43926u);
  EXPECT_EQ(util::crc32({}), 0u);
  // Incremental == one-shot, across every split point (exercises both the
  // 8-byte slicing loop and the byte-at-a-time tail).
  const std::string long_input(1023, 'w');
  const std::uint32_t whole = util::crc32(blob_bytes(long_input));
  for (const std::size_t split : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{500}}) {
    const std::uint32_t head =
        util::crc32_update(0, blob_bytes(long_input).subspan(0, split));
    EXPECT_EQ(util::crc32_update(head, blob_bytes(long_input).subspan(split)),
              whole)
        << "split " << split;
  }
}

TEST(TraceV2, RoundTripAllRecordTypes) {
  const std::vector<ProxyRecord> proxy = {sample_proxy()};
  const std::vector<MmeRecord> mme = {sample_mme()};
  const std::vector<DeviceRecord> devices = {sample_device()};
  const std::vector<SectorInfo> sectors = {sample_sector()};
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(v2_blob(proxy))), proxy);
  EXPECT_EQ(read_binary_log<MmeRecord>(blob_bytes(v2_blob(mme))), mme);
  EXPECT_EQ(read_binary_log<DeviceRecord>(blob_bytes(v2_blob(devices))),
            devices);
  EXPECT_EQ(read_binary_log<SectorInfo>(blob_bytes(v2_blob(sectors))),
            sectors);
}

TEST(TraceV2, MultiBlockPreservesOrderAndCounts) {
  const std::vector<ProxyRecord> records = many_proxy(1000);
  BlockWriterOptions options;
  options.max_block_records = 64;
  std::ostringstream out;
  BlockLogWriter<ProxyRecord> writer(out, options);
  for (const ProxyRecord& r : records) writer.write(r);
  writer.finish();
  writer.finish();  // idempotent
  EXPECT_EQ(writer.count(), records.size());
  EXPECT_GT(writer.block_count(), 1u);
  const std::string blob = out.str();
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(blob)), records);
  const BinaryLogInfo info = probe_binary_log<ProxyRecord>(blob_bytes(blob));
  EXPECT_EQ(info.version, kBinaryFormatV2);
  EXPECT_EQ(info.blocks, writer.block_count());
  EXPECT_EQ(info.records, records.size());
}

TEST(TraceV2, ParallelDecodeIsBitwiseIdentical) {
  const std::vector<ProxyRecord> records = many_proxy(2000);
  BlockWriterOptions options;
  options.max_block_records = 100;
  const std::string blob = v2_blob(records, options);
  const std::vector<ProxyRecord> sequential =
      read_binary_log<ProxyRecord>(blob_bytes(blob));
  EXPECT_EQ(sequential, records);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::TaskPool pool(threads);
    EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(blob), &pool),
              sequential)
        << threads << " threads";
  }
}

TEST(TraceV2, V1LogsReadableThroughSpanReader) {
  const std::vector<ProxyRecord> records = many_proxy(50);
  std::ostringstream out;
  BinaryLogWriter<ProxyRecord> writer(out);
  for (const ProxyRecord& r : records) writer.write(r);
  const std::string blob = out.str();
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(blob)), records);
  const BinaryLogInfo info = probe_binary_log<ProxyRecord>(blob_bytes(blob));
  EXPECT_EQ(info.version, 1);
  EXPECT_EQ(info.blocks, 0u);
  EXPECT_EQ(info.records, records.size());
}

TEST(TraceV2, V1StreamReaderRejectsV2WithHint) {
  std::stringstream buf(v2_blob(std::vector<ProxyRecord>{sample_proxy()}));
  EXPECT_THROW(BinaryLogReader<ProxyRecord> reader(buf), util::ParseError);
}

TEST(TraceV2, EmptyLogRoundTrips) {
  const std::string blob = v2_blob(std::vector<ProxyRecord>{});
  EXPECT_EQ(blob.size(), 8u);  // header only: no empty trailing block
  EXPECT_TRUE(read_binary_log<ProxyRecord>(blob_bytes(blob)).empty());
  const BinaryLogInfo info = probe_binary_log<ProxyRecord>(blob_bytes(blob));
  EXPECT_EQ(info.version, kBinaryFormatV2);
  EXPECT_EQ(info.blocks, 0u);
  EXPECT_EQ(info.records, 0u);
}

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wearscope_map_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void write_file(const std::string& content) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }

  std::filesystem::path path_;
};

TEST_F(MappedFileTest, AutoAndFallbackSeeSameBytes) {
  const std::string content = v2_blob(many_proxy(300));
  write_file(content);
  const util::MappedFile mapped(path_, util::MapMode::kAuto);
  const util::MappedFile copied(path_, util::MapMode::kReadWholeFile);
  EXPECT_FALSE(copied.mapped());
  ASSERT_EQ(mapped.size(), content.size());
  ASSERT_EQ(copied.size(), content.size());
  EXPECT_TRUE(std::equal(mapped.bytes().begin(), mapped.bytes().end(),
                         copied.bytes().begin()));
  EXPECT_EQ(read_binary_log<ProxyRecord>(mapped.bytes()),
            read_binary_log<ProxyRecord>(copied.bytes()));
}

TEST_F(MappedFileTest, EmptyFileYieldsEmptySpan) {
  write_file("");
  const util::MappedFile file(path_, util::MapMode::kAuto);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
}

TEST_F(MappedFileTest, MissingFileThrowsIoError) {
  EXPECT_THROW(util::MappedFile(path_, util::MapMode::kAuto), util::IoError);
}

// ---------------------------------------------------------------------------
// Parallel bundle loading
// ---------------------------------------------------------------------------

class BundleParallel : public BundleTest {
 protected:
  /// Big enough that every log spans several v2 blocks under the default
  /// writer options (4096 records/block).
  TraceStore make_big_store() {
    TraceStore s;
    s.proxy = many_proxy(10'000);
    for (std::size_t i = 0; i < 9'000; ++i) {
      MmeRecord r = sample_mme();
      r.timestamp = static_cast<util::SimTime>(i * 7);
      r.user_id = 1'000'000 + (i % 500);
      s.mme.push_back(r);
    }
    s.devices = {sample_device()};
    s.sectors = {sample_sector()};
    return s;
  }

  /// Flips one payload byte of the given v2 block of <dir>/proxy.bin.
  void corrupt_proxy_block(std::size_t block) {
    const std::filesystem::path bin = dir_ / "proxy.bin";
    std::string blob;
    {
      std::ifstream in(bin, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      blob = buf.str();
    }
    const BlockIndex index =
        scan_block_index(blob_bytes(blob).subspan(8), /*lenient=*/true);
    ASSERT_GT(index.frames.size(), block);
    blob[8 + index.frames[block].payload_offset] ^= 0x01;
    std::ofstream out(bin, std::ios::binary | std::ios::trunc);
    out << blob;
  }
};

TEST_F(BundleParallel, ThreadCountsProduceIdenticalStores) {
  const TraceStore in = make_big_store();
  save_bundle(in, dir_, BundleFormat::kBinary);
  const TraceStore sequential = load_bundle(dir_, LoadOptions{});
  EXPECT_EQ(sequential.proxy, in.proxy);
  EXPECT_EQ(sequential.mme, in.mme);
  for (const int threads : {2, 4, 8}) {
    LoadOptions options;
    options.threads = threads;
    const TraceStore parallel = load_bundle(dir_, options);
    EXPECT_EQ(parallel.proxy, sequential.proxy) << threads << " threads";
    EXPECT_EQ(parallel.mme, sequential.mme) << threads << " threads";
    EXPECT_EQ(parallel.devices, sequential.devices) << threads << " threads";
    EXPECT_EQ(parallel.sectors, sequential.sectors) << threads << " threads";
  }
}

TEST_F(BundleParallel, V2ParallelLoadMatchesV1SequentialLoad) {
  const TraceStore in = make_big_store();
  const std::filesystem::path v1_dir = dir_ / "v1";
  const std::filesystem::path v2_dir = dir_ / "v2";
  save_bundle(in, v1_dir, BundleFormat::kBinary, 1);
  save_bundle(in, v2_dir, BundleFormat::kBinary, kBinaryFormatV2);
  const TraceStore from_v1 = load_bundle(v1_dir, LoadOptions{});
  LoadOptions eight;
  eight.threads = 8;
  const TraceStore from_v2 = load_bundle(v2_dir, eight);
  EXPECT_EQ(from_v1.proxy, from_v2.proxy);
  EXPECT_EQ(from_v1.mme, from_v2.mme);
  EXPECT_EQ(from_v1.devices, from_v2.devices);
  EXPECT_EQ(from_v1.sectors, from_v2.sectors);
  EXPECT_EQ(from_v1.proxy, in.proxy);
}

TEST_F(BundleParallel, LenientAccountingIdenticalForEveryThreadCount) {
  save_bundle(make_big_store(), dir_, BundleFormat::kBinary);
  corrupt_proxy_block(1);
  QuarantineStats baseline;
  const TraceStore sequential = load_bundle(dir_, baseline, LoadOptions{});
  EXPECT_EQ(baseline.corrupt_blocks, 1u);
  EXPECT_EQ(baseline.total_dropped(), 1u);
  for (const int threads : {2, 4, 8}) {
    LoadOptions options;
    options.threads = threads;
    QuarantineStats q;
    const TraceStore parallel = load_bundle(dir_, q, options);
    EXPECT_TRUE(q == baseline) << threads << " threads";
    EXPECT_EQ(parallel.proxy, sequential.proxy) << threads << " threads";
    EXPECT_EQ(parallel.mme, sequential.mme) << threads << " threads";
  }
}

TEST_F(BundleParallel, MmapOffProducesSameStore) {
  save_bundle(make_big_store(), dir_, BundleFormat::kBinary);
  LoadOptions mapped;
  mapped.threads = 4;
  LoadOptions copied;
  copied.threads = 4;
  copied.use_mmap = false;
  const TraceStore a = load_bundle(dir_, mapped);
  const TraceStore b = load_bundle(dir_, copied);
  EXPECT_EQ(a.proxy, b.proxy);
  EXPECT_EQ(a.mme, b.mme);
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.sectors, b.sectors);
}

TEST_F(BundleTest, V1BundleRoundTrips) {
  const TraceStore in = make_store();
  save_bundle(in, dir_, BundleFormat::kBinary, 1);
  const TraceStore out = load_bundle(dir_);
  EXPECT_EQ(out.proxy, in.proxy);
  EXPECT_EQ(out.mme, in.mme);
  const std::vector<BundleLogAudit> audits = audit_bundle(dir_);
  ASSERT_EQ(audits.size(), 4u);
  for (const BundleLogAudit& a : audits) {
    EXPECT_EQ(a.version, 1);
    EXPECT_EQ(a.blocks, 0u);
    EXPECT_EQ(a.records, 1u);
  }
}

TEST_F(BundleTest, AuditReportsV2Layout) {
  save_bundle(make_store(), dir_, BundleFormat::kBinary);
  const std::vector<BundleLogAudit> audits = audit_bundle(dir_);
  ASSERT_EQ(audits.size(), 4u);
  EXPECT_EQ(audits[0].stem, "proxy");
  EXPECT_EQ(audits[0].file, "proxy.bin");
  for (const BundleLogAudit& a : audits) {
    EXPECT_EQ(a.version, kBinaryFormatV2);
    EXPECT_EQ(a.blocks, 1u);
    EXPECT_EQ(a.records, 1u);
  }
}

TEST_F(BundleTest, DualFormatWarnsAndPrefersBinary) {
  TraceStore binary_store = make_store();
  save_bundle(binary_store, dir_, BundleFormat::kBinary);
  // A stale CSV with DIFFERENT content sits next to the binary log.
  TraceStore csv_store = make_store();
  csv_store.proxy[0].host = "stale.example";
  save_bundle(csv_store, dir_ / "csv", BundleFormat::kCsv);
  std::filesystem::copy_file(dir_ / "csv" / "proxy.csv", dir_ / "proxy.csv");
  ::testing::internal::CaptureStderr();
  const TraceStore out = load_bundle(dir_);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("proxy.bin"), std::string::npos) << warning;
  EXPECT_NE(warning.find("proxy.csv"), std::string::npos) << warning;
  EXPECT_EQ(out.proxy, binary_store.proxy);  // binary wins
}

TEST_F(BundleTest, SaveErrorMentionsPathAndReason) {
  std::filesystem::create_directories(dir_ / "proxy.bin");
  try {
    save_bundle(make_store(), dir_, BundleFormat::kBinary);
    FAIL() << "expected IoError";
  } catch (const util::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("proxy.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot open for writing"), std::string::npos) << what;
    // errno context: the OS reason rides along in parentheses
    EXPECT_NE(what.find('('), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace wearscope::trace
