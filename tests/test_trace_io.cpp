// Unit tests for binary/CSV trace serialization and bundle persistence.
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "trace/binary_io.h"
#include "trace/bundle.h"
#include "trace/csv_io.h"
#include "util/error.h"

namespace wearscope::trace {
namespace {

ProxyRecord sample_proxy() {
  ProxyRecord r;
  r.timestamp = 123456;
  r.user_id = 1'000'042;
  r.tac = 35254208;
  r.protocol = Protocol::kHttp;
  r.host = "api.weather.com";
  r.url_path = "/v1/forecast?loc=x,y";
  r.bytes_up = 512;
  r.bytes_down = 4096;
  r.duration_ms = 250;
  return r;
}

MmeRecord sample_mme() {
  return MmeRecord{98765, 1'000'001, 35909306, MmeEvent::kHandover, 42};
}

DeviceRecord sample_device() {
  return DeviceRecord{35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"};
}

SectorInfo sample_sector() {
  return SectorInfo{7, {40.123456, -3.654321}};
}

template <typename Record>
Record binary_round_trip(const Record& in) {
  std::stringstream buf;
  {
    BinaryLogWriter<Record> w(buf);
    w.write(in);
    EXPECT_EQ(w.count(), 1u);
  }
  BinaryLogReader<Record> r(buf);
  Record out;
  EXPECT_TRUE(r.next(out));
  Record extra;
  EXPECT_FALSE(r.next(extra));
  return out;
}

TEST(BinaryIo, ProxyRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_proxy()), sample_proxy());
}

TEST(BinaryIo, MmeRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_mme()), sample_mme());
}

TEST(BinaryIo, DeviceRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_device()), sample_device());
}

TEST(BinaryIo, SectorRoundTrip) {
  EXPECT_EQ(binary_round_trip(sample_sector()), sample_sector());
}

TEST(BinaryIo, ManyRecordsPreserveOrder) {
  std::stringstream buf;
  BinaryLogWriter<ProxyRecord> w(buf);
  for (int i = 0; i < 500; ++i) {
    ProxyRecord r = sample_proxy();
    r.timestamp = i;
    r.host = "host" + std::to_string(i) + ".example";
    w.write(r);
  }
  BinaryLogReader<ProxyRecord> reader(buf);
  ProxyRecord r;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.timestamp, i);
    EXPECT_EQ(r.host, "host" + std::to_string(i) + ".example");
  }
  EXPECT_FALSE(reader.next(r));
}

TEST(BinaryIo, WrongMagicRejected) {
  std::stringstream buf;
  { BinaryLogWriter<MmeRecord> w(buf); }
  EXPECT_THROW(BinaryLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(BinaryIo, TruncatedRecordRejected) {
  std::stringstream buf;
  {
    BinaryLogWriter<ProxyRecord> w(buf);
    w.write(sample_proxy());
  }
  std::string data = buf.str();
  data.resize(data.size() - 3);  // chop the tail
  std::stringstream cut(data);
  BinaryLogReader<ProxyRecord> reader(cut);
  ProxyRecord r;
  EXPECT_THROW(reader.next(r), util::ParseError);
}

TEST(BinaryIo, EmptyStreamRejected) {
  std::stringstream buf;
  EXPECT_THROW(BinaryLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(BinaryIo, PrimitivesLittleEndian) {
  std::stringstream buf;
  BinaryEncoder enc(buf);
  enc.put_u32(0x01020304u);
  const std::string bytes = buf.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
  BinaryDecoder dec(buf);
  EXPECT_EQ(dec.get_u32(), 0x01020304u);
}

TEST(BinaryIo, NegativeTimestampSurvives) {
  ProxyRecord r = sample_proxy();
  r.timestamp = -42;
  EXPECT_EQ(binary_round_trip(r).timestamp, -42);
}

template <typename Record>
Record csv_round_trip(const Record& in) {
  std::stringstream buf;
  {
    CsvLogWriter<Record> w(buf);
    w.write(in);
  }
  CsvLogReader<Record> r(buf);
  Record out;
  EXPECT_TRUE(r.next(out));
  Record extra;
  EXPECT_FALSE(r.next(extra));
  return out;
}

TEST(CsvIo, ProxyRoundTrip) {
  EXPECT_EQ(csv_round_trip(sample_proxy()), sample_proxy());
}

TEST(CsvIo, MmeRoundTrip) { EXPECT_EQ(csv_round_trip(sample_mme()), sample_mme()); }

TEST(CsvIo, DeviceRoundTrip) {
  EXPECT_EQ(csv_round_trip(sample_device()), sample_device());
}

TEST(CsvIo, SectorRoundTripWithPrecision) {
  const SectorInfo out = csv_round_trip(sample_sector());
  EXPECT_EQ(out.sector_id, 7u);
  EXPECT_NEAR(out.position.lat_deg, 40.123456, 1e-6);
  EXPECT_NEAR(out.position.lon_deg, -3.654321, 1e-6);
}

TEST(CsvIo, FieldWithCommaSurvives) {
  ProxyRecord r = sample_proxy();
  r.url_path = "/search?q=a,b,c";
  EXPECT_EQ(csv_round_trip(r), r);
}

TEST(CsvIo, HeaderMismatchRejected) {
  std::stringstream buf;
  { CsvLogWriter<MmeRecord> w(buf); }
  EXPECT_THROW(CsvLogReader<ProxyRecord>{buf}, util::ParseError);
}

TEST(CsvIo, MalformedRowRejected) {
  std::stringstream buf("timestamp,user_id,tac,event,sector_id\n1,2,3\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, BadNumberRejected) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\nabc,2,3,attach,4\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, BadEventNameRejected) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\n1,2,3,flying,4\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  EXPECT_THROW(r.next(rec), util::ParseError);
}

TEST(CsvIo, SkipsBlankLinesAndCrLf) {
  std::stringstream buf(
      "timestamp,user_id,tac,event,sector_id\r\n\n1,2,3,attach,4\r\n");
  CsvLogReader<MmeRecord> r(buf);
  MmeRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.sector_id, 4u);
}

class BundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wearscope_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TraceStore make_store() {
    TraceStore s;
    s.proxy = {sample_proxy()};
    s.mme = {sample_mme()};
    s.devices = {sample_device()};
    s.sectors = {sample_sector()};
    return s;
  }

  std::filesystem::path dir_;
};

TEST_F(BundleTest, BinaryRoundTrip) {
  const TraceStore in = make_store();
  save_bundle(in, dir_, BundleFormat::kBinary);
  const TraceStore out = load_bundle(dir_);
  EXPECT_EQ(out.proxy, in.proxy);
  EXPECT_EQ(out.mme, in.mme);
  EXPECT_EQ(out.devices, in.devices);
  EXPECT_EQ(out.sectors, in.sectors);
}

TEST_F(BundleTest, CsvRoundTrip) {
  const TraceStore in = make_store();
  save_bundle(in, dir_, BundleFormat::kCsv);
  const TraceStore out = load_bundle(dir_);
  EXPECT_EQ(out.proxy, in.proxy);
  EXPECT_EQ(out.sectors, in.sectors);
}

TEST_F(BundleTest, MissingLogThrows) {
  save_bundle(make_store(), dir_, BundleFormat::kBinary);
  std::filesystem::remove(dir_ / "mme.bin");
  EXPECT_THROW(load_bundle(dir_), util::IoError);
}

TEST_F(BundleTest, MissingDirectoryThrows) {
  EXPECT_THROW(load_bundle(dir_ / "nonexistent"), util::IoError);
}

}  // namespace
}  // namespace wearscope::trace
