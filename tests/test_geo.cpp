// Unit tests for the geodesy helpers.
#include "util/geo.h"

#include <gtest/gtest.h>

namespace wearscope::util {
namespace {

TEST(Geo, ZeroDistance) {
  const GeoPoint p{40.0, -3.5};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Geo, OneDegreeLatitudeIsAbout111km) {
  const GeoPoint a{40.0, 0.0};
  const GeoPoint b{41.0, 0.0};
  EXPECT_NEAR(haversine_km(a, b), 111.19, 0.3);
}

TEST(Geo, OneDegreeLongitudeShrinksWithLatitude) {
  const GeoPoint eq_a{0.0, 0.0};
  const GeoPoint eq_b{0.0, 1.0};
  const GeoPoint mid_a{60.0, 0.0};
  const GeoPoint mid_b{60.0, 1.0};
  EXPECT_NEAR(haversine_km(eq_a, eq_b), 111.19, 0.3);
  EXPECT_NEAR(haversine_km(mid_a, mid_b), 111.19 / 2.0, 0.5);  // cos(60)=0.5
}

TEST(Geo, Symmetry) {
  const GeoPoint a{40.4, -3.7};  // Madrid-ish
  const GeoPoint b{41.4, 2.2};   // Barcelona-ish
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
  EXPECT_NEAR(haversine_km(a, b), 505.0, 15.0);  // known ~505 km
}

TEST(Geo, DestinationRoundTrip) {
  const GeoPoint origin{40.0, -3.5};
  for (const double bearing : {0.0, 45.0, 90.0, 180.0, 270.0}) {
    const GeoPoint dest = destination(origin, bearing, 25.0);
    EXPECT_NEAR(haversine_km(origin, dest), 25.0, 0.01);
  }
}

TEST(Geo, DestinationNorthIncreasesLatitude) {
  const GeoPoint origin{40.0, -3.5};
  const GeoPoint north = destination(origin, 0.0, 10.0);
  EXPECT_GT(north.lat_deg, origin.lat_deg);
  EXPECT_NEAR(north.lon_deg, origin.lon_deg, 1e-9);
  const GeoPoint east = destination(origin, 90.0, 10.0);
  EXPECT_GT(east.lon_deg, origin.lon_deg);
  EXPECT_NEAR(east.lat_deg, origin.lat_deg, 0.01);
}

TEST(Geo, TriangleInequalityHolds) {
  const GeoPoint a{40.0, -3.0};
  const GeoPoint b{41.0, -2.0};
  const GeoPoint c{42.0, -4.0};
  EXPECT_LE(haversine_km(a, c),
            haversine_km(a, b) + haversine_km(b, c) + 1e-9);
}

}  // namespace
}  // namespace wearscope::util
