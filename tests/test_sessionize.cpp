// Unit tests for usage sessionization (the 60-second-gap rule of §5.1).
#include "core/sessionize.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::core {
namespace {

trace::ProxyRecord rec(util::SimTime t, std::uint64_t bytes = 100) {
  trace::ProxyRecord r;
  r.timestamp = t;
  r.user_id = 7;
  r.host = "x.example";
  r.bytes_down = bytes;
  return r;
}

EndpointClass app(appdb::AppId id) {
  return EndpointClass{appdb::TransactionClass::kApplication, id};
}

std::vector<Usage> run(const std::vector<trace::ProxyRecord>& recs,
                       const std::vector<EndpointClass>& apps,
                       util::SimTime gap = kDefaultUsageGapS) {
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  return sessionize_user(ptrs, apps, gap);
}

TEST(Sessionize, SingleUsageWithinGap) {
  const auto usages = run({rec(0), rec(30), rec(59)},
                          {app(1), app(1), app(1)});
  ASSERT_EQ(usages.size(), 1u);
  EXPECT_EQ(usages[0].transactions, 3u);
  EXPECT_EQ(usages[0].bytes, 300u);
  EXPECT_EQ(usages[0].start, 0);
  EXPECT_EQ(usages[0].end, 59);
  EXPECT_EQ(usages[0].duration_s(), 59);
  EXPECT_EQ(usages[0].user_id, 7u);
  EXPECT_EQ(usages[0].app, 1u);
}

TEST(Sessionize, GapOverThresholdSplits) {
  const auto usages = run({rec(0), rec(61)}, {app(1), app(1)});
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].transactions, 1u);
  EXPECT_EQ(usages[1].start, 61);
}

TEST(Sessionize, GapExactlyAtThresholdDoesNotSplit) {
  // "at least one minute apart" splits; 60 s exactly keeps the usage.
  const auto usages = run({rec(0), rec(60)}, {app(1), app(1)});
  EXPECT_EQ(usages.size(), 1u);
}

TEST(Sessionize, DifferentAppsInterleaveWithoutSplitting) {
  const auto usages = run({rec(0), rec(10), rec(20), rec(30)},
                          {app(1), app(2), app(1), app(2)});
  ASSERT_EQ(usages.size(), 2u);
  // Sorted by start.
  EXPECT_EQ(usages[0].app, 1u);
  EXPECT_EQ(usages[0].transactions, 2u);
  EXPECT_EQ(usages[1].app, 2u);
  EXPECT_EQ(usages[1].transactions, 2u);
}

TEST(Sessionize, UnknownAppFormsItsOwnUsages) {
  const auto usages = run({rec(0), rec(10)}, {app(1), app(kUnknownApp)});
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[1].app, kUnknownApp);
}

TEST(Sessionize, CustomGap) {
  const auto tight = run({rec(0), rec(10)}, {app(1), app(1)}, 5);
  EXPECT_EQ(tight.size(), 2u);
  const auto loose = run({rec(0), rec(10)}, {app(1), app(1)}, 15);
  EXPECT_EQ(loose.size(), 1u);
}

TEST(Sessionize, EmptyInput) {
  EXPECT_TRUE(run({}, {}).empty());
}

TEST(Sessionize, SizeMismatchThrows) {
  const std::vector<trace::ProxyRecord> recs = {rec(0)};
  std::vector<const trace::ProxyRecord*> ptrs = {&recs[0]};
  EXPECT_THROW(sessionize_user(ptrs, {}, 60), util::ConfigError);
}

TEST(Sessionize, ManyUsagesSortedByStart) {
  std::vector<trace::ProxyRecord> recs;
  std::vector<EndpointClass> apps_v;
  for (int u = 0; u < 10; ++u) {
    recs.push_back(rec(u * 1000));
    recs.push_back(rec(u * 1000 + 20));
    apps_v.push_back(app(1));
    apps_v.push_back(app(1));
  }
  const auto usages = run(recs, apps_v);
  ASSERT_EQ(usages.size(), 10u);
  for (std::size_t i = 1; i < usages.size(); ++i) {
    EXPECT_GT(usages[i].start, usages[i - 1].start);
    EXPECT_EQ(usages[i].transactions, 2u);
  }
}

}  // namespace
}  // namespace wearscope::core
