// Robustness of the full pipeline on degenerate captures: empty logs,
// wearables-only, phones-only, single-user — every analysis must complete
// without crashing and return well-defined (zeroed) statistics.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;
constexpr trace::Tac kPhoneTac = 35332008;

trace::TraceStore base_store() {
  trace::TraceStore s;
  s.devices = {
      {kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {kPhoneTac, "iPhone 7", "Apple", "iOS"},
  };
  s.sectors = {{1, util::GeoPoint{40.0, -3.0}}};
  return s;
}

AnalysisOptions options() {
  AnalysisOptions o;
  o.observation_days = 28;
  o.detailed_start_day = 14;
  o.long_tail_apps = 10;
  return o;
}

TEST(PipelineRobustness, CompletelyEmptyLogs) {
  const trace::TraceStore store = base_store();
  const Pipeline pipeline(store, options());
  const StudyReport rep = pipeline.run();
  EXPECT_EQ(rep.figures.size(), 20u);
  EXPECT_EQ(rep.adoption.ever_registered, 0u);
  EXPECT_DOUBLE_EQ(rep.comparison.data_ratio, 0.0);
  EXPECT_DOUBLE_EQ(rep.mobility.wearable_mean_km, 0.0);
  EXPECT_TRUE(rep.apps.apps.empty());
  EXPECT_TRUE(rep.usage.apps.empty());
  EXPECT_TRUE(rep.cohorts.models.empty());
  EXPECT_TRUE(rep.retention.cohorts.empty());
  // Rendering must not crash either.
  EXPECT_FALSE(rep.to_text().empty());
}

TEST(PipelineRobustness, SingleWearableTransaction) {
  trace::TraceStore store = base_store();
  trace::ProxyRecord r;
  r.timestamp = util::day_start(20) + 3600;
  r.user_id = 1;
  r.tac = kWearTac;
  r.host = "api.weather.com";
  r.bytes_down = 1000;
  store.proxy.push_back(r);
  store.mme.push_back({util::day_start(20), 1, kWearTac,
                       trace::MmeEvent::kAttach, 1});
  store.sort_by_time();
  const Pipeline pipeline(store, options());
  const StudyReport rep = pipeline.run();
  EXPECT_EQ(rep.adoption.ever_registered, 1u);
  EXPECT_EQ(rep.adoption.ever_transacted, 1u);
  ASSERT_EQ(rep.apps.apps.size(), 1u);
  EXPECT_EQ(rep.apps.apps[0].name, "Weather");
  EXPECT_DOUBLE_EQ(rep.activity.mean_txn_bytes, 1000.0);
}

TEST(PipelineRobustness, PhonesOnlyCapture) {
  trace::TraceStore store = base_store();
  for (int d = 14; d < 28; ++d) {
    trace::ProxyRecord r;
    r.timestamp = util::day_start(d) + 7200;
    r.user_id = 5;
    r.tac = kPhoneTac;
    r.host = "graph.facebook.com";
    r.bytes_down = 50'000;
    store.proxy.push_back(r);
    store.mme.push_back({util::day_start(d), 5, kPhoneTac,
                         trace::MmeEvent::kAttach, 1});
  }
  store.sort_by_time();
  const Pipeline pipeline(store, options());
  const StudyReport rep = pipeline.run();
  EXPECT_EQ(rep.adoption.ever_registered, 0u);
  EXPECT_TRUE(rep.apps.apps.empty());
  // Mobility's "all users" side still sees the phone user.
  EXPECT_EQ(rep.mobility.all_displacement_km.size(), 1u);
}

TEST(PipelineRobustness, UnknownTacsDoNotCrash) {
  trace::TraceStore store = base_store();
  trace::ProxyRecord r;
  r.timestamp = util::day_start(20);
  r.user_id = 9;
  r.tac = 99999999;  // absent from the DeviceDB
  r.host = "mystery.example";
  r.bytes_down = 10;
  store.proxy.push_back(r);
  store.mme.push_back({util::day_start(20), 9, 99999999,
                       trace::MmeEvent::kAttach, 1});
  store.sort_by_time();
  const Pipeline pipeline(store, options());
  const StudyReport rep = pipeline.run();
  // Unknown devices classify as non-wearable: user 9 lands in "others".
  EXPECT_EQ(rep.adoption.ever_registered, 0u);
  EXPECT_EQ(pipeline.context().other_users().size(), 1u);
}

TEST(PipelineRobustness, MmeReferencingUnknownSector) {
  trace::TraceStore store = base_store();
  store.mme.push_back({util::day_start(20), 1, kWearTac,
                       trace::MmeEvent::kAttach, 777});  // no such sector
  store.sort_by_time();
  const Pipeline pipeline(store, options());
  // Displacement computation skips sectors it cannot locate.
  const StudyReport rep = pipeline.run();
  EXPECT_DOUBLE_EQ(rep.mobility.wearable_mean_km, 0.0);
}

}  // namespace
}  // namespace wearscope::core
