// Deterministic mutation fuzzing of the trace parsers: whatever bytes we
// throw at them, readers must either parse or throw util::ParseError —
// never crash, hang, or return garbage silently.  (Networking code rule
// one: the input is hostile.)
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "trace/binary_io.h"
#include "trace/block_io.h"
#include "trace/csv_io.h"
#include "util/error.h"
#include "util/rng.h"

namespace wearscope::trace {
namespace {

std::string valid_binary_log(std::size_t records) {
  std::ostringstream out;
  BinaryLogWriter<ProxyRecord> writer(out);
  for (std::size_t i = 0; i < records; ++i) {
    ProxyRecord r;
    r.timestamp = static_cast<util::SimTime>(i * 37);
    r.user_id = 1'000'000 + i;
    r.tac = 35254208;
    r.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
    r.host = "host" + std::to_string(i) + ".example";
    r.url_path = i % 2 == 0 ? "" : "/p/" + std::to_string(i);
    r.bytes_up = i * 11;
    r.bytes_down = i * 101 + 1;
    r.duration_ms = static_cast<std::uint32_t>(i + 1);
    writer.write(r);
  }
  return out.str();
}

/// Consumes the whole stream; returns records parsed before error/EOF.
template <typename Record>
std::size_t drain_binary(const std::string& blob) {
  std::istringstream in(blob);
  BinaryLogReader<Record> reader(in);  // may throw
  Record r;
  std::size_t n = 0;
  while (reader.next(r)) ++n;
  return n;
}

TEST(FuzzBinary, TruncationAtEveryOffsetIsHandled) {
  const std::string blob = valid_binary_log(8);
  for (std::size_t cut = 0; cut <= blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    try {
      const std::size_t n = drain_binary<ProxyRecord>(prefix);
      EXPECT_LE(n, 8u);
    } catch (const util::ParseError&) {
      // acceptable: truncated header or record
    }
  }
}

TEST(FuzzBinary, SingleByteFlipsNeverCrash) {
  const std::string blob = valid_binary_log(6);
  util::Pcg32 rng(0xF122);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    try {
      (void)drain_binary<ProxyRecord>(mutated);
    } catch (const util::ParseError&) {
      // expected for corrupted magic/length/enum bytes
    }
  }
}

TEST(FuzzBinary, RandomGarbageIsRejectedOrEmpty) {
  util::Pcg32 rng(0xBAD5EED);
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_int(0, 255));
    try {
      (void)drain_binary<MmeRecord>(garbage);
    } catch (const util::ParseError&) {
    }
  }
}

TEST(FuzzBinary, LengthPrefixBombIsBounded) {
  // A corrupted string length must fail with ParseError, not allocate
  // unbounded memory: the u16 prefix bounds strings to 64 KiB by design.
  std::ostringstream out;
  BinaryEncoder enc(out);
  enc.put_u32(0x57505258);  // proxy magic
  enc.put_u16(1);           // version
  enc.put_u16(0);
  enc.put_i64(1);           // timestamp
  enc.put_u64(2);           // user
  enc.put_u32(3);           // tac
  enc.put_u8(0);            // protocol
  enc.put_u16(0xFFFF);      // host length claims 65535 bytes...
  out << "short";           // ...but only 5 follow
  const std::string blob = out.str();
  EXPECT_THROW(drain_binary<ProxyRecord>(blob), util::ParseError);
}

TEST(FuzzCsv, MutatedRowsAreRejectedNotCrashing) {
  std::ostringstream out;
  {
    CsvLogWriter<MmeRecord> writer(out);
    for (int i = 0; i < 10; ++i) {
      writer.write({i * 60, static_cast<UserId>(100 + i), 35254208,
                    MmeEvent::kAttach, static_cast<SectorId>(i + 1)});
    }
  }
  const std::string blob = out.str();
  util::Pcg32 rng(0xC54F);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    std::istringstream in(mutated);
    try {
      CsvLogReader<MmeRecord> reader(in);
      MmeRecord r;
      while (reader.next(r)) {
      }
    } catch (const util::ParseError&) {
      // expected for corrupted headers/fields
    }
  }
}

TEST(FuzzCsv, ArbitraryTextLinesAreRejected) {
  util::Pcg32 rng(0x7E57);
  const std::string header = "timestamp,user_id,tac,event,sector_id\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string body;
    const auto lines = rng.uniform_int(0, 5);
    for (std::int64_t l = 0; l < lines; ++l) {
      const auto len = rng.uniform_int(0, 60);
      for (std::int64_t i = 0; i < len; ++i) {
        body += static_cast<char>(rng.uniform_int(32, 126));
      }
      body += '\n';
    }
    std::istringstream in(header + body);
    try {
      CsvLogReader<MmeRecord> reader(in);
      MmeRecord r;
      while (reader.next(r)) {
      }
    } catch (const util::ParseError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded chaos corpus: instead of blind mutation, aim structured faults at
// the binary layout via chaos::FaultPlan and hold the lenient reader to the
// corpus's own accounting promise (chaos::ByteFault::expected).
// ---------------------------------------------------------------------------

std::vector<ProxyRecord> sample_proxy(std::size_t n) {
  std::vector<ProxyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProxyRecord r;
    r.timestamp = static_cast<util::SimTime>(i * 37);
    r.user_id = 1'000'000 + i;
    r.tac = 35254208;
    r.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
    r.host = "host" + std::to_string(i) + ".example";
    r.url_path = i % 2 == 0 ? "" : "/p/" + std::to_string(i);
    r.bytes_up = i * 11;
    r.bytes_down = i * 101 + 1;
    r.duration_ms = static_cast<std::uint32_t>(i + 1);
    records.push_back(r);
  }
  return records;
}

std::vector<MmeRecord> sample_mme(std::size_t n) {
  std::vector<MmeRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back({static_cast<util::SimTime>(i * 60),
                       static_cast<UserId>(100 + i), 35254208,
                       i % 2 == 0 ? MmeEvent::kAttach : MmeEvent::kDetach,
                       static_cast<SectorId>(i + 1)});
  }
  return records;
}

template <typename Record>
void drive_corpus(const std::vector<Record>& sample, bool proxy_layout,
                  std::uint64_t seed) {
  const chaos::BinaryImage image = chaos::image_of(sample);
  const chaos::FaultPlan plan(seed, chaos::FaultProfile::named("io"));
  const std::vector<chaos::ByteFault> corpus =
      plan.byte_corpus(image, proxy_layout);
  ASSERT_FALSE(corpus.empty());

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const chaos::ByteFault& fault = corpus[i];
    std::istringstream in(fault.bytes);
    QuarantineStats q;
    std::vector<Record> got;
    // Lenient reads never throw — corruption lands in `q`, not exceptions.
    ASSERT_NO_THROW(got = read_binary_log_lenient<Record>(in, q))
        << "seed " << seed << " corpus entry " << i;
    if (fault.exact) {
      EXPECT_EQ(got.size(), fault.expected_survivors)
          << "seed " << seed << " corpus entry " << i;
      EXPECT_TRUE(q == fault.expected)
          << "seed " << seed << " corpus entry " << i;
    } else {
      // Bit flips only promise survival: no crash, no unbounded growth.
      EXPECT_LE(got.size(), sample.size())
          << "seed " << seed << " corpus entry " << i;
    }
  }
}

TEST(FuzzChaosCorpus, ProxyCorpusHonorsExactAccounting) {
  const std::vector<ProxyRecord> sample = sample_proxy(96);
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    drive_corpus(sample, /*proxy_layout=*/true, seed);
  }
}

TEST(FuzzChaosCorpus, MmeCorpusHonorsExactAccounting) {
  const std::vector<MmeRecord> sample = sample_mme(128);
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    drive_corpus(sample, /*proxy_layout=*/false, seed);
  }
}

// ---------------------------------------------------------------------------
// Blocked v2 frame corpus: corruption must stay block-granular.  Every test
// here asserts EXACT QuarantineStats accounting (one counted block per
// injected fault) and that the reader resyncs at the next frame header.
// ---------------------------------------------------------------------------

std::span<const std::byte> blob_bytes(const std::string& blob) {
  return std::as_bytes(std::span<const char>(blob.data(), blob.size()));
}

/// A v2 proxy log of `records` records in blocks of `block_records`.
std::string valid_v2_log(std::size_t records, std::size_t block_records) {
  std::ostringstream out;
  BlockWriterOptions options;
  options.max_block_records = block_records;
  BlockLogWriter<ProxyRecord> writer(out, options);
  for (const ProxyRecord& r : sample_proxy(records)) writer.write(r);
  writer.finish();
  return out.str();
}

/// Frame index of a complete v2 blob (file header included).
BlockIndex index_of(const std::string& blob) {
  return scan_block_index(blob_bytes(blob).subspan(8), /*lenient=*/true);
}

/// `sample` minus the records of block `skip` (order otherwise preserved).
std::vector<ProxyRecord> without_block(const std::vector<ProxyRecord>& sample,
                                       const BlockIndex& index,
                                       std::size_t skip) {
  std::vector<ProxyRecord> expect;
  std::size_t base = 0;
  for (std::size_t i = 0; i < index.frames.size(); ++i) {
    const std::size_t n = index.frames[i].record_count;
    if (i != skip) {
      expect.insert(expect.end(), sample.begin() + static_cast<long>(base),
                    sample.begin() + static_cast<long>(base + n));
    }
    base += n;
  }
  return expect;
}

TEST(FuzzV2, TruncationAtEveryOffsetHonorsBlockAccounting) {
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  ASSERT_EQ(index.frames.size(), 8u);
  // File offset where each frame ends, and records recovered up to it.
  std::vector<std::size_t> frame_end;
  std::vector<std::size_t> records_before;
  std::size_t total = 0;
  for (const BlockFrame& f : index.frames) {
    total += f.record_count;
    frame_end.push_back(8 + f.payload_offset + f.byte_length);
    records_before.push_back(total);
  }
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(prefix), q))
        << "cut " << cut;
    if (cut < 8) {
      // Not even a file header: the whole file quarantines as one unit.
      EXPECT_EQ(q.corrupt_files, 1u) << "cut " << cut;
      EXPECT_TRUE(got.empty()) << "cut " << cut;
      continue;
    }
    std::size_t complete = 0;
    bool on_boundary = cut == 8;
    for (std::size_t i = 0; i < frame_end.size(); ++i) {
      if (frame_end[i] <= cut) complete = records_before[i];
      if (frame_end[i] == cut) on_boundary = true;
    }
    // A cut on a frame boundary just looks like a shorter log; anywhere
    // else exactly ONE block is lost to the broken chain.
    EXPECT_EQ(got.size(), complete) << "cut " << cut;
    EXPECT_EQ(q.corrupt_blocks, on_boundary ? 0u : 1u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_files, 0u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_tails, 0u) << "cut " << cut;
  }
}

TEST(FuzzV2, CorruptCrcQuarantinesExactlyThatBlock) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (std::size_t k = 0; k < index.frames.size(); ++k) {
    std::string mutated = blob;
    mutated[8 + index.frames[k].payload_offset] ^= 0x01;
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(q.total_dropped(), 1u) << "block " << k;
    // Resync is exact: every OTHER block survives, in order.
    EXPECT_EQ(got, without_block(sample, index, k)) << "block " << k;
    // The strict reader must refuse what the lenient one quarantined.
    EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
                 util::ParseError)
        << "block " << k;
  }
}

TEST(FuzzV2, OverlongByteLengthLosesOnlyTheTail) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (const std::size_t k : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    std::string mutated = blob;
    // byte_length lives 8 bytes before the payload (after record_count u32).
    const std::size_t at = 8 + index.frames[k].payload_offset - 8;
    for (std::size_t i = 0; i < 4; ++i) mutated[at + i] = '\xff';
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    // The chain is unrecoverable past a broken length: one counted block,
    // every frame before it intact.
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(got.size(), k * 8) << "block " << k;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), sample.begin()))
        << "block " << k;
  }
}

TEST(FuzzV2, ImpossibleRecordCountSkipsFrameAndResyncs) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (std::size_t k = 0; k < index.frames.size(); ++k) {
    std::string mutated = blob;
    // record_count > byte_length is impossible (records are >= 1 byte);
    // the frame is skipped but byte_length still chains to the next one.
    const std::uint32_t bogus = index.frames[k].byte_length + 1;
    const std::size_t at = 8 + index.frames[k].payload_offset - 12;
    for (std::size_t i = 0; i < 4; ++i)
      mutated[at + i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(got, without_block(sample, index, k)) << "block " << k;
  }
}

TEST(FuzzV2, ZeroRecordBlockParsesCleanly) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  // Splice an empty frame (0 records, 0 bytes, crc32("") == 0, i.e. twelve
  // zero bytes) between two real frames: a valid no-op, not corruption.
  const std::size_t at = 8 + index.frames[4].payload_offset - 12;
  std::string spliced = blob.substr(0, at) + std::string(12, '\0') +
                        blob.substr(at);
  QuarantineStats q;
  std::vector<ProxyRecord> lenient;
  ASSERT_NO_THROW(
      lenient = read_binary_log_lenient<ProxyRecord>(blob_bytes(spliced), q));
  EXPECT_EQ(lenient, sample);
  EXPECT_FALSE(q.any());
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(spliced)), sample);
  const BinaryLogInfo info = probe_binary_log<ProxyRecord>(blob_bytes(spliced));
  EXPECT_EQ(info.blocks, index.frames.size() + 1);
  EXPECT_EQ(info.records, sample.size());
}

TEST(FuzzV2, SingleByteFlipsNeverCrashLenient) {
  const std::string blob = valid_v2_log(48, 8);
  util::Pcg32 rng(0xB10C);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    // Lenient reads never throw — corruption lands in `q`, not exceptions.
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "trial " << trial;
    EXPECT_LE(got.size(), 48u) << "trial " << trial;
    try {
      (void)read_binary_log<ProxyRecord>(blob_bytes(mutated));
    } catch (const util::ParseError&) {
      // expected for corrupted magic/frame/CRC bytes
    }
  }
}

TEST(FuzzChaosCorpus, StrictReaderRejectsEveryExactFault) {
  // The strict reader path must refuse what the lenient path quarantines:
  // an exact fault that drops records must surface as ParseError there.
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const chaos::BinaryImage image = chaos::image_of(sample);
  const chaos::FaultPlan plan(99, chaos::FaultProfile::named("io"));
  for (const chaos::ByteFault& fault : plan.byte_corpus(image, true)) {
    if (!fault.exact || fault.expected_survivors == sample.size()) continue;
    EXPECT_THROW((void)drain_binary<ProxyRecord>(fault.bytes),
                 util::ParseError);
  }
}

}  // namespace
}  // namespace wearscope::trace
