// Deterministic mutation fuzzing of the trace parsers: whatever bytes we
// throw at them, readers must either parse or throw util::ParseError —
// never crash, hang, or return garbage silently.  (Networking code rule
// one: the input is hostile.)
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "fed/merge.h"
#include "live/engine.h"
#include "test_support.h"
#include "trace/binary_io.h"
#include "trace/block_io.h"
#include "trace/columnar_io.h"
#include "trace/csv_io.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/span_decoder.h"

namespace wearscope::trace {
namespace {

std::string valid_binary_log(std::size_t records) {
  std::ostringstream out;
  BinaryLogWriter<ProxyRecord> writer(out);
  for (std::size_t i = 0; i < records; ++i) {
    ProxyRecord r;
    r.timestamp = static_cast<util::SimTime>(i * 37);
    r.user_id = 1'000'000 + i;
    r.tac = 35254208;
    r.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
    r.host = "host" + std::to_string(i) + ".example";
    r.url_path = i % 2 == 0 ? "" : "/p/" + std::to_string(i);
    r.bytes_up = i * 11;
    r.bytes_down = i * 101 + 1;
    r.duration_ms = static_cast<std::uint32_t>(i + 1);
    writer.write(r);
  }
  return out.str();
}

/// Consumes the whole stream; returns records parsed before error/EOF.
template <typename Record>
std::size_t drain_binary(const std::string& blob) {
  std::istringstream in(blob);
  BinaryLogReader<Record> reader(in);  // may throw
  Record r;
  std::size_t n = 0;
  while (reader.next(r)) ++n;
  return n;
}

TEST(FuzzBinary, TruncationAtEveryOffsetIsHandled) {
  const std::string blob = valid_binary_log(8);
  for (std::size_t cut = 0; cut <= blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    try {
      const std::size_t n = drain_binary<ProxyRecord>(prefix);
      EXPECT_LE(n, 8u);
    } catch (const util::ParseError&) {
      // acceptable: truncated header or record
    }
  }
}

TEST(FuzzBinary, SingleByteFlipsNeverCrash) {
  const std::string blob = valid_binary_log(6);
  const std::uint64_t seed = testing::seed_or(0xF122);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    try {
      (void)drain_binary<ProxyRecord>(mutated);
    } catch (const util::ParseError&) {
      // expected for corrupted magic/length/enum bytes
    }
  }
}

TEST(FuzzBinary, RandomGarbageIsRejectedOrEmpty) {
  const std::uint64_t seed = testing::seed_or(0xBAD5EED);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_int(0, 255));
    try {
      (void)drain_binary<MmeRecord>(garbage);
    } catch (const util::ParseError&) {
    }
  }
}

TEST(FuzzBinary, LengthPrefixBombIsBounded) {
  // A corrupted string length must fail with ParseError, not allocate
  // unbounded memory: the u16 prefix bounds strings to 64 KiB by design.
  std::ostringstream out;
  BinaryEncoder enc(out);
  enc.put_u32(0x57505258);  // proxy magic
  enc.put_u16(1);           // version
  enc.put_u16(0);
  enc.put_i64(1);           // timestamp
  enc.put_u64(2);           // user
  enc.put_u32(3);           // tac
  enc.put_u8(0);            // protocol
  enc.put_u16(0xFFFF);      // host length claims 65535 bytes...
  out << "short";           // ...but only 5 follow
  const std::string blob = out.str();
  EXPECT_THROW(drain_binary<ProxyRecord>(blob), util::ParseError);
}

TEST(FuzzCsv, MutatedRowsAreRejectedNotCrashing) {
  std::ostringstream out;
  {
    CsvLogWriter<MmeRecord> writer(out);
    for (int i = 0; i < 10; ++i) {
      writer.write({i * 60, static_cast<UserId>(100 + i), 35254208,
                    MmeEvent::kAttach, static_cast<SectorId>(i + 1)});
    }
  }
  const std::string blob = out.str();
  const std::uint64_t seed = testing::seed_or(0xC54F);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    std::istringstream in(mutated);
    try {
      CsvLogReader<MmeRecord> reader(in);
      MmeRecord r;
      while (reader.next(r)) {
      }
    } catch (const util::ParseError&) {
      // expected for corrupted headers/fields
    }
  }
}

TEST(FuzzCsv, ArbitraryTextLinesAreRejected) {
  const std::uint64_t seed = testing::seed_or(0x7E57);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  const std::string header = "timestamp,user_id,tac,event,sector_id\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string body;
    const auto lines = rng.uniform_int(0, 5);
    for (std::int64_t l = 0; l < lines; ++l) {
      const auto len = rng.uniform_int(0, 60);
      for (std::int64_t i = 0; i < len; ++i) {
        body += static_cast<char>(rng.uniform_int(32, 126));
      }
      body += '\n';
    }
    std::istringstream in(header + body);
    try {
      CsvLogReader<MmeRecord> reader(in);
      MmeRecord r;
      while (reader.next(r)) {
      }
    } catch (const util::ParseError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded chaos corpus: instead of blind mutation, aim structured faults at
// the binary layout via chaos::FaultPlan and hold the lenient reader to the
// corpus's own accounting promise (chaos::ByteFault::expected).
// ---------------------------------------------------------------------------

std::vector<ProxyRecord> sample_proxy(std::size_t n) {
  std::vector<ProxyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProxyRecord r;
    r.timestamp = static_cast<util::SimTime>(i * 37);
    r.user_id = 1'000'000 + i;
    r.tac = 35254208;
    r.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
    r.host = "host" + std::to_string(i) + ".example";
    r.url_path = i % 2 == 0 ? "" : "/p/" + std::to_string(i);
    r.bytes_up = i * 11;
    r.bytes_down = i * 101 + 1;
    r.duration_ms = static_cast<std::uint32_t>(i + 1);
    records.push_back(r);
  }
  return records;
}

std::vector<MmeRecord> sample_mme(std::size_t n) {
  std::vector<MmeRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back({static_cast<util::SimTime>(i * 60),
                       static_cast<UserId>(100 + i), 35254208,
                       i % 2 == 0 ? MmeEvent::kAttach : MmeEvent::kDetach,
                       static_cast<SectorId>(i + 1)});
  }
  return records;
}

template <typename Record>
void drive_corpus(const std::vector<Record>& sample, bool proxy_layout,
                  std::uint64_t seed) {
  const chaos::BinaryImage image = chaos::image_of(sample);
  const chaos::FaultPlan plan(seed, chaos::FaultProfile::named("io"));
  const std::vector<chaos::ByteFault> corpus =
      plan.byte_corpus(image, proxy_layout);
  ASSERT_FALSE(corpus.empty());

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const chaos::ByteFault& fault = corpus[i];
    std::istringstream in(fault.bytes);
    QuarantineStats q;
    std::vector<Record> got;
    // Lenient reads never throw — corruption lands in `q`, not exceptions.
    ASSERT_NO_THROW(got = read_binary_log_lenient<Record>(in, q))
        << "seed " << seed << " corpus entry " << i;
    if (fault.exact) {
      EXPECT_EQ(got.size(), fault.expected_survivors)
          << "seed " << seed << " corpus entry " << i;
      EXPECT_TRUE(q == fault.expected)
          << "seed " << seed << " corpus entry " << i;
    } else {
      // Bit flips only promise survival: no crash, no unbounded growth.
      EXPECT_LE(got.size(), sample.size())
          << "seed " << seed << " corpus entry " << i;
    }
  }
}

TEST(FuzzChaosCorpus, ProxyCorpusHonorsExactAccounting) {
  const std::vector<ProxyRecord> sample = sample_proxy(96);
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    drive_corpus(sample, /*proxy_layout=*/true, seed);
  }
}

TEST(FuzzChaosCorpus, MmeCorpusHonorsExactAccounting) {
  const std::vector<MmeRecord> sample = sample_mme(128);
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    drive_corpus(sample, /*proxy_layout=*/false, seed);
  }
}

// ---------------------------------------------------------------------------
// Blocked v2 frame corpus: corruption must stay block-granular.  Every test
// here asserts EXACT QuarantineStats accounting (one counted block per
// injected fault) and that the reader resyncs at the next frame header.
// ---------------------------------------------------------------------------

std::span<const std::byte> blob_bytes(const std::string& blob) {
  return std::as_bytes(std::span<const char>(blob.data(), blob.size()));
}

/// A v2 proxy log of `records` records in blocks of `block_records`.
std::string valid_v2_log(std::size_t records, std::size_t block_records) {
  std::ostringstream out;
  BlockWriterOptions options;
  options.max_block_records = block_records;
  BlockLogWriter<ProxyRecord> writer(out, options);
  for (const ProxyRecord& r : sample_proxy(records)) writer.write(r);
  writer.finish();
  return out.str();
}

/// Frame index of a complete v2 blob (file header included).
BlockIndex index_of(const std::string& blob) {
  return scan_block_index(blob_bytes(blob).subspan(8), /*lenient=*/true);
}

/// `sample` minus the records of block `skip` (order otherwise preserved).
std::vector<ProxyRecord> without_block(const std::vector<ProxyRecord>& sample,
                                       const BlockIndex& index,
                                       std::size_t skip) {
  std::vector<ProxyRecord> expect;
  std::size_t base = 0;
  for (std::size_t i = 0; i < index.frames.size(); ++i) {
    const std::size_t n = index.frames[i].record_count;
    if (i != skip) {
      expect.insert(expect.end(), sample.begin() + static_cast<long>(base),
                    sample.begin() + static_cast<long>(base + n));
    }
    base += n;
  }
  return expect;
}

TEST(FuzzV2, TruncationAtEveryOffsetHonorsBlockAccounting) {
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  ASSERT_EQ(index.frames.size(), 8u);
  // File offset where each frame ends, and records recovered up to it.
  std::vector<std::size_t> frame_end;
  std::vector<std::size_t> records_before;
  std::size_t total = 0;
  for (const BlockFrame& f : index.frames) {
    total += f.record_count;
    frame_end.push_back(8 + f.payload_offset + f.byte_length);
    records_before.push_back(total);
  }
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(prefix), q))
        << "cut " << cut;
    if (cut < 8) {
      // Not even a file header: the whole file quarantines as one unit.
      EXPECT_EQ(q.corrupt_files, 1u) << "cut " << cut;
      EXPECT_TRUE(got.empty()) << "cut " << cut;
      continue;
    }
    std::size_t complete = 0;
    bool on_boundary = cut == 8;
    for (std::size_t i = 0; i < frame_end.size(); ++i) {
      if (frame_end[i] <= cut) complete = records_before[i];
      if (frame_end[i] == cut) on_boundary = true;
    }
    // A cut on a frame boundary just looks like a shorter log; anywhere
    // else exactly ONE block is lost to the broken chain.
    EXPECT_EQ(got.size(), complete) << "cut " << cut;
    EXPECT_EQ(q.corrupt_blocks, on_boundary ? 0u : 1u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_files, 0u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_tails, 0u) << "cut " << cut;
  }
}

TEST(FuzzV2, CorruptCrcQuarantinesExactlyThatBlock) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (std::size_t k = 0; k < index.frames.size(); ++k) {
    std::string mutated = blob;
    mutated[8 + index.frames[k].payload_offset] ^= 0x01;
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(q.total_dropped(), 1u) << "block " << k;
    // Resync is exact: every OTHER block survives, in order.
    EXPECT_EQ(got, without_block(sample, index, k)) << "block " << k;
    // The strict reader must refuse what the lenient one quarantined.
    EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
                 util::ParseError)
        << "block " << k;
  }
}

TEST(FuzzV2, OverlongByteLengthLosesOnlyTheTail) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (const std::size_t k : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    std::string mutated = blob;
    // byte_length lives 8 bytes before the payload (after record_count u32).
    const std::size_t at = 8 + index.frames[k].payload_offset - 8;
    for (std::size_t i = 0; i < 4; ++i) mutated[at + i] = '\xff';
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    // The chain is unrecoverable past a broken length: one counted block,
    // every frame before it intact.
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(got.size(), k * 8) << "block " << k;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), sample.begin()))
        << "block " << k;
  }
}

TEST(FuzzV2, ImpossibleRecordCountSkipsFrameAndResyncs) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  for (std::size_t k = 0; k < index.frames.size(); ++k) {
    std::string mutated = blob;
    // record_count > byte_length is impossible (records are >= 1 byte);
    // the frame is skipped but byte_length still chains to the next one.
    const std::uint32_t bogus = index.frames[k].byte_length + 1;
    const std::size_t at = 8 + index.frames[k].payload_offset - 12;
    for (std::size_t i = 0; i < 4; ++i)
      mutated[at + i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "block " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "block " << k;
    EXPECT_EQ(got, without_block(sample, index, k)) << "block " << k;
  }
}

TEST(FuzzV2, ZeroRecordBlockParsesCleanly) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v2_log(64, 8);
  const BlockIndex index = index_of(blob);
  // Splice an empty frame (0 records, 0 bytes, crc32("") == 0, i.e. twelve
  // zero bytes) between two real frames: a valid no-op, not corruption.
  const std::size_t at = 8 + index.frames[4].payload_offset - 12;
  std::string spliced = blob.substr(0, at) + std::string(12, '\0') +
                        blob.substr(at);
  QuarantineStats q;
  std::vector<ProxyRecord> lenient;
  ASSERT_NO_THROW(
      lenient = read_binary_log_lenient<ProxyRecord>(blob_bytes(spliced), q));
  EXPECT_EQ(lenient, sample);
  EXPECT_FALSE(q.any());
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(spliced)), sample);
  const BinaryLogInfo info = probe_binary_log<ProxyRecord>(blob_bytes(spliced));
  EXPECT_EQ(info.blocks, index.frames.size() + 1);
  EXPECT_EQ(info.records, sample.size());
}

TEST(FuzzV2, SingleByteFlipsNeverCrashLenient) {
  const std::string blob = valid_v2_log(48, 8);
  const std::uint64_t seed = testing::seed_or(0xB10C);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    // Lenient reads never throw — corruption lands in `q`, not exceptions.
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "trial " << trial;
    EXPECT_LE(got.size(), 48u) << "trial " << trial;
    try {
      (void)read_binary_log<ProxyRecord>(blob_bytes(mutated));
    } catch (const util::ParseError&) {
      // expected for corrupted magic/frame/CRC bytes
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar v3 corpus: corruption must stay row-group-granular (one counted
// block per injected fault, resync at the next group header), except the
// file-level dictionaries, whose damage quarantines the whole file.  Each
// test targets one failure class the format calls out: truncation, column
// CRC flips, out-of-range dictionary indices, varint overruns, impossible
// group headers.
// ---------------------------------------------------------------------------

/// A v3 proxy log of `records` records in row groups of `group_records`.
std::string valid_v3_log(std::size_t records, std::size_t group_records) {
  std::ostringstream out;
  BlockWriterOptions options;
  options.max_block_records = group_records;
  (void)write_columnar_log(out, sample_proxy(records), options);
  return out.str();
}

/// File offset of the first group header: the 8-byte file header plus the
/// three dictionary sections (hosts, tacs, sectors).
std::size_t v3_chain_start(const std::string& blob) {
  std::size_t off = 8;
  for (int section = 0; section < 3; ++section) {
    std::uint32_t byte_length = 0;
    std::memcpy(&byte_length, blob.data() + off + 4, 4);
    off += kDictHeaderBytes + byte_length;
  }
  return off;
}

/// Group index of a complete v3 blob (header and dictionaries skipped).
ColumnGroupIndex v3_index_of(const std::string& blob) {
  return scan_column_groups(blob_bytes(blob).subspan(v3_chain_start(blob)),
                            /*lenient=*/true);
}

/// One column segment of a row group, addressed by file offset.
struct ColumnSegment {
  std::size_t header_offset = 0;   ///< [byte_length u32][crc32 u32].
  std::size_t payload_offset = 0;
  std::uint32_t byte_length = 0;
};

/// Walks the column segments of `group` (file offsets into `blob`).
std::vector<ColumnSegment> v3_columns_of(const std::string& blob,
                                         const ColumnGroup& group,
                                         std::size_t columns) {
  std::vector<ColumnSegment> segments;
  std::size_t off = v3_chain_start(blob) + group.payload_offset;
  for (std::size_t c = 0; c < columns; ++c) {
    std::uint32_t byte_length = 0;
    std::memcpy(&byte_length, blob.data() + off, 4);
    segments.push_back({off, off + kColumnHeaderBytes, byte_length});
    off += kColumnHeaderBytes + byte_length;
  }
  return segments;
}

/// Re-stamps one column segment's CRC after a payload edit, so the fault
/// under test is the decode failure itself, not the checksum.
void v3_restamp_crc(std::string& blob, const ColumnSegment& segment) {
  const std::uint32_t crc = util::crc32(
      blob_bytes(blob).subspan(segment.payload_offset, segment.byte_length));
  std::memcpy(blob.data() + segment.header_offset + 4, &crc, 4);
}

/// `sample` minus the records of row group `skip`.
std::vector<ProxyRecord> without_group(const std::vector<ProxyRecord>& sample,
                                       const ColumnGroupIndex& index,
                                       std::size_t skip) {
  std::vector<ProxyRecord> expect;
  std::size_t base = 0;
  for (std::size_t i = 0; i < index.groups.size(); ++i) {
    const std::size_t n = index.groups[i].record_count;
    if (i != skip) {
      expect.insert(expect.end(), sample.begin() + static_cast<long>(base),
                    sample.begin() + static_cast<long>(base + n));
    }
    base += n;
  }
  return expect;
}

TEST(FuzzV3, TruncationAtEveryOffsetHonorsGroupAccounting) {
  const std::string blob = valid_v3_log(64, 8);
  const std::size_t chain_start = v3_chain_start(blob);
  const ColumnGroupIndex index = v3_index_of(blob);
  ASSERT_EQ(index.groups.size(), 8u);
  // File offset where each group ends, and records recovered up to it.
  std::vector<std::size_t> group_end;
  std::vector<std::size_t> records_before;
  std::size_t total = 0;
  for (const ColumnGroup& g : index.groups) {
    total += g.record_count;
    group_end.push_back(chain_start + g.payload_offset + g.byte_length);
    records_before.push_back(total);
  }
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(prefix), q))
        << "cut " << cut;
    if (cut < chain_start) {
      // A truncated header or dictionary poisons every index in the file:
      // the whole file quarantines as one unit.
      EXPECT_EQ(q.corrupt_files, 1u) << "cut " << cut;
      EXPECT_TRUE(got.empty()) << "cut " << cut;
      continue;
    }
    std::size_t complete = 0;
    bool on_boundary = cut == chain_start;
    for (std::size_t i = 0; i < group_end.size(); ++i) {
      if (group_end[i] <= cut) complete = records_before[i];
      if (group_end[i] == cut) on_boundary = true;
    }
    // A cut on a group boundary just looks like a shorter log; anywhere
    // else exactly ONE group is lost to the broken chain.
    EXPECT_EQ(got.size(), complete) << "cut " << cut;
    EXPECT_EQ(q.corrupt_blocks, on_boundary ? 0u : 1u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_files, 0u) << "cut " << cut;
    EXPECT_EQ(q.corrupt_tails, 0u) << "cut " << cut;
  }
}

TEST(FuzzV3, CorruptColumnCrcQuarantinesExactlyThatGroup) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v3_log(64, 8);
  const ColumnGroupIndex index = v3_index_of(blob);
  const std::size_t columns = columnar_column_count<ProxyRecord>();
  for (std::size_t k = 0; k < index.groups.size(); ++k) {
    // One flipped payload byte per trial, rotating through the columns so
    // every segment's CRC framing is exercised.
    const std::vector<ColumnSegment> segments =
        v3_columns_of(blob, index.groups[k], columns);
    std::string mutated = blob;
    mutated[segments[k % columns].payload_offset] ^= 0x01;
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "group " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "group " << k;
    EXPECT_EQ(q.total_dropped(), 1u) << "group " << k;
    // Resync is exact: every OTHER group survives, in order.
    EXPECT_EQ(got, without_group(sample, index, k)) << "group " << k;
    // The strict reader must refuse what the lenient one quarantined.
    EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
                 util::ParseError)
        << "group " << k;
  }
}

TEST(FuzzV3, DictIndexOutOfRangeQuarantinesTheGroup) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v3_log(64, 8);
  const ColumnGroupIndex index = v3_index_of(blob);
  for (const std::size_t k : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    const std::vector<ColumnSegment> segments =
        v3_columns_of(blob, index.groups[k],
                      columnar_column_count<ProxyRecord>());
    std::string mutated = blob;
    // Column 2 holds TAC dictionary indices; the sample has ONE distinct
    // TAC, so every byte is the one-byte varint 0x00.  0x7f is still a
    // valid one-byte varint but indexes far past the dictionary — with the
    // CRC restamped, the failure under test is the bound check itself.
    mutated[segments[2].payload_offset] = '\x7f';
    v3_restamp_crc(mutated, segments[2]);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "group " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "group " << k;
    EXPECT_EQ(got, without_group(sample, index, k)) << "group " << k;
    EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
                 util::ParseError)
        << "group " << k;
  }
}

TEST(FuzzV3, VarintOverrunQuarantinesTheGroup) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v3_log(64, 8);
  const ColumnGroupIndex index = v3_index_of(blob);
  for (const std::size_t k : {std::size_t{0}, std::size_t{4}, std::size_t{7}}) {
    const std::vector<ColumnSegment> segments =
        v3_columns_of(blob, index.groups[k],
                      columnar_column_count<ProxyRecord>());
    std::string mutated = blob;
    // Column 1 is plain user-id varints.  Setting the continuation bit on
    // the segment's LAST byte makes the final varint run off the end of
    // its frame; the restamped CRC passes, the decode must not.
    const ColumnSegment& users = segments[1];
    ASSERT_GT(users.byte_length, 0u);
    mutated[users.payload_offset + users.byte_length - 1] |=
        static_cast<char>(0x80);
    v3_restamp_crc(mutated, users);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "group " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "group " << k;
    EXPECT_EQ(got, without_group(sample, index, k)) << "group " << k;
    EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
                 util::ParseError)
        << "group " << k;
  }
}

TEST(FuzzV3, DictionaryDamageQuarantinesTheWholeFile) {
  const std::string blob = valid_v3_log(64, 8);
  // Flip one byte inside the hosts dictionary payload: every host index in
  // the file is now meaningless, so lenient reads must refuse to fabricate
  // hosts and quarantine the file, not a group.
  std::string mutated = blob;
  mutated[8 + kDictHeaderBytes] ^= 0x01;
  QuarantineStats q;
  std::vector<ProxyRecord> got;
  ASSERT_NO_THROW(
      got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q));
  EXPECT_EQ(q.corrupt_files, 1u);
  EXPECT_EQ(q.corrupt_blocks, 0u);
  EXPECT_TRUE(got.empty());
  EXPECT_THROW((void)read_binary_log<ProxyRecord>(blob_bytes(mutated)),
               util::ParseError);
}

TEST(FuzzV3, ImpossibleRecordCountSkipsGroupAndResyncs) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v3_log(64, 8);
  const std::size_t chain_start = v3_chain_start(blob);
  const ColumnGroupIndex index = v3_index_of(blob);
  for (std::size_t k = 0; k < index.groups.size(); ++k) {
    std::string mutated = blob;
    // record_count > byte_length is impossible (every column costs at
    // least one byte per record); the group is skipped but byte_length
    // still chains to the next one.
    const std::uint32_t bogus = index.groups[k].byte_length + 1;
    const std::size_t at =
        chain_start + index.groups[k].payload_offset - kGroupHeaderBytes;
    std::memcpy(mutated.data() + at, &bogus, 4);
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "group " << k;
    EXPECT_EQ(q.corrupt_blocks, 1u) << "group " << k;
    EXPECT_EQ(got, without_group(sample, index, k)) << "group " << k;
  }
}

TEST(FuzzV3, ZeroRecordGroupParsesCleanly) {
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const std::string blob = valid_v3_log(64, 8);
  const std::size_t chain_start = v3_chain_start(blob);
  const ColumnGroupIndex index = v3_index_of(blob);
  // Splice an empty group (0 records, one empty segment per column —
  // crc32("") == 0, so the whole thing is zero bytes except its
  // byte_length) between two real groups: a valid no-op, not corruption.
  const std::size_t columns = columnar_column_count<ProxyRecord>();
  std::string empty_group(kGroupHeaderBytes + columns * kColumnHeaderBytes,
                          '\0');
  const auto body_bytes =
      static_cast<std::uint32_t>(columns * kColumnHeaderBytes);
  std::memcpy(empty_group.data() + 4, &body_bytes, 4);
  const std::size_t at =
      chain_start + index.groups[4].payload_offset - kGroupHeaderBytes;
  const std::string spliced =
      blob.substr(0, at) + empty_group + blob.substr(at);
  QuarantineStats q;
  std::vector<ProxyRecord> lenient;
  ASSERT_NO_THROW(
      lenient = read_binary_log_lenient<ProxyRecord>(blob_bytes(spliced), q));
  EXPECT_EQ(lenient, sample);
  EXPECT_FALSE(q.any());
  EXPECT_EQ(read_binary_log<ProxyRecord>(blob_bytes(spliced)), sample);
}

TEST(FuzzV3, SingleByteFlipsNeverCrashLenient) {
  const std::string blob = valid_v3_log(48, 8);
  const std::uint64_t seed = testing::seed_or(0xC01A);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    QuarantineStats q;
    std::vector<ProxyRecord> got;
    // Lenient reads never throw — corruption lands in `q`, not exceptions.
    ASSERT_NO_THROW(
        got = read_binary_log_lenient<ProxyRecord>(blob_bytes(mutated), q))
        << "trial " << trial;
    EXPECT_LE(got.size(), 48u) << "trial " << trial;
    try {
      (void)read_binary_log<ProxyRecord>(blob_bytes(mutated));
    } catch (const util::ParseError&) {
      // expected for corrupted header/dictionary/group bytes
    }
  }
}

// ---- Federation wire format (fed/partial_io.h, WSFD v1) -----------------
//
// Same hostile-input rule as the trace formats: strict readers throw
// util::ParseError, the lenient reader never throws and accounts damage
// with section granularity, and a tampered cover is a merge-level hard
// error (util::ConfigError) — never a silently undercounted snapshot.

/// A small but fully populated partial: one-shard engine, a handful of
/// users across both halves of a 2-way shard split, app + sector + MME
/// traffic so every section carries real payload.  Built once.
fed::PartialSnapshot sample_partial() {
  static const fed::PartialSnapshot partial = [] {
    live::LiveOptions opt;
    opt.shards = 1;
    opt.ring_capacity = 512;
    opt.long_tail_apps = 20;
    opt.capture_tallies = true;
    std::vector<DeviceRecord> devices;
    devices.push_back({35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"});
    live::LiveEngine engine(devices, opt);
    static constexpr const char* kHosts[] = {
        "api.weather.example", "sync.fit.example", "voice.assist.example"};
    for (std::size_t i = 0; i < 160; ++i) {
      ProxyRecord p;
      p.timestamp = static_cast<util::SimTime>(i * 53);
      p.user_id = 1'000'000 + i % 9;
      p.tac = 35254208;
      p.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
      p.host = kHosts[i % 3];
      p.bytes_up = i * 17;
      p.bytes_down = i * 129 + 1;
      p.duration_ms = static_cast<std::uint32_t>(i + 1);
      engine.push(p);
      if (i % 4 == 0) {
        MmeRecord m;
        m.timestamp = static_cast<util::SimTime>(i * 53 + 1);
        m.user_id = 1'000'000 + i % 9;
        m.tac = 35254208;
        m.event = MmeEvent::kAttach;
        m.sector_id = static_cast<SectorId>(1 + i % 5);
        engine.push(m);
      }
    }
    return fed::make_partial(engine.stop(), opt);
  }();
  return partial;
}

/// One section's byte extent inside an encoded partial.
struct SectionSpan {
  std::uint32_t id = 0;
  std::size_t payload_begin = 0;  ///< First payload byte.
  std::size_t end = 0;            ///< One past the payload.
};

/// Walks the section chain of a well-formed encoded partial.
std::vector<SectionSpan> scan_spans(const std::string& blob) {
  std::vector<SectionSpan> spans;
  std::size_t off = fed::kPartialFileHeaderBytes;
  while (off + fed::kSectionHeaderBytes <= blob.size()) {
    util::MemorySpanDecoder dec(
        blob_bytes(blob).subspan(off, fed::kSectionHeaderBytes));
    SectionSpan s;
    s.id = dec.get_u32();
    const std::uint32_t byte_length = dec.get_u32();
    s.payload_begin = off + fed::kSectionHeaderBytes;
    s.end = s.payload_begin + byte_length;
    spans.push_back(s);
    off = s.end;
  }
  return spans;
}

/// Round-trips each partial through encode + strict decode, as
/// wearscope_merge would load it off disk.
std::vector<fed::LoadedPartial> loaded_from(
    const std::vector<fed::PartialSnapshot>& parts) {
  std::vector<fed::LoadedPartial> out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string blob = fed::encode_partial(parts[i]);
    fed::LoadedPartial lp;
    lp.partial = fed::decode_partial(blob_bytes(blob));
    lp.path = "mem:part" + std::to_string(i);
    out.push_back(std::move(lp));
  }
  return out;
}

TEST(FuzzFed, TruncationAtEveryOffsetHonorsSectionAccounting) {
  const std::string blob = fed::encode_partial(sample_partial());
  const std::vector<SectionSpan> spans = scan_spans(blob);
  ASSERT_GE(spans.size(), 2u);
  ASSERT_EQ(spans.front().id,
            static_cast<std::uint32_t>(fed::SectionId::kPartition));
  ASSERT_EQ(spans.back().end, blob.size());
  // Sketch mode is off, so the expected set is every non-partition
  // section the writer emitted.
  const std::uint64_t expected_total = spans.size() - 1;
  const std::size_t header_end = spans.front().end;

  for (std::size_t cut = 0; cut <= blob.size(); ++cut) {
    const std::string prefix = blob.substr(0, cut);
    QuarantineStats q;
    std::optional<fed::PartialSnapshot> got;
    ASSERT_NO_THROW(got = fed::read_partial_lenient(blob_bytes(prefix), q))
        << "cut " << cut;
    if (cut < header_end) {
      // The cover metadata is the file's meaning: reject wholesale.
      EXPECT_FALSE(got.has_value()) << "cut " << cut;
      EXPECT_EQ(q.corrupt_files, 1u) << "cut " << cut;
      EXPECT_EQ(q.corrupt_blocks, 0u) << "cut " << cut;
    } else {
      // Past the partition header every fully present section is
      // recovered and each truncated-away one counts exactly one block.
      std::uint64_t survived = 0;
      for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].end <= cut) ++survived;
      }
      ASSERT_TRUE(got.has_value()) << "cut " << cut;
      EXPECT_EQ(q.corrupt_files, 0u) << "cut " << cut;
      EXPECT_EQ(q.corrupt_blocks, expected_total - survived) << "cut " << cut;
    }
    if (cut < blob.size()) {
      EXPECT_THROW((void)fed::decode_partial(blob_bytes(prefix)),
                   util::ParseError)
          << "cut " << cut;
    }
  }
}

TEST(FuzzFed, PerSectionCrcFlipIsSectionGranular) {
  const std::string blob = fed::encode_partial(sample_partial());
  for (const SectionSpan& s : scan_spans(blob)) {
    ASSERT_LT(s.payload_begin, s.end) << "empty section " << s.id;
    std::string mutated = blob;
    mutated[s.payload_begin] =
        static_cast<char>(mutated[s.payload_begin] ^ 0x5A);
    // Strict: any CRC mismatch is fatal.
    EXPECT_THROW((void)fed::decode_partial(blob_bytes(mutated)),
                 util::ParseError)
        << "section " << s.id;
    // Lenient: a broken partition header rejects the file; any other
    // broken section costs exactly that one section.
    QuarantineStats q;
    std::optional<fed::PartialSnapshot> got;
    ASSERT_NO_THROW(got = fed::read_partial_lenient(blob_bytes(mutated), q))
        << "section " << s.id;
    if (s.id == static_cast<std::uint32_t>(fed::SectionId::kPartition)) {
      EXPECT_FALSE(got.has_value());
      EXPECT_EQ(q.corrupt_files, 1u) << "section " << s.id;
      EXPECT_EQ(q.corrupt_blocks, 0u) << "section " << s.id;
    } else {
      ASSERT_TRUE(got.has_value()) << "section " << s.id;
      EXPECT_EQ(q.corrupt_files, 0u) << "section " << s.id;
      EXPECT_EQ(q.corrupt_blocks, 1u) << "section " << s.id;
    }
  }
}

TEST(FuzzFed, TamperedCoversAreHardErrors) {
  const fed::PartialSnapshot base = sample_partial();
  // Control: the untampered singleton cover merges cleanly.
  ASSERT_NO_THROW((void)fed::merge_partials(loaded_from({base})));

  // A claimed partition_count with no matching cover is incomplete.
  fed::PartialSnapshot claims_two = base;
  claims_two.header.partition_count = 2;
  EXPECT_THROW((void)fed::merge_partials(loaded_from({claims_two})),
               util::ConfigError);

  // partition_count must agree across the cover.
  fed::PartialSnapshot other = base;
  other.header.partition_id = 1;
  other.header.partition_count = 2;
  EXPECT_THROW((void)fed::merge_partials(loaded_from({base, other})),
               util::ConfigError);

  // Duplicate partition ids.
  fed::PartialSnapshot dup = base;
  dup.header.partition_count = 2;
  EXPECT_THROW((void)fed::merge_partials(loaded_from({dup, dup})),
               util::ConfigError);

  // Overlapping user ranges: both halves claim the full population (the
  // records fields are split so the tile check alone cannot save us —
  // the per-user ownership invariant has to catch it).
  fed::PartialSnapshot left = base;
  left.header.partition_count = 2;
  left.header.records = base.header.records / 2;
  fed::PartialSnapshot right = base;
  right.header.partition_id = 1;
  right.header.partition_count = 2;
  right.header.records = base.header.records - base.header.records / 2;
  EXPECT_THROW((void)fed::merge_partials(loaded_from({left, right})),
               util::ConfigError);
}

TEST(FuzzFed, SingleByteFlipsNeverCrashLenient) {
  const std::string blob = fed::encode_partial(sample_partial());
  const std::uint64_t seed = testing::seed_or(0xFED5);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    QuarantineStats q;
    std::optional<fed::PartialSnapshot> got;
    ASSERT_NO_THROW(got = fed::read_partial_lenient(blob_bytes(mutated), q))
        << "trial " << trial;
    if (mutated == blob) {
      EXPECT_TRUE(got.has_value()) << "trial " << trial;
      EXPECT_EQ(q.total_dropped(), 0u) << "trial " << trial;
    }
    // The operator-facing audit path must also survive anything.
    ASSERT_NO_THROW((void)fed::audit_partial(blob_bytes(mutated)))
        << "trial " << trial;
    try {
      (void)fed::decode_partial(blob_bytes(mutated));
      // Accepted flips exist (the reserved file-header bytes); anything
      // strict accepts must merge-load without crashing too.
    } catch (const util::ParseError&) {
      // expected for damaged framing/CRC/checksum bytes
    }
  }
}

TEST(FuzzChaosCorpus, StrictReaderRejectsEveryExactFault) {
  // The strict reader path must refuse what the lenient path quarantines:
  // an exact fault that drops records must surface as ParseError there.
  const std::vector<ProxyRecord> sample = sample_proxy(64);
  const chaos::BinaryImage image = chaos::image_of(sample);
  const chaos::FaultPlan plan(99, chaos::FaultProfile::named("io"));
  for (const chaos::ByteFault& fault : plan.byte_corpus(image, true)) {
    if (!fault.exact || fault.expected_survivors == sample.size()) continue;
    EXPECT_THROW((void)drain_binary<ProxyRecord>(fault.bytes),
                 util::ParseError);
  }
}

}  // namespace
}  // namespace wearscope::trace
