// Unit tests for SimConfig text persistence.
#include "simnet/config_io.h"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::simnet {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryKnob) {
  SimConfig in = SimConfig::paper();
  in.seed = 12345;
  in.monthly_growth = 0.021;
  in.silent_user_fraction = 0.5;
  in.country_lat = 48.25;
  in.long_tail_apps = 99;

  std::stringstream buf;
  write_config(in, buf);
  const SimConfig out = read_config(buf);

  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.wearable_users, in.wearable_users);
  EXPECT_EQ(out.control_users, in.control_users);
  EXPECT_EQ(out.through_device_users, in.through_device_users);
  EXPECT_EQ(out.observation_days, in.observation_days);
  EXPECT_EQ(out.detailed_days, in.detailed_days);
  EXPECT_DOUBLE_EQ(out.monthly_growth, in.monthly_growth);
  EXPECT_DOUBLE_EQ(out.silent_user_fraction, in.silent_user_fraction);
  EXPECT_DOUBLE_EQ(out.country_lat, in.country_lat);
  EXPECT_EQ(out.long_tail_apps, in.long_tail_apps);
  EXPECT_DOUBLE_EQ(out.owner_mobility_multiplier,
                   in.owner_mobility_multiplier);
}

TEST(ConfigIo, PartialFileKeepsDefaults) {
  std::stringstream buf("seed = 7\nwearable_users = 50\n");
  const SimConfig out = read_config(buf);
  EXPECT_EQ(out.seed, 7u);
  EXPECT_EQ(out.wearable_users, 50u);
  const SimConfig defaults;
  EXPECT_EQ(out.control_users, defaults.control_users);
  EXPECT_DOUBLE_EQ(out.monthly_growth, defaults.monthly_growth);
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buf(
      "# a comment\n\nseed = 9   # trailing comment\n   \n");
  EXPECT_EQ(read_config(buf).seed, 9u);
}

TEST(ConfigIo, UnknownKeyRejected) {
  std::stringstream buf("wearables = 10\n");
  EXPECT_THROW(read_config(buf), util::ParseError);
}

TEST(ConfigIo, BadValueRejected) {
  std::stringstream buf("wearable_users = lots\n");
  EXPECT_THROW(read_config(buf), util::ParseError);
  std::stringstream buf2("monthly_growth = 1.2.3\n");
  EXPECT_THROW(read_config(buf2), util::ParseError);
}

TEST(ConfigIo, MissingEqualsRejected) {
  std::stringstream buf("seed 7\n");
  EXPECT_THROW(read_config(buf), util::ParseError);
}

TEST(ConfigIo, InvalidConfigurationRejected) {
  // detailed_days not a multiple of 7 fails validate() on load.
  std::stringstream buf("detailed_days = 13\n");
  EXPECT_THROW(read_config(buf), util::ConfigError);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("wearscope_cfg_" + std::to_string(::getpid()) + ".cfg");
  SimConfig in = SimConfig::small();
  in.seed = 4242;
  save_config_file(in, path);
  const SimConfig out = load_config_file(path);
  EXPECT_EQ(out.seed, 4242u);
  EXPECT_EQ(out.wearable_users, in.wearable_users);
  std::filesystem::remove(path);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/path.cfg"), util::IoError);
}

}  // namespace
}  // namespace wearscope::simnet
