// Unit tests for terminal chart rendering.
#include "util/ascii_chart.h"

#include <gtest/gtest.h>

namespace wearscope::util {
namespace {

TEST(FormatNum, TrimsZeros) {
  EXPECT_EQ(format_num(1.5), "1.5");
  EXPECT_EQ(format_num(2.0), "2");
  EXPECT_EQ(format_num(0.125, 3), "0.125");
  EXPECT_EQ(format_num(0.0), "0");
}

TEST(FormatNum, ScientificForExtremes) {
  EXPECT_NE(format_num(1.5e9).find("e"), std::string::npos);
  EXPECT_NE(format_num(2.5e-7).find("e"), std::string::npos);
}

TEST(BarChart, LongestBarIsMax) {
  const std::vector<Bar> bars = {{"a", 10.0}, {"b", 5.0}, {"c", 0.0}};
  const std::string chart = bar_chart(bars, 20);
  const auto count_hashes = [&](char label) {
    const auto pos = chart.find(std::string(1, label) + " ");
    const auto line_end = chart.find('\n', pos);
    const std::string line = chart.substr(pos, line_end - pos);
    return std::count(line.begin(), line.end(), '#');
  };
  EXPECT_EQ(count_hashes('a'), 20);
  EXPECT_EQ(count_hashes('b'), 10);
  EXPECT_EQ(count_hashes('c'), 0);
}

TEST(BarChart, LogScaleKeepsPositiveVisible) {
  const std::vector<Bar> bars = {{"big", 1000.0}, {"tiny", 1.0}};
  const std::string chart = bar_chart(bars, 40, /*log_scale=*/true);
  // The tiny bar must still show at least one hash on a log scale.
  const auto pos = chart.find("tiny");
  const auto line = chart.substr(pos, chart.find('\n', pos) - pos);
  EXPECT_NE(line.find('#'), std::string::npos);
}

TEST(BarChart, EmptyInput) {
  EXPECT_EQ(bar_chart({}), "(empty)\n");
}

TEST(Sparkline, LengthMatchesInput) {
  const std::string s = sparkline({0.0, 0.5, 1.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], ' ');
  EXPECT_EQ(s[2], '@');
  EXPECT_TRUE(sparkline({}).empty());
}

TEST(Table, AlignsColumns) {
  const std::string t = table({"name", "value"}, {{"x", "1"},
                                                  {"longer-name", "22"}});
  // Header, rule, two rows.
  EXPECT_EQ(std::count(t.begin(), t.end(), '\n'), 4);
  EXPECT_NE(t.find("longer-name"), std::string::npos);
  // Rule line contains dashes.
  EXPECT_NE(t.find("----"), std::string::npos);
}

TEST(Table, RowShorterThanHeader) {
  const std::string t = table({"a", "b", "c"}, {{"1"}});
  EXPECT_NE(t.find('1'), std::string::npos);
}

}  // namespace
}  // namespace wearscope::util
