// Unit tests for the simulation calendar.
#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace wearscope::util {
namespace {

TEST(SimTime, DayZeroIsFriday) {
  // 2017-12-15 was a Friday.
  EXPECT_EQ(weekday_of_day(0), Weekday::kFriday);
  EXPECT_EQ(weekday_of_day(1), Weekday::kSaturday);
  EXPECT_EQ(weekday_of_day(2), Weekday::kSunday);
  EXPECT_EQ(weekday_of_day(3), Weekday::kMonday);
  EXPECT_EQ(weekday_of_day(7), Weekday::kFriday);
}

TEST(SimTime, WeekendDetection) {
  EXPECT_FALSE(is_weekend_day(0));  // Friday
  EXPECT_TRUE(is_weekend_day(1));   // Saturday
  EXPECT_TRUE(is_weekend_day(2));   // Sunday
  EXPECT_FALSE(is_weekend_day(3));  // Monday
  EXPECT_TRUE(is_weekend(day_start(1) + 5 * kSecondsPerHour));
}

TEST(SimTime, DayHourWeekExtraction) {
  const SimTime t = day_start(10) + 13 * kSecondsPerHour + 123;
  EXPECT_EQ(day_of(t), 10);
  EXPECT_EQ(hour_of(t), 13);
  EXPECT_EQ(week_of(t), 1);
  EXPECT_EQ(week_of(day_start(14)), 2);
}

TEST(SimTime, DayBoundaries) {
  EXPECT_EQ(day_of(day_start(5)), 5);
  EXPECT_EQ(day_of(day_start(5) - 1), 4);
  EXPECT_EQ(hour_of(day_start(5)), 0);
  EXPECT_EQ(hour_of(day_start(5) + kSecondsPerDay - 1), 23);
}

TEST(SimTime, ObservationConstantsConsistent) {
  EXPECT_EQ(kDetailedDays, kDetailedWeeks * 7);
  EXPECT_EQ(kDetailedStartDay + kDetailedDays, kObservationDays);
  EXPECT_GT(kDetailedStartDay, 0);
}

TEST(SimTime, WeekdayNames) {
  EXPECT_EQ(weekday_name(Weekday::kMonday), "Mon");
  EXPECT_EQ(weekday_name(Weekday::kSunday), "Sun");
}

TEST(SimTime, Formatting) {
  const std::string s = format_sim_time(day_start(3) + 2 * kSecondsPerHour +
                                        5 * kSecondsPerMinute + 7);
  EXPECT_EQ(s, "day003 02:05:07 (Mon)");
}

}  // namespace
}  // namespace wearscope::util
