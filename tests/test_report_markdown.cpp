// Tests for the Markdown report rendering.
#include "core/report_markdown.h"

#include <gtest/gtest.h>

namespace wearscope::core {
namespace {

StudyReport tiny_report() {
  StudyReport rep;
  FigureData fig;
  fig.id = "figX";
  fig.title = "Demo figure";
  fig.checks.push_back(make_check("claim with | pipe", 0.34, 0.36, 0.28, 0.4));
  fig.checks.push_back(make_check("failing claim", 1.0, 9.0, 0.0, 2.0));
  fig.notes.push_back("a note");
  rep.figures.push_back(std::move(fig));
  return rep;
}

TEST(Markdown, RendersHeaderMetaAndTables) {
  MarkdownMeta meta;
  meta.title = "My report";
  meta.preset = "standard";
  meta.seed = "42";
  meta.extra = "Extra paragraph.";
  const std::string md = to_markdown(tiny_report(), meta);
  EXPECT_NE(md.find("# My report"), std::string::npos);
  EXPECT_NE(md.find("preset `standard`"), std::string::npos);
  EXPECT_NE(md.find("seed `42`"), std::string::npos);
  EXPECT_NE(md.find("Extra paragraph."), std::string::npos);
  EXPECT_NE(md.find("## figX — Demo figure"), std::string::npos);
  EXPECT_NE(md.find("| claim | paper | measured | band | verdict |"),
            std::string::npos);
  EXPECT_NE(md.find("> a note"), std::string::npos);
}

TEST(Markdown, EscapesPipesAndMarksVerdicts) {
  const std::string md = to_markdown(tiny_report(), {});
  EXPECT_NE(md.find("claim with \\| pipe"), std::string::npos);
  EXPECT_NE(md.find("| PASS |"), std::string::npos);
  EXPECT_NE(md.find("| **FAIL** |"), std::string::npos);
}

TEST(Markdown, SummaryTallyCorrect) {
  const std::string md = to_markdown(tiny_report(), {});
  EXPECT_NE(md.find("1 of 2 paper-claim checks passed."), std::string::npos);
}

TEST(Markdown, EmptyReport) {
  const std::string md = to_markdown(StudyReport{}, {});
  EXPECT_NE(md.find("0 of 0 paper-claim checks passed."), std::string::npos);
}

}  // namespace
}  // namespace wearscope::core
