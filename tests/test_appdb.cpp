// Unit tests for the application/device knowledge base.
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "appdb/app_catalog.h"
#include "appdb/categories.h"
#include "appdb/device_models.h"
#include "appdb/third_party.h"
#include "appdb/traffic_profile.h"

namespace wearscope::appdb {
namespace {

TEST(Categories, NameParseRoundTrip) {
  for (const Category c : all_categories()) {
    const auto parsed = parse_category(category_name(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(parse_category("Nonsense").has_value());
}

TEST(Categories, FifteenDistinctNames) {
  std::set<std::string_view> names;
  for (const Category c : all_categories()) names.insert(category_name(c));
  EXPECT_EQ(names.size(), kCategoryCount);
}

TEST(TrafficProfiles, MixesAreValidProbabilities) {
  for (std::size_t k = 0; k < kProfileKindCount; ++k) {
    const TrafficProfile& p = profile_for(static_cast<ProfileKind>(k));
    EXPECT_EQ(p.kind, static_cast<ProfileKind>(k));
    EXPECT_GE(p.third_party.utilities, 0.0);
    EXPECT_GE(p.third_party.advertising, 0.0);
    EXPECT_GE(p.third_party.analytics, 0.0);
    EXPECT_GT(p.third_party.application(), 0.3)
        << "first-party must dominate for " << profile_kind_name(p.kind);
    EXPECT_GT(p.usages_per_active_hour, 0.0);
    EXPECT_GE(p.transactions_per_usage, 1.0);
    EXPECT_LT(p.intra_usage_gap_s, 60.0)
        << "intra-usage gaps must stay below the sessionization threshold";
    EXPECT_GT(p.bytes_log_mu, 5.0);
    EXPECT_LT(p.bytes_log_mu, 12.0);
    EXPECT_GT(p.uplink_fraction, 0.0);
    EXPECT_LT(p.uplink_fraction, 1.0);
    EXPECT_GE(p.http_fraction, 0.0);
    EXPECT_LE(p.http_fraction, 0.3);
  }
}

TEST(TrafficProfiles, PaymentIsTiniestMediaIsLargest) {
  const double pay = profile_for(ProfileKind::kPayment).bytes_log_mu;
  const double stream = profile_for(ProfileKind::kStreaming).bytes_log_mu;
  const double notif = profile_for(ProfileKind::kNotification).bytes_log_mu;
  EXPECT_LT(pay, notif);
  EXPECT_GT(stream, notif);
}

TEST(ThirdParty, PoolsAreDisjointRegistrableDomains) {
  std::unordered_set<std::string_view> all;
  for (const auto pool :
       {utility_domains(), advertising_domains(), analytics_domains()}) {
    for (const std::string_view d : pool) {
      EXPECT_TRUE(all.insert(d).second) << "duplicate third-party domain " << d;
      EXPECT_NE(d.find('.'), std::string_view::npos);
    }
  }
  EXPECT_GE(all.size(), 24u);
}

TEST(ThirdParty, ClassNamesMatchFigure) {
  EXPECT_EQ(transaction_class_name(TransactionClass::kApplication),
            "Application");
  EXPECT_EQ(transaction_class_name(TransactionClass::kUtilities), "Utilities");
  EXPECT_EQ(transaction_class_name(TransactionClass::kAdvertising),
            "Advertising");
  EXPECT_EQ(transaction_class_name(TransactionClass::kAnalytics), "Analytics");
}

TEST(AppCatalog, FiftyNamedAppsInFigureOrder) {
  const AppCatalog catalog(0);
  ASSERT_EQ(catalog.size(), 50u);
  EXPECT_EQ(catalog.app(0).name, "Weather");
  EXPECT_EQ(catalog.app(1).name, "Google-Maps");
  EXPECT_EQ(catalog.app(2).name, "Accuweather");
  EXPECT_EQ(catalog.app(49).name, "TV-Guide");
}

TEST(AppCatalog, PopularityDecreasesOverNamedApps) {
  const AppCatalog catalog(0);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog.app(static_cast<AppId>(i)).popularity_weight,
              catalog.app(static_cast<AppId>(i - 1)).popularity_weight);
  }
  // ~3 decades of spread across the 50 named apps.
  const double spread = catalog.app(0).popularity_weight /
                        catalog.app(49).popularity_weight;
  EXPECT_GT(spread, 100.0);
  EXPECT_LT(spread, 10000.0);
}

TEST(AppCatalog, LongTailAppended) {
  const AppCatalog catalog(40);
  EXPECT_EQ(catalog.size(), 90u);
  EXPECT_EQ(catalog.app(50).name, "LongTail-App-1");
  EXPECT_FALSE(catalog.app(50).domains.empty());
  // Tail weights sit below the top named apps.
  EXPECT_LT(catalog.app(50).popularity_weight,
            catalog.app(0).popularity_weight);
}

TEST(AppCatalog, TailSignatureCoverageIsPartial) {
  const AppCatalog catalog(100);
  std::size_t mapped = 0;
  for (std::size_t i = 50; i < catalog.size(); ++i) {
    if (catalog.app(static_cast<AppId>(i)).in_signature_table) ++mapped;
  }
  EXPECT_EQ(mapped, 75u);  // 3 out of 4
}

TEST(AppCatalog, DomainsAreUniqueAcrossNamedApps) {
  const AppCatalog catalog(0);
  std::set<std::string> seen;
  for (const AppInfo& app : catalog.apps()) {
    for (const std::string& d : app.domains) {
      EXPECT_TRUE(seen.insert(d).second) << "duplicate app domain " << d;
    }
  }
}

TEST(AppCatalog, FindByName) {
  const AppCatalog catalog(10);
  const auto id = catalog.find_by_name("WhatsApp");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(catalog.app(*id).category, Category::kCommunication);
  EXPECT_FALSE(catalog.find_by_name("Nonexistent").has_value());
}

TEST(AppCatalog, HealthAppsPreferWifi) {
  const AppCatalog catalog(0);
  for (const char* name : {"S-Health", "Sweatcoin", "Nike-Running"}) {
    const auto id = catalog.find_by_name(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_TRUE(catalog.app(*id).wifi_preferred) << name;
  }
}

TEST(AppCatalog, DeterministicConstruction) {
  const AppCatalog a(80);
  const AppCatalog b(80);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.app(static_cast<AppId>(i)).name,
              b.app(static_cast<AppId>(i)).name);
    EXPECT_EQ(a.app(static_cast<AppId>(i)).domains,
              b.app(static_cast<AppId>(i)).domains);
    EXPECT_DOUBLE_EQ(a.app(static_cast<AppId>(i)).popularity_weight,
                     b.app(static_cast<AppId>(i)).popularity_weight);
  }
}

TEST(AppCatalog, EveryCategoryRepresented) {
  const AppCatalog catalog(150);
  std::set<Category> seen;
  for (const AppInfo& app : catalog.apps()) seen.insert(app.category);
  EXPECT_EQ(seen.size(), kCategoryCount);
}

TEST(CompanionSignatures, CoverPaperFingerprints) {
  const auto sigs = companion_signatures();
  ASSERT_EQ(sigs.size(), 5u);
  std::set<std::string> names;
  for (const CompanionSignature& s : sigs) {
    names.insert(s.wearable);
    EXPECT_FALSE(s.domains.empty());
  }
  EXPECT_TRUE(names.contains("Fitbit"));
  EXPECT_TRUE(names.contains("Xiaomi-Band"));
  EXPECT_TRUE(names.contains("Strava-Wear"));
}

TEST(DeviceModels, TacsAreUnique) {
  const DeviceModelCatalog catalog;
  std::set<trace::Tac> tacs;
  for (const DeviceModel& m : catalog.models()) {
    EXPECT_FALSE(m.tacs.empty());
    for (const trace::Tac t : m.tacs) {
      EXPECT_TRUE(tacs.insert(t).second) << "duplicate TAC " << t;
      EXPECT_GE(t, 10'000'000u);  // 8 digits
      EXPECT_LE(t, 99'999'999u);
    }
  }
}

TEST(DeviceModels, ClassLookup) {
  const DeviceModelCatalog catalog;
  const auto wearables = catalog.models_of(DeviceClass::kSimWearable);
  const auto phones = catalog.models_of(DeviceClass::kSmartphone);
  EXPECT_GE(wearables.size(), 5u);
  EXPECT_GE(phones.size(), 8u);
  EXPECT_EQ(catalog.class_of_tac(wearables.front()->tacs.front()),
            DeviceClass::kSimWearable);
  EXPECT_FALSE(catalog.class_of_tac(12345678).has_value());
  EXPECT_EQ(catalog.model_of_tac(99999999), nullptr);
}

TEST(DeviceModels, DeviceRecordsCarryNoClassInformation) {
  const DeviceModelCatalog catalog;
  const auto records = catalog.to_device_records();
  std::size_t total_tacs = 0;
  for (const DeviceModel& m : catalog.models()) total_tacs += m.tacs.size();
  EXPECT_EQ(records.size(), total_tacs);
  // Each record resolves back to its model.
  for (const trace::DeviceRecord& r : records) {
    const DeviceModel* m = catalog.model_of_tac(r.tac);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(r.model, m->model);
    EXPECT_EQ(r.manufacturer, m->manufacturer);
    EXPECT_EQ(r.os, m->os);
  }
}

TEST(DeviceModels, NoAppleWearableInOperatorDb) {
  // The operator does not carry the Apple Watch 3 (paper §3.2).
  const DeviceModelCatalog catalog;
  for (const DeviceModel& m : catalog.models()) {
    if (m.device_class == DeviceClass::kSimWearable) {
      EXPECT_NE(m.manufacturer, "Apple");
    }
  }
}

}  // namespace
}  // namespace wearscope::appdb
