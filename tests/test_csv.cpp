// Unit tests for CSV escaping, parsing and the writer.
#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::util {
namespace {

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a b"), "a b");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParse, SimpleFields) {
  EXPECT_EQ(csv_parse_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv_parse_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(csv_parse_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvParse, QuotedFields) {
  EXPECT_EQ(csv_parse_line("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(csv_parse_line("\"say \"\"hi\"\"\""),
            (std::vector<std::string>{"say \"hi\""}));
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv_parse_line("\"abc"), ParseError);
}

TEST(CsvParse, RoundTripThroughEscape) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quote\"", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(csv_parse_line(line), fields);
}

TEST(CsvWriter, WritesRowsWithNewlines) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b,c"});
  w.row("x", 42, 3.5);
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "a,\"b,c\"");
  EXPECT_NE(text.find("x,42"), std::string::npos);
}

}  // namespace
}  // namespace wearscope::util
