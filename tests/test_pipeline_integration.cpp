// End-to-end integration: synthetic ISP -> logs -> full analysis pipeline.
//
// The central assertion of the whole reproduction lives here: at standard
// scale, every paper-claim check of every figure must pass.
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "simnet/simulator.h"
#include "trace/bundle.h"

namespace wearscope {
namespace {

/// Shared one-shot simulation + pipeline run (expensive, reused by tests).
class PipelineIntegration : public ::testing::Test {
 protected:
  struct Run {
    simnet::SimResult sim;
    core::StudyReport report;
  };

  static const Run& run() {
    static const Run r = [] {
      // Standard scale: the paper-claim bands are calibrated for thousands
      // of users; the small preset is too noisy for rank-style checks.
      const simnet::SimConfig cfg = simnet::SimConfig::standard();
      simnet::SimResult sim = simnet::Simulator(cfg).run();
      core::AnalysisOptions opt;
      opt.observation_days = sim.observation_days;
      opt.detailed_start_day = sim.detailed_start_day;
      opt.long_tail_apps = cfg.long_tail_apps;
      const core::Pipeline pipeline(sim.store, opt);
      core::StudyReport report = pipeline.run();
      return Run{std::move(sim), std::move(report)};
    }();
    return r;
  }
};

TEST_F(PipelineIntegration, AllFiguresPresent) {
  const core::StudyReport& rep = run().report;
  const std::vector<std::string> expected = {
      "fig2a", "fig2b", "fig3a", "fig3b", "fig3c", "fig3d",
      "fig4a", "fig4b", "fig4c", "fig4d", "fig5a", "fig5b",
      "fig6",  "fig7",  "fig8",  "sec6",  "cohorts", "retention",
      "protocol", "geography"};
  ASSERT_EQ(rep.figures.size(), expected.size());
  std::set<std::string> ids;
  for (const core::FigureData& f : rep.figures) ids.insert(f.id);
  for (const std::string& id : expected) {
    EXPECT_TRUE(ids.contains(id)) << "missing figure " << id;
    EXPECT_NO_THROW(rep.figure(id));
  }
  EXPECT_THROW(rep.figure("fig99"), std::out_of_range);
}

TEST_F(PipelineIntegration, EveryFigureHasChecksAndSeries) {
  for (const core::FigureData& f : run().report.figures) {
    EXPECT_FALSE(f.checks.empty()) << f.id;
    EXPECT_FALSE(f.series.empty()) << f.id;
    EXPECT_FALSE(f.title.empty()) << f.id;
  }
}

TEST_F(PipelineIntegration, AllPaperChecksPass) {
  const core::StudyReport& rep = run().report;
  for (const core::FigureData& f : rep.figures) {
    for (const core::Check& c : f.checks) {
      EXPECT_TRUE(c.pass()) << f.id << ": " << c.claim << " measured "
                            << c.measured << " outside [" << c.lo << ", "
                            << c.hi << "]";
    }
  }
  EXPECT_EQ(rep.failed_checks(), 0u);
}

TEST_F(PipelineIntegration, ReportTextMentionsEveryFigure) {
  const std::string text = run().report.to_text();
  for (const core::FigureData& f : run().report.figures) {
    EXPECT_NE(text.find(f.id), std::string::npos);
  }
}

TEST_F(PipelineIntegration, SeriesShapesAreSane) {
  const core::StudyReport& rep = run().report;
  // Fig 2a: one normalized point per observation day, last == 1.
  const core::Series& adoption = rep.figure("fig2a").series.front();
  EXPECT_EQ(adoption.y.size(),
            static_cast<std::size_t>(run().sim.observation_days));
  EXPECT_NEAR(adoption.y.back(), 1.0, 1e-9);
  // Fig 3a: hourly profiles carry 24 points; the day-of-week bars 7.
  for (const core::Series& s : rep.figure("fig3a").series) {
    if (s.labels.empty()) {
      EXPECT_EQ(s.y.size(), 24u) << s.name;
    } else {
      EXPECT_EQ(s.y.size(), 7u) << s.name;
    }
  }
  // CDFs are monotone in y and x.
  for (const char* id : {"fig3b", "fig3c", "fig4a", "fig4b", "fig4c"}) {
    for (const core::Series& s : rep.figure(id).series) {
      for (std::size_t i = 1; i < s.y.size(); ++i) {
        EXPECT_GE(s.y[i], s.y[i - 1]) << id << "/" << s.name;
        EXPECT_GE(s.x[i], s.x[i - 1] - 1e-9) << id << "/" << s.name;
      }
    }
  }
  // Shares sum to ~100% where they are exhaustive.
  const core::Series& cat_users = rep.figure("fig6").series.front();
  double total = 0.0;
  for (const double v : cat_users.y) total += v;
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST_F(PipelineIntegration, CsvExportWritesAllSeries) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("wearscope_pipeline_csv_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::size_t series_count = 0;
  for (const core::FigureData& f : run().report.figures) {
    f.write_csv(dir);
    series_count += f.series.size();
  }
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") ++files;
  }
  EXPECT_EQ(files, series_count);
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineIntegration, SurvivesSerializationRoundTrip) {
  // Persist the logs, reload them, re-run the pipeline: identical results.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("wearscope_pipeline_bundle_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  trace::save_bundle(run().sim.store, dir, trace::BundleFormat::kBinary);
  const trace::TraceStore reloaded = trace::load_bundle(dir);
  std::filesystem::remove_all(dir);

  core::AnalysisOptions opt;
  opt.observation_days = run().sim.observation_days;
  opt.detailed_start_day = run().sim.detailed_start_day;
  opt.long_tail_apps = run().sim.config.long_tail_apps;
  const core::Pipeline pipeline(reloaded, opt);
  const core::StudyReport rep = pipeline.run();
  ASSERT_EQ(rep.figures.size(), run().report.figures.size());
  for (std::size_t i = 0; i < rep.figures.size(); ++i) {
    const auto& a = rep.figures[i];
    const auto& b = run().report.figures[i];
    ASSERT_EQ(a.checks.size(), b.checks.size()) << a.id;
    for (std::size_t c = 0; c < a.checks.size(); ++c) {
      EXPECT_DOUBLE_EQ(a.checks[c].measured, b.checks[c].measured)
          << a.id << ": " << a.checks[c].claim;
    }
  }
}

TEST_F(PipelineIntegration, UnknownTrafficFractionIsRealistic) {
  // A quarter of the long tail is unmapped: unknown traffic must exist but
  // stay a minority (the authors' mapping covered most popular apps).
  const double frac = run().report.apps.unknown_traffic_fraction;
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.35);
}

TEST_F(PipelineIntegration, ThirdPartyClassesAllObserved) {
  for (const core::ClassStats& c : run().report.thirdparty.classes) {
    EXPECT_GT(c.txn_share_pct, 0.0);
    EXPECT_GT(c.data_share_pct, 0.0);
  }
}

}  // namespace
}  // namespace wearscope
