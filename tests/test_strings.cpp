// Unit tests for string utilities and DNS suffix matching.
#include "util/strings.h"

#include <unordered_map>
#include <utility>

#include <gtest/gtest.h>

namespace wearscope::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(HostSuffix, ExactAndSubdomain) {
  EXPECT_TRUE(host_matches_suffix("fitbit.com", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("api.fitbit.com", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("a.b.fitbit.com", "fitbit.com"));
}

TEST(HostSuffix, RejectsPartialLabelMatch) {
  // The classic trap: "notfitbit.com" must NOT match "fitbit.com".
  EXPECT_FALSE(host_matches_suffix("notfitbit.com", "fitbit.com"));
  EXPECT_FALSE(host_matches_suffix("fitbit.com.evil.com", "fitbit.com"));
  EXPECT_FALSE(host_matches_suffix("fitbit.org", "fitbit.com"));
}

TEST(HostSuffix, CaseInsensitive) {
  EXPECT_TRUE(host_matches_suffix("API.FitBit.COM", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("api.fitbit.com", "FITBIT.COM"));
}

TEST(HostSuffix, EmptyAndShort) {
  EXPECT_FALSE(host_matches_suffix("a.com", ""));
  EXPECT_FALSE(host_matches_suffix("", "a.com"));
  EXPECT_FALSE(host_matches_suffix("om", "a.com"));
}

TEST(RegistrableDomain, TwoLabelHosts) {
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("cdn.ads.example.com"), "example.com");
}

TEST(RegistrableDomain, TwoPartPublicSuffix) {
  EXPECT_EQ(registrable_domain("shop.example.co.uk"), "example.co.uk");
  EXPECT_EQ(registrable_domain("example.co.uk"), "example.co.uk");
}

TEST(RegistrableDomain, SingleLabel) {
  EXPECT_EQ(registrable_domain("localhost"), "localhost");
}

TEST(HasLabel, CompleteLabelsOnly) {
  EXPECT_TRUE(has_label("ads.server.com", "ads"));
  EXPECT_FALSE(has_label("roads.server.com", "ads"));
  EXPECT_TRUE(has_label("a.ADS.b", "ads"));
  EXPECT_FALSE(has_label("adserver.com", "ads"));
  EXPECT_FALSE(has_label("x.com", ""));
}

// --- allocation-free variants ----------------------------------------------

TEST(Strings, ToLowerIntoReusesBuffer) {
  std::string scratch;
  EXPECT_EQ(to_lower_into("AbC123", scratch), "abc123");
  EXPECT_EQ(scratch, "abc123");
  // A shorter input must fully replace the previous content.
  EXPECT_EQ(to_lower_into("XY", scratch), "xy");
  EXPECT_EQ(to_lower_into("", scratch), "");
}

TEST(RegistrableDomain, LowerVariantAgreesWithAllocatingPath) {
  const std::vector<std::string> hosts = {
      "example.com",     "cdn.ads.example.com", "shop.example.co.uk",
      "example.co.uk",   "localhost",           "a.b.c.d.example.com.au",
      "x.org.uk",        "co.uk",               "a..com",
      ".",               ".com",                ".co.uk",
      "a.",              "x",                   "deep.chain.of.labels.net"};
  for (const std::string& h : hosts) {
    // The inputs are already lower-case and trimmed, so both paths must
    // agree exactly.
    EXPECT_EQ(std::string(registrable_domain_of_lower(h)),
              registrable_domain(h))
        << h;
  }
}

TEST(RegistrableDomain, LowerVariantReturnsViewIntoInput) {
  const std::string host = "cdn.ads.example.com";
  const std::string_view reg = registrable_domain_of_lower(host);
  EXPECT_EQ(reg, "example.com");
  EXPECT_GE(reg.data(), host.data());
  EXPECT_LE(reg.data() + reg.size(), host.data() + host.size());
}

TEST(HasLabel, LowerVariantAgreesWithAllocatingPath) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"ads.server.com", "ads"},  {"roads.server.com", "ads"},
      {"adserver.com", "ads"},    {"metrics.a.b", "metrics"},
      {"a.b.metrics", "metrics"}, {"telemetry", "telemetry"},
      {"x.com", "y"}};
  for (const auto& [host, token] : cases) {
    EXPECT_EQ(has_label_lower(host, token), has_label(host, token))
        << host << " / " << token;
  }
}

TEST(Strings, TransparentHashLooksUpWithoutConversion) {
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> map;
  map.emplace("fitbit.com", 1);
  const std::string_view probe = "fitbit.com";
  const auto it = map.find(probe);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 1);
  EXPECT_EQ(map.find(std::string_view("nope")), map.end());
}

}  // namespace
}  // namespace wearscope::util
