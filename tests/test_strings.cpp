// Unit tests for string utilities and DNS suffix matching.
#include "util/strings.h"

#include <gtest/gtest.h>

namespace wearscope::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(HostSuffix, ExactAndSubdomain) {
  EXPECT_TRUE(host_matches_suffix("fitbit.com", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("api.fitbit.com", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("a.b.fitbit.com", "fitbit.com"));
}

TEST(HostSuffix, RejectsPartialLabelMatch) {
  // The classic trap: "notfitbit.com" must NOT match "fitbit.com".
  EXPECT_FALSE(host_matches_suffix("notfitbit.com", "fitbit.com"));
  EXPECT_FALSE(host_matches_suffix("fitbit.com.evil.com", "fitbit.com"));
  EXPECT_FALSE(host_matches_suffix("fitbit.org", "fitbit.com"));
}

TEST(HostSuffix, CaseInsensitive) {
  EXPECT_TRUE(host_matches_suffix("API.FitBit.COM", "fitbit.com"));
  EXPECT_TRUE(host_matches_suffix("api.fitbit.com", "FITBIT.COM"));
}

TEST(HostSuffix, EmptyAndShort) {
  EXPECT_FALSE(host_matches_suffix("a.com", ""));
  EXPECT_FALSE(host_matches_suffix("", "a.com"));
  EXPECT_FALSE(host_matches_suffix("om", "a.com"));
}

TEST(RegistrableDomain, TwoLabelHosts) {
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("cdn.ads.example.com"), "example.com");
}

TEST(RegistrableDomain, TwoPartPublicSuffix) {
  EXPECT_EQ(registrable_domain("shop.example.co.uk"), "example.co.uk");
  EXPECT_EQ(registrable_domain("example.co.uk"), "example.co.uk");
}

TEST(RegistrableDomain, SingleLabel) {
  EXPECT_EQ(registrable_domain("localhost"), "localhost");
}

TEST(HasLabel, CompleteLabelsOnly) {
  EXPECT_TRUE(has_label("ads.server.com", "ads"));
  EXPECT_FALSE(has_label("roads.server.com", "ads"));
  EXPECT_TRUE(has_label("a.ADS.b", "ads"));
  EXPECT_FALSE(has_label("adserver.com", "ads"));
  EXPECT_FALSE(has_label("x.com", ""));
}

}  // namespace
}  // namespace wearscope::util
