// Unit tests for wearable identification from the DeviceDB.
#include "core/device_id.h"

#include <gtest/gtest.h>

namespace wearscope::core {
namespace {

std::vector<trace::DeviceRecord> sample_db() {
  return {
      {35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {35254209, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {35909306, "Watch Urbane 2nd Edition LTE", "LG", "Android Wear"},
      {35332008, "iPhone 7", "Apple", "iOS"},
      {35831108, "Galaxy S8", "Samsung", "Android"},
  };
}

TEST(DeviceClassifier, WearablesByModelList) {
  const DeviceClassifier c(sample_db());
  EXPECT_EQ(c.classify(35254208), DeviceKind::kSimWearable);
  EXPECT_EQ(c.classify(35254209), DeviceKind::kSimWearable);
  EXPECT_EQ(c.classify(35909306), DeviceKind::kSimWearable);
  EXPECT_TRUE(c.is_wearable(35254208));
  EXPECT_EQ(c.wearable_tacs().size(), 3u);
}

TEST(DeviceClassifier, PhonesAreOtherEvenFromWearableVendors) {
  const DeviceClassifier c(sample_db());
  EXPECT_EQ(c.classify(35831108), DeviceKind::kOther);  // Samsung phone
  EXPECT_EQ(c.classify(35332008), DeviceKind::kOther);  // iPhone
  EXPECT_FALSE(c.is_wearable(35831108));
}

TEST(DeviceClassifier, UnknownTacs) {
  const DeviceClassifier c(sample_db());
  EXPECT_EQ(c.classify(99999999), DeviceKind::kUnknown);
}

TEST(DeviceClassifier, MatchIsCaseInsensitive) {
  std::vector<trace::DeviceRecord> db = {
      {1, "GEAR S3 FRONTIER LTE", "SAMSUNG", "Tizen"}};
  const DeviceClassifier c(db);
  EXPECT_TRUE(c.is_wearable(1));
}

TEST(DeviceClassifier, AppleWatchListedButAbsentFromDb) {
  // The curated list includes the Apple Watch 3, but the operator's DB has
  // no such row (paper §3.2) — so no TAC ever classifies as an Apple
  // wearable.
  bool apple_listed = false;
  for (const WearableModelEntry& e : curated_wearable_models()) {
    if (e.manufacturer == "Apple") apple_listed = true;
  }
  EXPECT_TRUE(apple_listed);
  const DeviceClassifier c(sample_db());
  for (const trace::Tac t : c.wearable_tacs()) {
    EXPECT_NE(t, 35332008u);
  }
}

TEST(DeviceClassifier, EmptyDb) {
  const DeviceClassifier c({});
  EXPECT_EQ(c.classify(1), DeviceKind::kUnknown);
  EXPECT_TRUE(c.wearable_tacs().empty());
  EXPECT_EQ(c.device_rows(), 0u);
}

TEST(DeviceClassifier, FromManufacturersOverMatches) {
  const std::vector<std::string_view> vendors = {"Samsung", "LG"};
  const DeviceClassifier naive =
      DeviceClassifier::from_manufacturers(sample_db(), vendors);
  // The naive manufacturer classifier tags the Galaxy S8 phone too.
  EXPECT_TRUE(naive.is_wearable(35831108));
  EXPECT_TRUE(naive.is_wearable(35254208));
  EXPECT_FALSE(naive.is_wearable(35332008));  // Apple phone stays out
  const DeviceClassifier curated(sample_db());
  EXPECT_GT(naive.wearable_tacs().size(), curated.wearable_tacs().size());
}

}  // namespace
}  // namespace wearscope::core
