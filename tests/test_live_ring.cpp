// Concurrency tests for live::RingBuffer: ordered transfer under the
// pathological capacity-1 configuration, shutdown while either side is
// blocked, and backpressure counter accounting.  These are the tests the
// TSan gate (WEARSCOPE_SANITIZE=thread) is expected to exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "chaos/fault_plan.h"
#include "live/ring_buffer.h"
#include "test_support.h"

namespace {

using wearscope::live::RingBuffer;
using wearscope::live::RingStats;

// Spin until `pred` holds or ~2s elapse; returns whether it held.  Used to
// wait for a peer thread to reach a blocking call without sleeping blind.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(LiveRing, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::exception);
}

TEST(LiveRing, SingleThreadFifo) {
  RingBuffer<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(LiveRing, WrapAroundKeepsOrder) {
  RingBuffer<int> ring(3);
  int v = -1;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.push(2 * round));
    ASSERT_TRUE(ring.push(2 * round + 1));
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2 * round);
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2 * round + 1);
  }
}

TEST(LiveRing, CapacityOneStressTransfersInOrder) {
  // Capacity 1 forces a blocking rendezvous on nearly every element, which
  // is the harshest possible workout for the park/wake handshake.
  constexpr std::uint64_t kCount = 200'000;
  RingBuffer<std::uint64_t> ring(1);
  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t v = 0;
    while (ring.pop(v)) {
      if (v != expected++) {
        ok.store(false);
        return;
      }
    }
    if (expected != kCount) ok.store(false);
  });
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(ring.push(i));
  ring.close();
  consumer.join();
  EXPECT_TRUE(ok.load());
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushed, kCount);
  EXPECT_EQ(s.popped, kCount);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(LiveRing, CloseWakesBlockedConsumer) {
  RingBuffer<int> ring(8);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int v = 0;
    const bool got = ring.pop(v);  // Blocks: ring is empty.
    EXPECT_FALSE(got);
    returned.store(true);
  });
  // Give the consumer time to actually park, then close.
  ASSERT_TRUE(eventually([&] { return ring.stats().consumer_waits > 0; }));
  ring.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(LiveRing, CloseWakesBlockedProducer) {
  RingBuffer<int> ring(1);
  ASSERT_TRUE(ring.push(42));  // Ring is now full.
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    const bool accepted = ring.push(43);  // Blocks: ring is full.
    EXPECT_FALSE(accepted);
    returned.store(true);
  });
  ASSERT_TRUE(eventually([&] { return ring.stats().producer_waits > 0; }));
  ring.close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The element published before close() must still drain.
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(ring.pop(v));
  EXPECT_EQ(ring.stats().rejected, 1u);
}

TEST(LiveRing, PushAfterCloseIsRejectedAndCounted) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.push(1));
  ring.close();
  EXPECT_FALSE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushed, 1u);
  EXPECT_EQ(s.rejected, 2u);
  int v = 0;
  EXPECT_TRUE(ring.pop(v));  // Pre-close element survives.
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(ring.pop(v));
}

TEST(LiveRing, CloseIsIdempotent) {
  RingBuffer<int> ring(2);
  ring.close();
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.push(1));
}

TEST(LiveRing, BackpressureCountersMatchBlockingEpisodes) {
  // With a fast producer and a deliberately slow consumer on a small ring,
  // the producer must record wait episodes; totals must balance.
  constexpr std::uint64_t kCount = 5'000;
  RingBuffer<std::uint64_t> ring(2);
  std::thread consumer([&] {
    std::uint64_t v = 0;
    std::uint64_t n = 0;
    while (ring.pop(v)) {
      if (++n % 512 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(ring.push(i));
  ring.close();
  consumer.join();
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushed, kCount);
  EXPECT_EQ(s.popped, kCount);
  EXPECT_GT(s.producer_waits, 0u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(LiveRing, StatsAggregationSums) {
  RingStats a;
  a.pushed = 3;
  a.producer_waits = 1;
  RingStats b;
  b.pushed = 4;
  b.popped = 2;
  b.rejected = 5;
  a += b;
  EXPECT_EQ(a.pushed, 7u);
  EXPECT_EQ(a.popped, 2u);
  EXPECT_EQ(a.producer_waits, 1u);
  EXPECT_EQ(a.rejected, 5u);
}

TEST(LiveRing, ChaosStallScheduleStressExactTotals) {
  // Seeded slow-consumer stalls against a burst-happy producer on a tiny
  // ring: the schedule is a pure function of (seed, i), so both threads
  // derive their misbehavior independently, with no shared state beyond
  // the ring itself.  Every record must still arrive in order, no wakeup
  // may be lost (the test would hang), and the totals must balance to the
  // last element.  This is the chaos case the TSan gate leans on.
  constexpr std::uint64_t kCount = 40'000;
  const std::uint64_t seed = wearscope::testing::seed_or(0xC4A05);
  WEARSCOPE_SCOPED_SEED(seed);
  const wearscope::chaos::StallSchedule sched =
      wearscope::chaos::FaultPlan(
          seed, wearscope::chaos::FaultProfile::named("io"))
          .stall_schedule();
  RingBuffer<std::uint64_t> ring(4);
  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; ring.pop(v); ++i) {
      const std::uint32_t stall = sched.stall_us(i);
      if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(stall));
      }
      if (v != expected++) {
        ok.store(false);
        return;
      }
    }
    if (expected != kCount) ok.store(false);
  });
  std::uint64_t next = 0;
  for (std::uint64_t i = 0; next < kCount; ++i) {
    // A burst shoves several records back-to-back before the next
    // scheduling point — the producer-side pressure spike.
    const std::uint64_t burst = 1 + sched.burst_len(i);
    for (std::uint64_t b = 0; b < burst && next < kCount; ++b) {
      ASSERT_TRUE(ring.push(next++));
    }
  }
  ring.close();
  consumer.join();
  EXPECT_TRUE(ok.load());
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushed, kCount);
  EXPECT_EQ(s.popped, kCount);
  EXPECT_EQ(s.rejected, 0u);
  // A capacity-4 ring against scheduled stalls must have parked the
  // producer at least once; otherwise the schedule exercised nothing.
  EXPECT_GT(s.producer_waits, 0u);
}

TEST(LiveRing, MoveOnlyPayload) {
  // Events are moved through the ring; verify a move-only type compiles
  // and transfers ownership intact.
  RingBuffer<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
