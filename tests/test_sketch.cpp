// Unit tests for wearscope::sketch — accuracy bounds, loss-free merges
// and determinism for the three bounded-memory summaries the live engine
// swaps in for its O(users) hash sets (HLL distinct counts, t-digest
// quantiles, count-min heavy hitters).  The error budgets asserted here
// are the ones docs/DESIGN.md promises: 2% on distinct counts, 1% on
// p50/p95/p99, exact top-k while distinct keys fit the candidate table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sketch/countmin.h"
#include "sketch/hashing.h"
#include "sketch/hll.h"
#include "sketch/tdigest.h"
#include "test_support.h"
#include "util/rng.h"

namespace wearscope::sketch {
namespace {

double rel_err(double estimate, double exact) {
  return exact == 0.0 ? std::abs(estimate) : std::abs(estimate - exact) / exact;
}

TEST(Hll, SmallCardinalitiesAreNearExact) {
  // Linear counting kicks in well below m = 4096 registers; tiny streams
  // come out near-exact (a handful of register collisions is the only
  // noise source, so allow a few absolute counts of slack).
  for (std::uint64_t n : {0ull, 1ull, 2ull, 10ull, 100ull}) {
    Hll hll;
    for (std::uint64_t i = 0; i < n; ++i) hll.add(i);
    EXPECT_NEAR(hll.estimate(), static_cast<double>(n),
                std::max(1.0, 0.05 * static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(Hll, DuplicatesDoNotInflateTheEstimate) {
  Hll hll;
  for (int pass = 0; pass < 50; ++pass) {
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(i);
  }
  EXPECT_LT(rel_err(hll.estimate(), 1000.0), 0.02);
}

TEST(Hll, StaysWithinTwoPercentAcrossCardinalities) {
  const std::uint64_t seed = testing::seed_or(0x5E7C4);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  for (std::uint64_t n : {5'000ull, 50'000ull, 500'000ull}) {
    Hll hll;
    // Random 64-bit draws: collisions are negligible at these sizes, so
    // the distinct count is n to within a hair.
    for (std::uint64_t i = 0; i < n; ++i) hll.add(rng.next_u64());
    EXPECT_LT(rel_err(hll.estimate(), static_cast<double>(n)), 0.02)
        << "n=" << n << " estimate=" << hll.estimate();
  }
}

TEST(Hll, MergeEqualsUnionSketch) {
  // Register-wise max is exactly the sketch of the union, so a merged
  // pair must match the single sketch over the concatenated stream —
  // bitwise, not just approximately.
  Hll a, b, whole;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    const std::uint64_t item = util::splitmix64(i);
    (i % 2 == 0 ? a : b).add(item);
    whole.add(item);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), whole.estimate());
}

TEST(Hll, MemoryIsFlat) {
  Hll hll;
  const std::size_t before = hll.memory_bytes();
  EXPECT_EQ(before, std::size_t{1} << kHllPrecision);
  for (std::uint64_t i = 0; i < 100'000; ++i) hll.add(i);
  EXPECT_EQ(hll.memory_bytes(), before);
}

TEST(TDigest, EmptyAndSingleton) {
  TDigest d;
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.count(), 0.0);
  d.add(42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(d.count(), 1.0);
}

TEST(TDigest, UniformQuantilesWithinOnePercent) {
  const std::uint64_t seed = testing::seed_or(0x7D16);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  TDigest d;
  std::vector<double> values;
  values.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) {
    const double v = rng.uniform(0.0, 1'000'000.0);
    d.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_LT(rel_err(d.quantile(q), exact), 0.01) << "q=" << q;
  }
}

TEST(TDigest, HeavyTailQuantilesWithinOnePercent) {
  // Transaction sizes are the real workload: log-normal-ish with a long
  // tail.  The arcsine scale function keeps the tail quantiles tight.
  const std::uint64_t seed = testing::seed_or(0x7A11);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  TDigest d;
  std::vector<double> values;
  values.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.lognormal(7.0, 1.5);
    d.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_LT(rel_err(d.quantile(q), exact), 0.01) << "q=" << q;
  }
}

TEST(TDigest, QuantilesAreMonotone) {
  const std::uint64_t seed = testing::seed_or(0x7D17);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  TDigest d;
  for (int i = 0; i < 50'000; ++i) d.add(rng.normal(100.0, 25.0));
  double last = d.quantile(0.0);
  for (double q = 0.05; q <= 1.0001; q += 0.05) {
    const double now = d.quantile(std::min(q, 1.0));
    EXPECT_GE(now, last) << "q=" << q;
    last = now;
  }
}

TEST(TDigest, MergePreservesAccuracyAndCount) {
  const std::uint64_t seed = testing::seed_or(0x7D18);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  TDigest shard_a, shard_b, shard_c;
  std::vector<double> values;
  for (int i = 0; i < 90'000; ++i) {
    const double v = rng.exponential(0.001);
    values.push_back(v);
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).add(v);
  }
  shard_a.merge(shard_b);
  shard_a.merge(shard_c);
  EXPECT_DOUBLE_EQ(shard_a.count(), 90'000.0);
  std::sort(values.begin(), values.end());
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_LT(rel_err(shard_a.quantile(q), exact), 0.01) << "q=" << q;
  }
}

TEST(TDigest, DeterministicForAFixedStream) {
  const auto run = [] {
    util::Pcg32 rng(99);
    TDigest d(100.0);
    for (int i = 0; i < 10'000; ++i) d.add(rng.uniform(0.0, 1.0));
    return d.quantile(0.95);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TDigest, MemoryStaysBounded) {
  TDigest d;
  for (int i = 0; i < 1'000'000; ++i) d.add(static_cast<double>(i));
  // ~2 * compression centroids + the 512-slot buffer, at 16 bytes each:
  // far under 64 KiB however long the stream runs.
  EXPECT_LT(d.memory_bytes(), std::size_t{64} * 1024);
}

TEST(CountMin, NeverUnderestimates) {
  const std::uint64_t seed = testing::seed_or(0xC0C0);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  CountMin cm;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t hash = mix64(rng.next_u64());
    const auto count = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    cm.add_hashed(hash, count);
    truth.emplace_back(hash, count);
  }
  for (const auto& [hash, count] : truth) {
    EXPECT_GE(cm.estimate(hash), count);
  }
}

TEST(CountMin, SparseKeysAreExact) {
  // 500 keys across 4 x 8192 counters: collisions in all four rows at
  // once are essentially impossible, so min-of-rows returns the truth.
  CountMin cm;
  for (std::uint64_t k = 0; k < 500; ++k) cm.add_hashed(mix64(k), k + 1);
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(cm.estimate(mix64(k)), k + 1) << "key " << k;
  }
}

TEST(CountMin, MergeIsElementwiseSum) {
  CountMin a, b;
  a.add_hashed(mix64(1), 10);
  a.add_hashed(mix64(2), 20);
  b.add_hashed(mix64(1), 5);
  b.add_hashed(mix64(3), 7);
  a.merge(b);
  EXPECT_EQ(a.estimate(mix64(1)), 15u);
  EXPECT_EQ(a.estimate(mix64(2)), 20u);
  EXPECT_EQ(a.estimate(mix64(3)), 7u);
}

TEST(HeavyHitters, ExactTopKWhileUnderCapacity) {
  // The live layer tracks a few hundred app names against a 4096-slot
  // table, so this is the regime that matters: counts stay exact and
  // top(k) is the true top-k.
  HeavyHitters hh(64);
  for (int app = 0; app < 40; ++app) {
    const std::string key = "app" + std::to_string(app);
    for (int i = 0; i <= app; ++i) hh.add(key);
  }
  const auto top = hh.top(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].first, "app39");
  EXPECT_EQ(top[0].second, 40u);
  EXPECT_EQ(top[4].first, "app35");
  EXPECT_EQ(top[4].second, 36u);
}

TEST(HeavyHitters, TiesBreakByKeyAscending) {
  HeavyHitters hh;
  hh.add("zeta", 3);
  hh.add("alpha", 3);
  hh.add("mid", 5);
  const auto top = hh.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "mid");
  EXPECT_EQ(top[1].first, "alpha");
  EXPECT_EQ(top[2].first, "zeta");
}

TEST(HeavyHitters, OverCapacityStillKeepsTheHeavyKeys) {
  const std::uint64_t seed = testing::seed_or(0x4EA7);
  WEARSCOPE_SCOPED_SEED(seed);
  util::Pcg32 rng(seed);
  HeavyHitters hh(128);
  // 16 genuinely heavy keys buried in a churn of 4000 singletons.
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 16; ++k) hh.add("heavy" + std::to_string(k));
  }
  for (int i = 0; i < 4000; ++i) {
    hh.add("noise" + std::to_string(rng.next_u32() % 100'000));
  }
  EXPECT_LE(hh.size(), 128u);
  const auto top = hh.top(16);
  std::set<std::string> names;
  for (const auto& [name, count] : top) {
    names.insert(name);
    EXPECT_GE(count, 1000u);  // CM estimates never underestimate.
  }
  for (int k = 0; k < 16; ++k) {
    EXPECT_TRUE(names.contains("heavy" + std::to_string(k))) << "k=" << k;
  }
}

TEST(HeavyHitters, MergeFoldsCandidatesDeterministically) {
  const auto build = [](bool split) {
    HeavyHitters whole(64);
    HeavyHitters a(64), b(64);
    for (int k = 0; k < 30; ++k) {
      const std::string key = "app" + std::to_string(k);
      const auto count = static_cast<std::uint64_t>(3 * k + 1);
      if (split) {
        a.add(key, count / 2);
        b.add(key, count - count / 2);
      } else {
        whole.add(key, count);
      }
    }
    if (split) {
      a.merge(b);
      return a.top(30);
    }
    return whole.top(30);
  };
  const auto merged = build(true);
  const auto direct = build(false);
  ASSERT_EQ(merged.size(), direct.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].first, direct[i].first) << "row " << i;
    EXPECT_EQ(merged[i].second, direct[i].second) << "row " << i;
  }
}

TEST(Hashing, Mix64AvalanchesAndHashBytesSeeds) {
  // Sanity, not statistics: nearby inputs land far apart and the seed
  // actually participates.
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(hash_bytes("whatsapp"), hash_bytes("whatsapq"));
  EXPECT_NE(hash_bytes("whatsapp", 0), hash_bytes("whatsapp", 1));
  EXPECT_EQ(hash_bytes("whatsapp"), hash_bytes("whatsapp"));
}

}  // namespace
}  // namespace wearscope::sketch
