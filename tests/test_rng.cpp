// Unit tests for the deterministic PCG generator and its samplers.
#include "util/rng.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::util {
namespace {

TEST(Pcg32, SameSeedSameStream) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(123, 7);
  Pcg32 b(124, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, UniformIntBoundsInclusive) {
  Pcg32 rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, UniformIntDegenerateRange) {
  Pcg32 rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(7, 3), 7);  // lo>=hi returns lo
}

TEST(Pcg32, UniformIntRoughlyUniform) {
  Pcg32 rng(2);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    counts[static_cast<std::size_t>(rng.uniform_int(0, 9))]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Pcg32, BernoulliEdges) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Pcg32, BernoulliRate) {
  Pcg32 rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Pcg32, NormalShifted) {
  Pcg32 rng(6);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Pcg32, LognormalMean) {
  Pcg32 rng(7);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = 1.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.08);
}

TEST(Pcg32, ExponentialMean) {
  Pcg32 rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Pcg32, PoissonSmallMean) {
  Pcg32 rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.poisson(3.5);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 3.5, 0.15);  // var == mean
}

TEST(Pcg32, PoissonLargeMeanUsesNormalApprox) {
  Pcg32 rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Pcg32, PoissonZeroMean) {
  Pcg32 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Pcg32, ZipfRankZeroMostLikely) {
  Pcg32 rng(12);
  std::array<int, 20> counts{};
  for (int i = 0; i < 100000; ++i) counts[rng.zipf(20, 1.2)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], counts[19] * 10);
}

TEST(Pcg32, ZipfSingleOutcome) {
  Pcg32 rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.1), 0u);
}

TEST(Pcg32, WeightedIndexRespectsWeights) {
  Pcg32 rng(14);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Pcg32, WeightedIndexAllZeroFallsBack) {
  Pcg32 rng(15);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(w), 0u);
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(16);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Pcg32, ForkIsDeterministicAndIndependent) {
  const Pcg32 base(42);
  Pcg32 f1 = base.fork(1);
  Pcg32 f1b = base.fork(1);
  Pcg32 f2 = base.fork(2);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next_u32() == f2.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Splitmix64, KnownAvalanche) {
  // Adjacent inputs must produce wildly different outputs.
  const std::uint64_t a = splitmix64(1);
  const std::uint64_t b = splitmix64(2);
  EXPECT_NE(a, b);
  EXPECT_GT(std::popcount(a ^ b), 16);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> w = {0.5, 0.25, 0.25};
  DiscreteSampler sampler(w);
  ASSERT_EQ(sampler.size(), 3u);
  EXPECT_NEAR(sampler.probability(0), 0.5, 1e-12);
  Pcg32 rng(17);
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[sampler.sample(rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
}

TEST(DiscreteSampler, UnnormalizedWeights) {
  const std::vector<double> w = {2.0, 6.0};
  DiscreteSampler sampler(w);
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(DiscreteSampler, SingleOutcome) {
  DiscreteSampler sampler(std::vector<double>{3.0});
  Pcg32 rng(18);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, RejectsBadInput) {
  EXPECT_THROW(DiscreteSampler(std::vector<double>{}), ConfigError);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{0.0, 0.0}), ConfigError);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{1.0, -1.0}), ConfigError);
}

/// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, DoubleMeanIsHalf) {
  Pcg32 rng(GetParam());
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST_P(RngSeedSweep, ForkKeyZeroIsStillUsable) {
  Pcg32 base(GetParam());
  Pcg32 f = base.fork(0);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += f.next_double();
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xdeadbeef,
                                           987654321, 0));

}  // namespace
}  // namespace wearscope::util
