// Unit tests for app identification and endpoint classification.
#include "core/app_id.h"

#include <gtest/gtest.h>

namespace wearscope::core {
namespace {

class AppIdTest : public ::testing::Test {
 protected:
  appdb::AppCatalog catalog_{20};
  AppSignatureTable table_{catalog_};
};

TEST_F(AppIdTest, ExactDomainMatches) {
  const auto id = table_.match_app("api.weather.com");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(table_.app_name(*id), "Weather");
}

TEST_F(AppIdTest, SubdomainMatches) {
  const auto id = table_.match_app("cdn7.e1.whatsapp.net");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(table_.app_name(*id), "WhatsApp");
}

TEST_F(AppIdTest, CaseInsensitiveMatch) {
  const auto id = table_.match_app("API.Weather.COM");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(table_.app_name(*id), "Weather");
}

TEST_F(AppIdTest, UnknownHostHasNoApp) {
  EXPECT_FALSE(table_.match_app("random.unknown.example").has_value());
  EXPECT_FALSE(table_.match_app("weather.com.evil.example").has_value());
}

TEST_F(AppIdTest, ClassifyFirstParty) {
  const EndpointClass e = table_.classify_host("api.accuweather.com");
  EXPECT_EQ(e.cls, appdb::TransactionClass::kApplication);
  EXPECT_EQ(table_.app_name(e.app), "Accuweather");
}

TEST_F(AppIdTest, ClassifyThirdPartyPools) {
  EXPECT_EQ(table_.classify_host("img3.cloudfront.net").cls,
            appdb::TransactionClass::kUtilities);
  EXPECT_EQ(table_.classify_host("pubads.doubleclick.net").cls,
            appdb::TransactionClass::kAdvertising);
  EXPECT_EQ(table_.classify_host("ssl.google-analytics.com").cls,
            appdb::TransactionClass::kAnalytics);
}

TEST_F(AppIdTest, ClassifyByHeuristicLabels) {
  EXPECT_EQ(table_.classify_host("ads.tinyvendor.example").cls,
            appdb::TransactionClass::kAdvertising);
  EXPECT_EQ(table_.classify_host("metrics.tinyvendor.example").cls,
            appdb::TransactionClass::kAnalytics);
  EXPECT_EQ(table_.classify_host("telemetry.vendor.example").cls,
            appdb::TransactionClass::kAnalytics);
  // Labels must be whole: "roads" is not "ads".
  EXPECT_EQ(table_.classify_host("roads.googleapis.com").cls,
            appdb::TransactionClass::kApplication);
}

TEST_F(AppIdTest, UnknownFirstPartyDefaultsToApplication) {
  const EndpointClass e = table_.classify_host("api.obscureapp.example");
  EXPECT_EQ(e.cls, appdb::TransactionClass::kApplication);
  EXPECT_EQ(e.app, kUnknownApp);
  EXPECT_EQ(table_.app_name(e.app), "Unknown");
}

TEST_F(AppIdTest, UnmappedTailAppsStayUnknown) {
  // Tail apps 4, 8, 12, ... (0-based i%4==3) are not in the table.
  bool found_unmapped = false;
  for (const appdb::AppInfo& app : catalog_.apps()) {
    if (!app.in_signature_table) {
      EXPECT_FALSE(table_.match_app(app.domains.front()).has_value());
      found_unmapped = true;
    }
  }
  EXPECT_TRUE(found_unmapped);
}

TEST_F(AppIdTest, CategoriesResolve) {
  const auto id = table_.match_app("pay.samsung.com");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(table_.app_category(*id), appdb::Category::kShopping);
  EXPECT_FALSE(table_.app_category(kUnknownApp).has_value());
}

TEST_F(AppIdTest, CoverageFractionShrinksTable) {
  const AppSignatureTable full(catalog_, 1.0);
  const AppSignatureTable half(catalog_, 0.5);
  const AppSignatureTable none(catalog_, 0.0);
  EXPECT_GT(full.rule_count(), half.rule_count());
  EXPECT_EQ(none.rule_count(), 0u);
  EXPECT_NEAR(static_cast<double>(half.rule_count()),
              static_cast<double>(full.rule_count()) / 2.0, 1.0);
  EXPECT_GE(full.mapped_app_count(), 50u);
}

// --- temporal-proximity attribution ---------------------------------------

trace::ProxyRecord rec(util::SimTime t, const char* host) {
  trace::ProxyRecord r;
  r.timestamp = t;
  r.user_id = 1;
  r.host = host;
  r.bytes_down = 100;
  return r;
}

TEST_F(AppIdTest, ThirdPartyInheritsNearbyAppWithinWindow) {
  const std::vector<trace::ProxyRecord> recs = {
      rec(1000, "api.weather.com"),
      rec(1010, "pubads.doubleclick.net"),
      rec(1020, "ssl.google-analytics.com"),
  };
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  const auto classes = attribute_user_stream(table_, ptrs, 120);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(table_.app_name(classes[0].app), "Weather");
  EXPECT_EQ(table_.app_name(classes[1].app), "Weather");
  EXPECT_EQ(classes[1].cls, appdb::TransactionClass::kAdvertising);
  EXPECT_EQ(table_.app_name(classes[2].app), "Weather");
}

TEST_F(AppIdTest, ThirdPartyOutsideWindowStaysUnknown) {
  const std::vector<trace::ProxyRecord> recs = {
      rec(1000, "api.weather.com"),
      rec(5000, "pubads.doubleclick.net"),  // 4000 s away
  };
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  const auto classes = attribute_user_stream(table_, ptrs, 120);
  EXPECT_EQ(classes[1].app, kUnknownApp);
  EXPECT_EQ(classes[1].cls, appdb::TransactionClass::kAdvertising);
}

TEST_F(AppIdTest, NearestAnchorWins) {
  const std::vector<trace::ProxyRecord> recs = {
      rec(1000, "api.weather.com"),
      rec(1100, "pubads.doubleclick.net"),
      rec(1110, "e1.whatsapp.net"),
  };
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  const auto classes = attribute_user_stream(table_, ptrs, 120);
  EXPECT_EQ(table_.app_name(classes[1].app), "WhatsApp");  // 10 s vs 100 s
}

TEST_F(AppIdTest, UnknownFirstPartyIsNotReattributed) {
  // First-party traffic of unmapped apps must NOT be stolen by proximity:
  // it belongs to a different (unknown) app, not to a nearby known one.
  const std::vector<trace::ProxyRecord> recs = {
      rec(1000, "api.weather.com"),
      rec(1010, "api.obscureapp.example"),
  };
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  const auto classes = attribute_user_stream(table_, ptrs, 120);
  EXPECT_EQ(classes[1].app, kUnknownApp);
}

TEST_F(AppIdTest, StreamWithNoAnchorsStaysUnknown) {
  const std::vector<trace::ProxyRecord> recs = {
      rec(1000, "pubads.doubleclick.net"),
      rec(1010, "ssl.google-analytics.com"),
  };
  std::vector<const trace::ProxyRecord*> ptrs;
  for (const auto& r : recs) ptrs.push_back(&r);
  const auto classes = attribute_user_stream(table_, ptrs, 120);
  for (const EndpointClass& c : classes) EXPECT_EQ(c.app, kUnknownApp);
}

TEST_F(AppIdTest, EmptyStream) {
  const auto classes = attribute_user_stream(table_, {}, 120);
  EXPECT_TRUE(classes.empty());
}

}  // namespace
}  // namespace wearscope::core
