// Unit tests for the figure/check reporting model.
#include "core/report.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace wearscope::core {
namespace {

TEST(Check, PassWithinBandInclusive) {
  const Check c = make_check("x", 1.0, 0.5, 0.5, 1.5);
  EXPECT_TRUE(c.pass());
  EXPECT_TRUE(make_check("x", 1.0, 1.5, 0.5, 1.5).pass());
  EXPECT_FALSE(make_check("x", 1.0, 1.6, 0.5, 1.5).pass());
  EXPECT_FALSE(make_check("x", 1.0, 0.4, 0.5, 1.5).pass());
}

TEST(Figure, AllPass) {
  FigureData fig;
  fig.checks.push_back(make_check("a", 1, 1, 0, 2));
  EXPECT_TRUE(fig.all_pass());
  fig.checks.push_back(make_check("b", 1, 5, 0, 2));
  EXPECT_FALSE(fig.all_pass());
  EXPECT_TRUE(FigureData{}.all_pass());
}

TEST(Figure, TextRendering) {
  FigureData fig;
  fig.id = "figX";
  fig.title = "A test figure";
  fig.checks.push_back(make_check("claim one", 0.34, 0.36, 0.28, 0.40));
  fig.checks.push_back(make_check("claim two", 1.0, 9.9, 0.0, 2.0));
  fig.notes.push_back("a note");
  const std::string text = fig.to_text();
  EXPECT_NE(text.find("figX"), std::string::npos);
  EXPECT_NE(text.find("A test figure"), std::string::npos);
  EXPECT_NE(text.find("claim one"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("note: a note"), std::string::npos);
}

TEST(Figure, CsvExport) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("wearscope_report_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  FigureData fig;
  fig.id = "figY";
  Series labelled;
  labelled.name = "bars";
  labelled.labels = {"a", "b"};
  labelled.y = {1.0, 2.0};
  Series curve;
  curve.name = "cdf curve";  // space must be sanitized in the filename
  curve.x = {0.0, 1.0};
  curve.y = {0.0, 1.0};
  fig.series = {labelled, curve};
  fig.write_csv(dir);

  EXPECT_TRUE(std::filesystem::exists(dir / "figY_bars.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir / "figY_cdf_curve.csv"));
  std::ifstream in(dir / "figY_bars.csv");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "label,value");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "a,");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wearscope::core
