// Unit tests for the synthetic country geography.
#include "simnet/geography.h"

#include <set>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wearscope::simnet {
namespace {

SimConfig test_config() {
  SimConfig c = SimConfig::small();
  c.cities = 5;
  c.sectors_per_city = 10;
  return c;
}

TEST(Geography, BuildsCitiesAndSectors) {
  const SimConfig cfg = test_config();
  const Geography geo(cfg, util::Pcg32(1));
  EXPECT_EQ(geo.cities().size(), 5u);
  EXPECT_GE(geo.sectors().size(), 10u);  // at least 2 per city
  for (const City& c : geo.cities()) {
    EXPECT_GE(c.sector_ids.size(), 2u);
  }
}

TEST(Geography, SectorIdsAreDenseFromOne) {
  const Geography geo(test_config(), util::Pcg32(2));
  std::set<trace::SectorId> ids;
  for (const trace::SectorInfo& s : geo.sectors()) ids.insert(s.sector_id);
  EXPECT_EQ(ids.size(), geo.sectors().size());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), geo.sectors().size());
}

TEST(Geography, SectorsLieNearTheirCity) {
  const Geography geo(test_config(), util::Pcg32(3));
  for (const City& c : geo.cities()) {
    for (const trace::SectorId id : c.sector_ids) {
      const double d = util::haversine_km(geo.sector_position(id), c.center);
      EXPECT_LE(d, c.radius_km + 0.5);
      EXPECT_EQ(geo.city_of_sector(id).id, c.id);
    }
  }
}

TEST(Geography, CapitalHasMostSectors) {
  const Geography geo(test_config(), util::Pcg32(4));
  // City 0 has the highest population weight -> most sectors.
  for (std::size_t c = 1; c < geo.cities().size(); ++c) {
    EXPECT_GE(geo.cities()[0].sector_ids.size(),
              geo.cities()[c].sector_ids.size());
  }
}

TEST(Geography, SampleCityFavoursCapital) {
  const Geography geo(test_config(), util::Pcg32(5));
  util::Pcg32 rng(6);
  std::array<int, 5> counts{};
  for (int i = 0; i < 20000; ++i) counts[geo.sample_city(rng)]++;
  EXPECT_GT(counts[0], counts[4]);
}

TEST(Geography, SampleSectorInCityBelongsToIt) {
  const Geography geo(test_config(), util::Pcg32(7));
  util::Pcg32 rng(8);
  for (int i = 0; i < 200; ++i) {
    const trace::SectorId id = geo.sample_sector_in_city(2, rng);
    EXPECT_EQ(geo.city_of_sector(id).id, 2u);
  }
}

TEST(Geography, SampleSectorNearRespectsRadiusOrFallsBack) {
  const Geography geo(test_config(), util::Pcg32(9));
  util::Pcg32 rng(10);
  const City& city = geo.cities()[0];
  for (int i = 0; i < 100; ++i) {
    const trace::SectorId id =
        geo.sample_sector_near(0, city.center, 3.0, rng);
    EXPECT_EQ(geo.city_of_sector(id).id, 0u);
  }
  // A far-away anchor with a tiny radius falls back to the nearest sector.
  const util::GeoPoint far = util::destination(city.center, 0.0, 500.0);
  const trace::SectorId nearest = geo.sample_sector_near(0, far, 0.1, rng);
  EXPECT_EQ(geo.city_of_sector(nearest).id, 0u);
}

TEST(Geography, UnknownSectorThrows) {
  const Geography geo(test_config(), util::Pcg32(11));
  EXPECT_THROW(geo.sector_position(0), util::ConfigError);
  EXPECT_THROW(
      geo.sector_position(static_cast<trace::SectorId>(geo.sectors().size() + 1)),
      util::ConfigError);
}

TEST(Geography, DeterministicForEqualSeeds) {
  const Geography a(test_config(), util::Pcg32(42));
  const Geography b(test_config(), util::Pcg32(42));
  ASSERT_EQ(a.sectors().size(), b.sectors().size());
  for (std::size_t i = 0; i < a.sectors().size(); ++i) {
    EXPECT_EQ(a.sectors()[i], b.sectors()[i]);
  }
}

}  // namespace
}  // namespace wearscope::simnet
