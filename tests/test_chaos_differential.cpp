// The headline chaos harness: for seeded fault plans, the batch pipeline
// and the live engine must produce bitwise-identical results on the
// records that survive quarantine, and the quarantine counters must equal
// the injected fault counts exactly — at every shard count in {1,2,4,8}.
// Runs in its own executable (wearscope_chaos_tests) under the `chaos`
// ctest label so sanitizer sweeps can target it directly.
#include "chaos/diff_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.h"
#include "simnet/simulator.h"
#include "trace/binary_io.h"
#include "trace/sanitize.h"
#include "util/error.h"

namespace wearscope {
namespace {

simnet::SimConfig chaos_config() {
  simnet::SimConfig cfg;
  cfg.seed = 4242;
  cfg.wearable_users = 150;
  cfg.control_users = 450;
  cfg.through_device_users = 40;
  cfg.detailed_days = 14;
  cfg.cities = 5;
  cfg.sectors_per_city = 10;
  cfg.long_tail_apps = 40;
  return cfg;
}

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = simnet::Simulator(chaos_config()).run();
  return sim;
}

core::AnalysisOptions analysis_for(const simnet::SimResult& sim) {
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  return opt;
}

// ---------------------------------------------------------------------------
// The differential contract, profile x seed, shards {1, 2, 4, 8}.
// ---------------------------------------------------------------------------

using ProfileSeed = std::pair<const char*, std::uint64_t>;

class ChaosDifferential : public ::testing::TestWithParam<ProfileSeed> {};

TEST_P(ChaosDifferential, BatchAndLiveAgreeOnSurvivors) {
  const auto& [profile, seed] = GetParam();
  const simnet::SimResult& sim = capture();

  chaos::DiffOptions opt;
  opt.seed = seed;
  opt.profile = chaos::FaultProfile::named(profile);
  opt.shard_counts = {1, 2, 4, 8};
  opt.analysis = analysis_for(sim);

  const chaos::DiffReport rep = chaos::run_differential(sim.store, opt);

  std::ostringstream detail;
  for (const std::string& mm : rep.mismatches) detail << "  " << mm << "\n";
  EXPECT_TRUE(rep.passed) << rep.summary() << "\n" << detail.str();

  // The plan must have actually exercised the machinery: every record-level
  // profile drops and repairs something, every runtime profile retries.
  if (opt.profile.any_record_faults()) {
    EXPECT_GT(rep.observed.total_dropped(), 0u);
    EXPECT_GT(rep.observed.reordered, 0u);
  }
  if (opt.profile.any_runtime_faults()) {
    EXPECT_GT(rep.manifest.expected.transient_retries, 0u);
  }
  EXPECT_EQ(rep.surviving_proxy + rep.surviving_mme,
            sim.store.proxy.size() + sim.store.mme.size());
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ChaosDifferential,
    ::testing::Values(ProfileSeed{"records", 101},
                      ProfileSeed{"records-heavy", 202},
                      ProfileSeed{"runtime", 303},
                      ProfileSeed{"all", 404}),
    [](const ::testing::TestParamInfo<ProfileSeed>& info) {
      std::string name = info.param.first;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------------
// Plan determinism and profile plumbing.
// ---------------------------------------------------------------------------

TEST(FaultPlan, RecordInjectionIsReproducible) {
  const simnet::SimResult& sim = capture();
  trace::TraceStore canon = sim.store;
  trace::sanitize_store(canon);

  const chaos::FaultPlan plan(77, chaos::FaultProfile::named("records"));
  trace::TraceStore a = canon;
  trace::TraceStore b = canon;
  const chaos::FaultManifest ma = plan.inject_records(a);
  const chaos::FaultManifest mb = plan.inject_records(b);
  EXPECT_TRUE(ma.expected == mb.expected);
  EXPECT_TRUE(a.proxy == b.proxy);
  EXPECT_TRUE(a.mme == b.mme);

  // A large capture absorbs the full requested fault budget.
  const chaos::FaultProfile p = chaos::FaultProfile::named("records");
  EXPECT_EQ(ma.expected.duplicates, p.duplicates);
  EXPECT_EQ(ma.expected.regressions, p.regressions);
  EXPECT_EQ(ma.expected.unknown_tac, p.unknown_tacs);
  EXPECT_EQ(ma.expected.bad_host, p.bad_hosts);
  EXPECT_EQ(ma.expected.reordered, p.reorder_swaps);
}

TEST(FaultPlan, DifferentSeedsInjectDifferentFaults) {
  const simnet::SimResult& sim = capture();
  trace::TraceStore canon = sim.store;
  trace::sanitize_store(canon);

  const chaos::FaultProfile profile =
      chaos::FaultProfile::named("records-heavy");
  trace::TraceStore a = canon;
  trace::TraceStore b = canon;
  chaos::FaultPlan(1, profile).inject_records(a);
  chaos::FaultPlan(2, profile).inject_records(b);
  EXPECT_FALSE(a.proxy == b.proxy);
}

TEST(FaultPlan, RuntimeScheduleIsDeterministicAndBounded) {
  const chaos::FaultPlan plan(9, chaos::FaultProfile::named("runtime"));
  const live::RetryPolicy retry;
  const std::uint64_t feed = 10'000;
  const chaos::RuntimeFaults a = plan.runtime_faults(feed, retry);
  const chaos::RuntimeFaults b = plan.runtime_faults(feed, retry);

  ASSERT_EQ(a.permanent_seqs, b.permanent_seqs);
  EXPECT_TRUE(a.expected == b.expected);
  EXPECT_EQ(a.expected.dropped_after_retry, a.permanent_seqs.size());
  for (std::uint64_t s = 0; s < feed; ++s) {
    ASSERT_EQ(a.schedule(s), b.schedule(s)) << "seq " << s;
    ASSERT_LE(a.schedule(s), retry.max_attempts);
  }
  for (const std::uint64_t s : a.permanent_seqs) {
    EXPECT_LT(s, feed);
    EXPECT_EQ(a.schedule(s), retry.max_attempts);
  }
}

TEST(FaultPlan, StallScheduleIsDeterministicAndBounded) {
  const chaos::StallSchedule s =
      chaos::FaultPlan(5, chaos::FaultProfile::named("io")).stall_schedule();
  const chaos::StallSchedule t =
      chaos::FaultPlan(5, chaos::FaultProfile::named("io")).stall_schedule();
  std::uint64_t stalls = 0;
  std::uint64_t bursts = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    ASSERT_EQ(s.stall_us(i), t.stall_us(i));
    ASSERT_EQ(s.burst_len(i), t.burst_len(i));
    ASSERT_LE(s.stall_us(i), s.max_stall_us);
    ASSERT_LE(s.burst_len(i), s.max_burst);
    if (s.stall_us(i) > 0) ++stalls;
    if (s.burst_len(i) > 0) ++bursts;
  }
  EXPECT_GT(stalls, 0u);
  EXPECT_GT(bursts, 0u);
}

TEST(FaultProfile, NamedPresetsRoundTripAndRejectUnknown) {
  for (const std::string& name : chaos::FaultProfile::names()) {
    const chaos::FaultProfile p = chaos::FaultProfile::named(name);
    EXPECT_EQ(p.name, name);
  }
  EXPECT_THROW(chaos::FaultProfile::named("no-such-profile"),
               util::ConfigError);
}

// ---------------------------------------------------------------------------
// Byte level: every exact corpus entry honors its own accounting promise.
// ---------------------------------------------------------------------------

TEST(FaultPlan, ByteCorpusAccountingIsExact) {
  const simnet::SimResult& sim = capture();
  std::vector<trace::ProxyRecord> sample(
      sim.store.proxy.begin(),
      sim.store.proxy.begin() +
          static_cast<std::ptrdiff_t>(
              std::min<std::size_t>(200, sim.store.proxy.size())));
  const chaos::BinaryImage image = chaos::image_of(sample);

  const chaos::FaultPlan plan(31, chaos::FaultProfile::named("io"));
  const std::vector<chaos::ByteFault> corpus = plan.byte_corpus(image, true);
  ASSERT_FALSE(corpus.empty());

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const chaos::ByteFault& fault = corpus[i];
    std::istringstream in(fault.bytes);
    trace::QuarantineStats q;
    const std::vector<trace::ProxyRecord> got =
        trace::read_binary_log_lenient<trace::ProxyRecord>(in, q);
    if (!fault.exact) {
      // Bit flips promise survival, not specific counts.
      EXPECT_LE(got.size(), sample.size()) << "corpus entry " << i;
      continue;
    }
    EXPECT_EQ(got.size(), fault.expected_survivors) << "corpus entry " << i;
    EXPECT_TRUE(q == fault.expected) << "corpus entry " << i;
    // Survivors are the untouched prefix, bit for bit.
    for (std::size_t k = 0; k < got.size(); ++k) {
      ASSERT_EQ(got[k], sample[k]) << "corpus entry " << i << " record " << k;
    }
  }
}

}  // namespace
}  // namespace wearscope
