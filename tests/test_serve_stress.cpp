// Reader/writer stress for the serving layer, built to run under
// ThreadSanitizer: a publisher swaps snapshots as fast as it can while
// reader threads hammer the lock-free latest() path, the mutex-guarded
// historical path and the full QueryEngine protocol.  Correctness is
// checked two ways on every read — the publish-time checksum must
// re-derive, and fields derived from the epoch must be mutually
// consistent — so a torn publication fails the assert even when TSan is
// not watching.
#include "serve/snapshot_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "live/engine.h"
#include "live/replayer.h"
#include "serve/query_engine.h"
#include "simnet/simulator.h"
#include "test_support.h"

namespace wearscope::serve {
namespace {

/// A small snapshot whose fields are all derived from `epoch`, so readers
/// can detect field-level tearing without any shared baseline.
live::LiveSnapshot derived_snapshot(std::uint64_t epoch) {
  live::LiveSnapshot snap;
  snap.epoch = epoch;
  snap.records = epoch * 3 + 1;
  snap.adoption.ever_registered = static_cast<std::size_t>(epoch % 1000);
  live::LiveSnapshot::SectorRow row;
  row.sector = static_cast<trace::SectorId>(epoch % 97);
  row.counter.events = epoch;
  snap.sectors.push_back(row);
  return snap;
}

void expect_consistent(const SnapshotRef& ref) {
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->checksum,
            ServedSnapshot::fold(ref->snap, ref->publish_seq,
                                 ref->final_epoch));
  EXPECT_EQ(ref->snap.records, ref->snap.epoch * 3 + 1);
  ASSERT_EQ(ref->snap.sectors.size(), 1u);
  EXPECT_EQ(ref->snap.sectors[0].counter.events, ref->snap.epoch);
}

TEST(ServeStress, LatestIsNeverTornUnderConcurrentPublish) {
  constexpr std::uint64_t kPublishes = 2'000;
  constexpr std::size_t kReaders = 4;
  SnapshotStore store(32);
  store.publish(derived_snapshot(0));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> total_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &total_reads, r] {
      std::uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const SnapshotRef latest = store.latest();
        expect_consistent(latest);
        // Publication order is monotonic through the RCU pointer.
        EXPECT_GE(latest->snap.epoch, last_seen);
        last_seen = latest->snap.epoch;

        // Odd readers also exercise the mutex-guarded historical path
        // while the writer appends and evicts behind the same mutex.
        if (r % 2 == 1) {
          for (const std::uint64_t epoch : store.retained_epochs()) {
            const SnapshotRef past = store.at_epoch(epoch);
            // Eviction may race the lookup; a hit must be consistent.
            if (past != nullptr) expect_consistent(past);
          }
        }
        total_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t epoch = 0;  // epoch 0 was published above
  while (epoch + 1 < kPublishes) {
    store.publish(derived_snapshot(++epoch));
  }
  // On a single core the writer can finish before any reader runs; keep
  // publishing until every reader demonstrably made progress so the test
  // exercises real overlap on any machine.
  while (total_reads.load(std::memory_order_relaxed) < kReaders * 10) {
    store.publish(derived_snapshot(++epoch));
    std::this_thread::yield();
  }
  store.publish(derived_snapshot(++epoch), /*final_epoch=*/true);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(store.published(), epoch + 1);
  const SnapshotRef last = store.latest();
  expect_consistent(last);
  EXPECT_EQ(last->snap.epoch, epoch);
  EXPECT_TRUE(last->final_epoch);
}

TEST(ServeStress, QueryEngineUnderLiveIngest) {
  // End-to-end shape of wearscope_serve: a real replay publishes periodic
  // snapshots while reader threads run the query protocol.  No answer may
  // ever report a torn publication, and the readers must observe the feed
  // progressing (monotonic epochs).
  const std::uint64_t seed = wearscope::testing::seed_or(55);
  WEARSCOPE_SCOPED_SEED(seed);
  const simnet::SimResult sim = [seed] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = seed;
    return simnet::Simulator(cfg).run();
  }();

  SnapshotStore store(16);
  QueryEngine engine(store);
  std::atomic<bool> ingest_done{false};

  const std::vector<std::string> mix = {
      "adoption", "activity", "top-apps 5", "sectors 5",
      "quarantine", "epochs", "stats", "adoption @2"};
  constexpr std::size_t kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &ingest_done, &mix, r] {
      std::size_t qi = r;
      while (!ingest_done.load(std::memory_order_acquire)) {
        const std::string answer = engine.answer(mix[qi % mix.size()]);
        EXPECT_EQ(answer.find("integrity"), std::string::npos) << answer;
        ++qi;
      }
    });
  }

  live::LiveOptions opt;
  opt.shards = 2;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  live::LiveEngine live_engine(sim.store.devices, opt);
  live::ReplayOptions ropt;
  ropt.snapshot_every_s = 7 * util::kSecondsPerDay;
  ropt.on_snapshot = [&store](live::LiveSnapshot snap) {
    store.publish(std::move(snap));
  };
  live::FeedReplayer(sim.store, ropt).replay(live_engine);
  store.publish(live_engine.stop(), /*final_epoch=*/true);
  ingest_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Readers answered throughout the replay and the final state is sane.
  const ServingStats stats = engine.stats();
  EXPECT_GT(stats.answered, 0u);
  const SnapshotRef last = store.latest();
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->final_epoch);
  EXPECT_EQ(last->checksum,
            ServedSnapshot::fold(last->snap, last->publish_seq,
                                 last->final_epoch));
  EXPECT_EQ(last->snap.records,
            sim.store.proxy.size() + sim.store.mme.size());
}

}  // namespace
}  // namespace wearscope::serve
