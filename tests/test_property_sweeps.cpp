// Parameterized property tests: structural invariants of the generator and
// headline statistics of the analysis must hold across random seeds and
// population scales, not just for the default seed.
#include <unordered_set>

#include <gtest/gtest.h>

#include "chaos/diff_runner.h"
#include "chaos/fault_plan.h"
#include "test_support.h"
#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "core/analysis_comparison.h"
#include "core/context.h"
#include "fed/merge.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "serve/query.h"
#include "simnet/simulator.h"

namespace wearscope {
namespace {

simnet::SimConfig sweep_config(std::uint64_t seed) {
  simnet::SimConfig cfg;
  cfg.seed = seed;
  cfg.wearable_users = 150;
  cfg.control_users = 450;
  cfg.through_device_users = 40;
  cfg.detailed_days = 14;
  cfg.cities = 5;
  cfg.sectors_per_city = 10;
  cfg.long_tail_apps = 40;
  return cfg;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static const simnet::SimResult& result_for(std::uint64_t seed) {
    static std::map<std::uint64_t, simnet::SimResult> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
      it = cache.emplace(seed, simnet::Simulator(sweep_config(seed)).run())
               .first;
    }
    return it->second;
  }
};

TEST_P(SeedSweep, StoreInvariants) {
  const simnet::SimResult& r = result_for(GetParam());
  EXPECT_TRUE(r.store.is_sorted());
  const trace::TraceSummary sum = r.store.summarize();
  EXPECT_GT(sum.proxy_records, 0u);
  EXPECT_GT(sum.mme_records, 0u);
  EXPECT_GT(sum.total_bytes, 0u);
  EXPECT_GE(sum.first_timestamp, 0);
  EXPECT_LT(sum.last_timestamp,
            util::day_start(r.observation_days));
}

TEST_P(SeedSweep, EveryProxyRecordWellFormed) {
  const simnet::SimResult& r = result_for(GetParam());
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    ASSERT_GT(rec.bytes_total(), 0u);
    ASSERT_FALSE(rec.host.empty());
    ASSERT_NE(rec.tac, 0u);
    ASSERT_NE(rec.user_id, 0u);
    ASSERT_GT(rec.duration_ms, 0u);
    if (rec.protocol == trace::Protocol::kHttps) {
      ASSERT_TRUE(rec.url_path.empty()) << "SNI-only records carry no path";
    }
  }
}

TEST_P(SeedSweep, EveryDeviceTacResolvable) {
  const simnet::SimResult& r = result_for(GetParam());
  for (const trace::ProxyRecord& rec : r.store.proxy) {
    ASSERT_TRUE(r.store.find_device(rec.tac).has_value())
        << "proxy TAC missing from DeviceDB: " << rec.tac;
  }
  for (const trace::MmeRecord& rec : r.store.mme) {
    ASSERT_TRUE(r.store.find_device(rec.tac).has_value());
    ASSERT_TRUE(r.store.find_sector(rec.sector_id).has_value());
  }
}

TEST_P(SeedSweep, HeadlineStatisticsStable) {
  const simnet::SimResult& sim = result_for(GetParam());
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);

  // "Only ~34% of wearable users transmit data" holds for every seed
  // (generous band: 150 users per run).
  const core::AdoptionResult adoption = core::analyze_adoption(ctx);
  EXPECT_GT(adoption.ever_transacting_fraction, 0.22);
  EXPECT_LT(adoption.ever_transacting_fraction, 0.47);

  // Registered growth trends positive (tiny populations may jitter a hair
  // below zero) and stays below 25%.
  EXPECT_GT(adoption.total_growth, -0.04);
  EXPECT_LT(adoption.total_growth, 0.25);

  // Wearable transactions stay small: median under 8 KB for every seed.
  const core::ActivityResult activity = core::analyze_activity(ctx);
  EXPECT_LT(activity.median_txn_bytes, 8000.0);
  EXPECT_GT(activity.median_txn_bytes, 500.0);

  // Owners out-consume the control sample.  At this deliberately tiny
  // scale (150 owners) the +26% shift can drown in heavy-tail noise, so
  // the sweep only asserts loose sanity floors; the sharp calibration
  // gate runs at standard scale in test_pipeline_integration.
  const core::ComparisonResult cmp = core::analyze_comparison(ctx);
  EXPECT_GT(cmp.owner_daily_bytes_norm.quantile(0.5),
            0.8 * cmp.other_daily_bytes_norm.quantile(0.5));
  EXPECT_GT(cmp.data_ratio, 0.75);
  EXPECT_GT(cmp.txn_ratio, 1.0);
  // Wearable share of owner traffic is always orders of magnitude small.
  EXPECT_LT(cmp.median_wearable_share, 0.05);
}

TEST_P(SeedSweep, DeterminismPerSeed) {
  WEARSCOPE_SCOPED_SEED(GetParam());
  const simnet::SimResult a = simnet::Simulator(sweep_config(GetParam())).run();
  const simnet::SimResult b = simnet::Simulator(sweep_config(GetParam())).run();
  ASSERT_EQ(a.store.proxy.size(), b.store.proxy.size());
  // Spot-check a deterministic sample of records.
  for (std::size_t i = 0; i < a.store.proxy.size(); i += 97) {
    ASSERT_EQ(a.store.proxy[i], b.store.proxy[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 23, 42, 77, 1234, 99991));

/// Scale sweep: invariants independent of population size.
class ScaleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScaleSweep, WearableUserCountsScale) {
  const std::uint64_t seed = testing::seed_or(7);
  WEARSCOPE_SCOPED_SEED(seed);
  simnet::SimConfig cfg = sweep_config(seed);
  cfg.wearable_users = GetParam();
  cfg.control_users = GetParam() * 2;
  cfg.through_device_users = GetParam() / 4 + 1;
  const simnet::SimResult r = simnet::Simulator(cfg).run();

  std::unordered_set<trace::Tac> wear_tacs;
  for (const simnet::Subscriber& s : r.subscribers) {
    if (s.wearable_tac != 0) wear_tacs.insert(s.wearable_tac);
  }
  std::unordered_set<trace::UserId> wear_users;
  for (const trace::MmeRecord& rec : r.store.mme) {
    if (wear_tacs.contains(rec.tac)) wear_users.insert(rec.user_id);
  }
  // Nearly every owner registers at least once over five months.
  EXPECT_GT(wear_users.size(), static_cast<std::size_t>(GetParam() * 9 / 10));
  EXPECT_LE(wear_users.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweep,
                         ::testing::Values(40, 120, 360));

/// Sessionization-gap sweep: the number of usages is monotone
/// non-increasing in the gap parameter (a coarser gap merges usages).
class GapSweep : public ::testing::TestWithParam<int> {};

TEST_P(GapSweep, UsageCountMonotoneInGap) {
  const std::uint64_t seed = testing::seed_or(3);
  WEARSCOPE_SCOPED_SEED(seed);
  const simnet::SimResult sim = simnet::Simulator(sweep_config(seed)).run();
  const auto usages_with_gap = [&](util::SimTime gap) {
    core::AnalysisOptions opt;
    opt.observation_days = sim.observation_days;
    opt.detailed_start_day = sim.detailed_start_day;
    opt.long_tail_apps = sim.config.long_tail_apps;
    opt.usage_gap_s = gap;
    const core::AnalysisContext ctx(sim.store, opt);
    std::size_t n = 0;
    for (const core::UserView* u : ctx.wearable_users()) n += u->usages.size();
    return n;
  };
  const std::size_t tight = usages_with_gap(GetParam());
  const std::size_t loose = usages_with_gap(GetParam() * 4);
  EXPECT_GE(tight, loose);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweep, ::testing::Values(15, 30, 60));

/// Chaos sweep: for random record-level fault plans, live snapshots at
/// every shard count from one to eight must agree bitwise with the batch
/// pipeline on the surviving records, and the quarantine counters must
/// equal the injected faults exactly.  (The full profile x seed matrix
/// lives in test_chaos_differential.cpp; this sweep ties the property to
/// the same seeds the other sweeps exercise.)
class ChaosSweep : public SeedSweep {};

TEST_P(ChaosSweep, FaultedLiveMatchesBatchAtEveryShardCount) {
  const std::uint64_t seed = GetParam();
  WEARSCOPE_SCOPED_SEED(seed);
  const simnet::SimResult& sim = result_for(seed);

  chaos::DiffOptions opt;
  // Decorrelate the fault-plan stream from the generator seed.
  opt.seed = seed * 31 + 7;
  opt.profile = chaos::FaultProfile::named(seed % 2 == 0 ? "records"
                                                         : "records-heavy");
  opt.shard_counts = {1, 3, 8};
  opt.analysis.observation_days = sim.observation_days;
  opt.analysis.detailed_start_day = sim.detailed_start_day;
  opt.analysis.long_tail_apps = sim.config.long_tail_apps;

  const chaos::DiffReport rep = chaos::run_differential(sim.store, opt);
  std::string detail;
  for (const std::string& mm : rep.mismatches) detail += "  " + mm + "\n";
  EXPECT_TRUE(rep.passed) << rep.summary() << "\n" << detail;
  EXPECT_GT(rep.observed.total_dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(23, 1234));

/// Federation sweep: the merged snapshot of an N-way partition cover must
/// not depend on N.  Every canonical serve response (the deterministic
/// renderers of serve/query.h) is byte-compared across covers at 1, 2, 3,
/// 5 and 8 partitions over the same sweep population — prime, even and
/// power-of-two counts so shard_of stripes the users differently every
/// time.  (The federated == batch gate itself lives in test_fed.cpp; this
/// sweep ties partition-count independence to the sweep seeds.)
class FedSweep : public SeedSweep {};

TEST_P(FedSweep, MergedCoverIsPartitionCountInvariant) {
  const std::uint64_t seed = GetParam();
  WEARSCOPE_SCOPED_SEED(seed);
  const simnet::SimResult& sim = result_for(seed);

  const auto render_all = [](const live::LiveSnapshot& s) {
    return serve::render_adoption(s.epoch, s.records, s.adoption) +
           serve::render_activity(s.epoch, s.records, s.activity,
                                  s.class_txns) +
           serve::render_top_apps(s.epoch, 10, s.apps) +
           serve::render_sectors(s.epoch, 10, s.sectors) +
           serve::render_quarantine(s.epoch, s.quarantine);
  };

  const auto cover = [&](std::size_t partitions) {
    std::vector<fed::LoadedPartial> parts;
    for (std::size_t id = 0; id < partitions; ++id) {
      live::LiveOptions opt;
      opt.shards = 2;
      opt.observation_days = sim.observation_days;
      opt.detailed_start_day = sim.detailed_start_day;
      opt.long_tail_apps = sim.config.long_tail_apps;
      opt.partition_id = id;
      opt.partition_count = partitions;
      opt.capture_tallies = true;
      live::LiveEngine engine(sim.store.devices, opt);
      (void)live::FeedReplayer(sim.store, live::ReplayOptions{})
          .replay(engine);
      parts.push_back(fed::LoadedPartial{
          fed::make_partial(engine.stop(), opt),
          "mem:" + std::to_string(id) + "of" + std::to_string(partitions)});
    }
    return parts;
  };

  std::string reference;
  std::size_t reference_partitions = 0;
  for (const std::size_t partitions : {1u, 2u, 3u, 5u, 8u}) {
    const fed::MergeResult merged = fed::merge_partials(cover(partitions));
    EXPECT_EQ(merged.merged_partitions, partitions);
    const std::string rendered = render_all(merged.snapshot);
    if (reference.empty()) {
      reference = rendered;
      reference_partitions = partitions;
    } else {
      EXPECT_EQ(rendered, reference)
          << partitions << "-way cover diverged from "
          << reference_partitions << "-way";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedSweep, ::testing::Values(23, 1234));

}  // namespace
}  // namespace wearscope
