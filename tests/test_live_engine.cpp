// Streaming/batch equivalence and snapshot-consistency tests for the live
// ingest engine: a capture replayed through LiveEngine must reproduce the
// batch pipeline's results, and the answer must not depend on the shard
// count.
#include "live/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/pipeline.h"
#include "live/replayer.h"
#include "live/router.h"
#include "simnet/simulator.h"

namespace wearscope::live {
namespace {

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 21;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

LiveOptions options_for(const simnet::SimResult& sim, std::size_t shards) {
  LiveOptions opt;
  opt.shards = shards;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  return opt;
}

/// Replays the shared capture at max speed and returns the final snapshot.
LiveSnapshot run_live(std::size_t shards,
                      util::SimTime snapshot_every = 0,
                      std::vector<LiveSnapshot>* periodic = nullptr) {
  const simnet::SimResult& sim = capture();
  LiveEngine engine(sim.store.devices, options_for(sim, shards));
  ReplayOptions ropt;
  ropt.snapshot_every_s = snapshot_every;
  const FeedReplayer replayer(sim.store, ropt);
  const ReplayReport report = replayer.replay(engine);
  if (periodic != nullptr) *periodic = report.snapshots;
  EXPECT_EQ(report.records_pushed,
            sim.store.proxy.size() + sim.store.mme.size());
  return engine.stop();
}

void expect_same_ecdf(const util::Ecdf& a, const util::Ecdf& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  const std::vector<double>& sa = a.sorted();
  const std::vector<double>& sb = b.sorted();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_DOUBLE_EQ(sa[i], sb[i]) << what << " sample " << i;
  }
}

void expect_same_adoption(const core::AdoptionResult& a,
                          const core::AdoptionResult& b) {
  EXPECT_EQ(a.ever_registered, b.ever_registered);
  EXPECT_EQ(a.ever_transacted, b.ever_transacted);
  EXPECT_DOUBLE_EQ(a.ever_transacting_fraction, b.ever_transacting_fraction);
  EXPECT_DOUBLE_EQ(a.total_growth, b.total_growth);
  EXPECT_DOUBLE_EQ(a.monthly_growth, b.monthly_growth);
  EXPECT_DOUBLE_EQ(a.still_active_share, b.still_active_share);
  EXPECT_DOUBLE_EQ(a.gone_share, b.gone_share);
  EXPECT_DOUBLE_EQ(a.new_share, b.new_share);
  EXPECT_DOUBLE_EQ(a.churned_of_initial, b.churned_of_initial);
  ASSERT_EQ(a.daily_registered_norm.size(), b.daily_registered_norm.size());
  for (std::size_t d = 0; d < a.daily_registered_norm.size(); ++d) {
    EXPECT_DOUBLE_EQ(a.daily_registered_norm[d], b.daily_registered_norm[d])
        << "day " << d;
  }
}

TEST(LiveEngine, SingleShardMatchesBatchPipeline) {
  const simnet::SimResult& sim = capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  const core::Pipeline pipeline(sim.store, opt);
  const core::StudyReport batch = pipeline.run();

  const LiveSnapshot live = run_live(1);

  // Adoption: bit-identical, field by field.
  expect_same_adoption(live.adoption, batch.adoption);

  // Activity: every ECDF-derived statistic is exact (Ecdf sorts its sample
  // before deriving anything, which erases accumulation-order effects).
  expect_same_ecdf(live.activity.active_days_per_week,
                   batch.activity.active_days_per_week, "days/week");
  expect_same_ecdf(live.activity.active_hours_per_day,
                   batch.activity.active_hours_per_day, "hours/day");
  expect_same_ecdf(live.activity.txn_size_bytes, batch.activity.txn_size_bytes,
                   "txn bytes");
  expect_same_ecdf(live.activity.hourly_txns_per_user,
                   batch.activity.hourly_txns_per_user, "hourly txns");
  expect_same_ecdf(live.activity.hourly_bytes_per_user,
                   batch.activity.hourly_bytes_per_user, "hourly bytes");
  EXPECT_DOUBLE_EQ(live.activity.mean_active_days,
                   batch.activity.mean_active_days);
  EXPECT_DOUBLE_EQ(live.activity.mean_active_hours,
                   batch.activity.mean_active_hours);
  EXPECT_DOUBLE_EQ(live.activity.frac_over_10h, batch.activity.frac_over_10h);
  EXPECT_DOUBLE_EQ(live.activity.frac_under_5h, batch.activity.frac_under_5h);
  EXPECT_DOUBLE_EQ(live.activity.mean_txn_bytes, batch.activity.mean_txn_bytes);
  EXPECT_DOUBLE_EQ(live.activity.median_txn_bytes,
                   batch.activity.median_txn_bytes);
  EXPECT_DOUBLE_EQ(live.activity.frac_txn_under_10kb,
                   batch.activity.frac_txn_under_10kb);
  // Even the order-sensitive Fig. 3d scalars match bitwise: the stream
  // sequence stamped by the router lets finalize() replay the batch's
  // user-appearance order.  See core/streaming_activity.h.
  EXPECT_DOUBLE_EQ(live.activity.correlation, batch.activity.correlation);
  EXPECT_DOUBLE_EQ(live.activity.binned_trend_corr,
                   batch.activity.binned_trend_corr);
}

TEST(LiveEngine, ShardCountDoesNotChangeTheAnswer) {
  const LiveSnapshot one = run_live(1);
  const LiveSnapshot four = run_live(4);

  EXPECT_EQ(one.records, four.records);
  expect_same_adoption(one.adoption, four.adoption);
  expect_same_ecdf(one.activity.active_days_per_week,
                   four.activity.active_days_per_week, "days/week");
  expect_same_ecdf(one.activity.txn_size_bytes, four.activity.txn_size_bytes,
                   "txn bytes");
  expect_same_ecdf(one.activity.hourly_txns_per_user,
                   four.activity.hourly_txns_per_user, "hourly txns");
  // Finalize iterates users by their stream-wide first appearance (merged
  // from the shards), so the order-sensitive correlations are bitwise
  // stable across shard counts too.
  EXPECT_DOUBLE_EQ(one.activity.correlation, four.activity.correlation);
  EXPECT_DOUBLE_EQ(one.activity.binned_trend_corr,
                   four.activity.binned_trend_corr);

  // App table: same rows, same order, same counters.
  ASSERT_EQ(one.apps.size(), four.apps.size());
  for (std::size_t i = 0; i < one.apps.size(); ++i) {
    EXPECT_EQ(one.apps[i].app, four.apps[i].app) << "row " << i;
    EXPECT_EQ(one.apps[i].name, four.apps[i].name) << "row " << i;
    EXPECT_EQ(one.apps[i].counter.transactions,
              four.apps[i].counter.transactions) << "row " << i;
    EXPECT_EQ(one.apps[i].counter.bytes, four.apps[i].counter.bytes)
        << "row " << i;
    EXPECT_EQ(one.apps[i].counter.usages, four.apps[i].counter.usages)
        << "row " << i;
    EXPECT_EQ(one.apps[i].counter.distinct_users,
              four.apps[i].counter.distinct_users) << "row " << i;
  }
  for (std::size_t c = 0; c < one.class_txns.size(); ++c) {
    EXPECT_EQ(one.class_txns[c], four.class_txns[c]) << "class " << c;
  }
}

TEST(LiveEngine, PeriodicSnapshotsAreOrderedAndMonotone) {
  std::vector<LiveSnapshot> periodic;
  const LiveSnapshot final_snap =
      run_live(2, util::kSecondsPerDay, &periodic);

  ASSERT_FALSE(periodic.empty());
  std::uint64_t last_epoch = 0;
  std::uint64_t last_records = 0;
  bool first = true;
  for (const LiveSnapshot& snap : periodic) {
    if (!first) {
      EXPECT_GT(snap.epoch, last_epoch);
      EXPECT_GE(snap.records, last_records);
    }
    EXPECT_LE(snap.records, final_snap.records);
    last_epoch = snap.epoch;
    last_records = snap.records;
    first = false;
  }
  EXPECT_GT(final_snap.epoch, last_epoch);
  EXPECT_EQ(final_snap.records,
            capture().store.proxy.size() + capture().store.mme.size());
}

TEST(LiveEngine, StopIsIdempotentAndRefusesLatePushes) {
  const simnet::SimResult& sim = capture();
  LiveEngine engine(sim.store.devices, options_for(sim, 2));
  ASSERT_FALSE(sim.store.mme.empty());
  EXPECT_TRUE(engine.push(sim.store.mme.front()));

  const LiveSnapshot first = engine.stop();
  EXPECT_EQ(first.records, 1u);
  EXPECT_FALSE(engine.push(sim.store.mme.front()));
  const LiveSnapshot second = engine.stop();
  EXPECT_EQ(second.records, first.records);
  EXPECT_EQ(second.epoch, first.epoch);
}

TEST(LiveEngine, MidStreamSnapshotCoversExactPrefix) {
  const simnet::SimResult& sim = capture();
  LiveEngine engine(sim.store.devices, options_for(sim, 3));
  constexpr std::uint64_t kPrefix = 500;
  std::uint64_t pushed = 0;
  for (const trace::MmeRecord& r : sim.store.mme) {
    if (pushed == kPrefix) break;
    ASSERT_TRUE(engine.push(r));
    ++pushed;
  }
  const LiveSnapshot cut = engine.snapshot();
  EXPECT_EQ(cut.records, kPrefix);
  const LiveSnapshot final_snap = engine.stop();
  EXPECT_EQ(final_snap.records, kPrefix);
  EXPECT_GT(final_snap.epoch, cut.epoch);
}

TEST(LiveEngine, ShardOfIsStableAndCoversAllShards) {
  // The assignment must be deterministic (snapshots reproducible across
  // runs and platforms) and must actually use every shard.
  EXPECT_EQ(shard_of(42, 4), shard_of(42, 4));
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    std::set<std::size_t> seen;
    for (trace::UserId u = 0; u < 1000; ++u) {
      const std::size_t s = shard_of(u, shards);
      ASSERT_LT(s, shards);
      seen.insert(s);
    }
    EXPECT_EQ(seen.size(), shards) << "shards=" << shards;
  }
}

TEST(LiveEngine, BackpressureCountersSurfaceInSnapshots) {
  // A tiny ring forces the feed to stall; the final snapshot must report
  // those episodes.
  const simnet::SimResult& sim = capture();
  LiveOptions opt = options_for(sim, 1);
  opt.ring_capacity = 1;
  LiveEngine engine(sim.store.devices, opt);
  const FeedReplayer replayer(sim.store, ReplayOptions{});
  replayer.replay(engine);
  const LiveSnapshot snap = engine.stop();
  EXPECT_EQ(snap.backpressure.pushed, snap.records + engine.epochs_issued());
  EXPECT_EQ(snap.backpressure.pushed, snap.backpressure.popped);
  EXPECT_EQ(snap.backpressure.rejected, 0u);
}

}  // namespace
}  // namespace wearscope::live
