// Tests for the streaming (single-pass) adoption analysis: it must agree
// exactly with the batch analyze_adoption() on the same capture.
#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/context.h"
#include "simnet/simulator.h"
#include "util/error.h"

namespace wearscope::core {
namespace {

TEST(StreamingAdoption, MatchesBatchAnalysisExactly) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 21;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();

  AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const AnalysisContext ctx(sim.store, opt);
  const AdoptionResult batch = analyze_adoption(ctx);

  // Stream the already time-sorted logs record by record.
  const DeviceClassifier devices(sim.store.devices);
  StreamingAdoption streaming(devices, sim.observation_days);
  for (const trace::MmeRecord& r : sim.store.mme) streaming.on_mme(r);
  for (const trace::ProxyRecord& r : sim.store.proxy) streaming.on_proxy(r);
  const AdoptionResult online = streaming.finalize();

  EXPECT_EQ(online.ever_registered, batch.ever_registered);
  EXPECT_EQ(online.ever_transacted, batch.ever_transacted);
  EXPECT_DOUBLE_EQ(online.ever_transacting_fraction,
                   batch.ever_transacting_fraction);
  EXPECT_DOUBLE_EQ(online.total_growth, batch.total_growth);
  EXPECT_DOUBLE_EQ(online.monthly_growth, batch.monthly_growth);
  EXPECT_DOUBLE_EQ(online.still_active_share, batch.still_active_share);
  EXPECT_DOUBLE_EQ(online.gone_share, batch.gone_share);
  EXPECT_DOUBLE_EQ(online.new_share, batch.new_share);
  EXPECT_DOUBLE_EQ(online.churned_of_initial, batch.churned_of_initial);
  ASSERT_EQ(online.daily_registered_norm.size(),
            batch.daily_registered_norm.size());
  for (std::size_t d = 0; d < online.daily_registered_norm.size(); ++d) {
    EXPECT_DOUBLE_EQ(online.daily_registered_norm[d],
                     batch.daily_registered_norm[d])
        << "day " << d;
  }
  EXPECT_EQ(streaming.records_consumed(),
            sim.store.mme.size() + sim.store.proxy.size());
}

TEST(StreamingAdoption, FinalizeIsIdempotentMidStream) {
  const DeviceClassifier devices(
      {{35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"}});
  StreamingAdoption streaming(devices, 28);
  trace::MmeRecord r{util::day_start(0) + 100, 1, 35254208,
                     trace::MmeEvent::kAttach, 1};
  streaming.on_mme(r);
  const AdoptionResult first = streaming.finalize();
  EXPECT_EQ(first.ever_registered, 1u);
  EXPECT_DOUBLE_EQ(first.daily_registered_norm[0], 0.0);  // last day empty
  // finalize() is const: feeding more afterwards still works.
  r.timestamp = util::day_start(27);
  r.user_id = 2;
  streaming.on_mme(r);
  const AdoptionResult second = streaming.finalize();
  EXPECT_EQ(second.ever_registered, 2u);
  EXPECT_DOUBLE_EQ(second.daily_registered_norm[27], 1.0);
}

TEST(StreamingAdoption, IgnoresNonWearableAndOutOfWindow) {
  const DeviceClassifier devices(
      {{35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"},
       {35332008, "iPhone 7", "Apple", "iOS"}});
  StreamingAdoption streaming(devices, 28);
  streaming.on_mme({util::day_start(1), 1, 35332008,
                    trace::MmeEvent::kAttach, 1});  // phone: ignored
  streaming.on_mme({util::day_start(99), 2, 35254208,
                    trace::MmeEvent::kAttach, 1});  // beyond window
  streaming.on_proxy([] {
    trace::ProxyRecord p;
    p.timestamp = util::day_start(1);
    p.user_id = 3;
    p.tac = 35332008;  // phone proxy: ignored
    p.host = "x.example";
    return p;
  }());
  const AdoptionResult r = streaming.finalize();
  EXPECT_EQ(r.ever_registered, 0u);
  EXPECT_EQ(r.ever_transacted, 0u);
  EXPECT_EQ(streaming.records_consumed(), 3u);
}

TEST(StreamingAdoption, RejectsDayRegression) {
  const DeviceClassifier devices(
      {{35254208, "Gear S3 frontier LTE", "Samsung", "Tizen"}});
  StreamingAdoption streaming(devices, 28);
  streaming.on_mme({util::day_start(5), 1, 35254208,
                    trace::MmeEvent::kAttach, 1});
  EXPECT_THROW(streaming.on_mme({util::day_start(4), 1, 35254208,
                                 trace::MmeEvent::kAttach, 1}),
               util::ConfigError);
}

TEST(StreamingAdoption, RejectsBadWindow) {
  const DeviceClassifier devices({});
  EXPECT_THROW(StreamingAdoption(devices, 0), util::ConfigError);
}

}  // namespace
}  // namespace wearscope::core
