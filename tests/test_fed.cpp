// Federation tests: the WSFD partial-snapshot format round-trips exactly,
// the cover validation rejects every malformed cover hard, the federated
// merge of N user-disjoint partitions reproduces the single-process
// snapshot bitwise, and the streaming partition-feed loader is
// indistinguishable from materializing the whole store.
#include "fed/merge.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "fed/feed_filter.h"
#include "fed/partial_io.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "serve/reference.h"
#include "simnet/simulator.h"
#include "trace/bundle.h"
#include "trace/sanitize.h"
#include "util/error.h"

namespace wearscope::fed {
namespace {

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 31;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

live::LiveOptions partition_options(std::size_t partition_id,
                                    std::size_t partition_count) {
  const simnet::SimResult& sim = capture();
  live::LiveOptions opt;
  opt.shards = 2;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  opt.partition_id = partition_id;
  opt.partition_count = partition_count;
  opt.capture_tallies = true;
  return opt;
}

/// Runs one partition over the shared capture via the full-store replay.
PartialSnapshot run_partition(std::size_t partition_id,
                              std::size_t partition_count) {
  const simnet::SimResult& sim = capture();
  const live::LiveOptions opt =
      partition_options(partition_id, partition_count);
  live::LiveEngine engine(sim.store.devices, opt);
  const live::FeedReplayer replayer(sim.store, live::ReplayOptions{});
  (void)replayer.replay(engine);
  return make_partial(engine.stop(), opt);
}

std::vector<LoadedPartial> cover(std::size_t partitions) {
  std::vector<LoadedPartial> parts;
  for (std::size_t i = 0; i < partitions; ++i) {
    parts.push_back(
        LoadedPartial{run_partition(i, partitions),
                      "part" + std::to_string(i) + "of" +
                          std::to_string(partitions)});
  }
  return parts;
}

std::span<const std::byte> bytes_of(const std::string& blob) {
  return std::as_bytes(std::span(blob.data(), blob.size()));
}

/// Scoped temp directory for file round trips.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wearscope_test_fed_" + tag + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(FedPartial, EncodeDecodeRoundTripIsBitwise) {
  const PartialSnapshot partial = run_partition(0, 2);
  const std::string blob = encode_partial(partial);
  const PartialSnapshot decoded = decode_partial(bytes_of(blob));
  // The writer seals payload_checksum at encode time; the in-memory
  // partial carries 0 until then.
  PartitionHeader expected = partial.header;
  expected.payload_checksum = decoded.header.payload_checksum;
  EXPECT_NE(decoded.header.payload_checksum, 0u);
  EXPECT_EQ(decoded.header, expected);
  EXPECT_EQ(decoded.feed_quarantine, partial.feed_quarantine);
  // The encoding is a pure function of the logical state, so re-encoding
  // the decode proves the tallies round-tripped exactly.
  EXPECT_EQ(encode_partial(decoded), blob);
}

TEST(FedPartial, FileRoundTripThroughTempRename) {
  const TempDir dir("roundtrip");
  const PartialSnapshot partial = run_partition(1, 2);
  const std::filesystem::path path =
      dir.path / partial_file_name(1, 2, partial.header.epoch);
  write_partial_file(path, partial);
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  const PartialSnapshot loaded = read_partial_file(path);
  EXPECT_EQ(encode_partial(loaded), encode_partial(partial));
}

TEST(FedPartial, StrictDecodeRejectsDamage) {
  const std::string blob = encode_partial(run_partition(0, 2));
  // Bad magic.
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_THROW((void)decode_partial(bytes_of(bad)), util::ParseError);
  // Truncated section chain.
  EXPECT_THROW((void)decode_partial(bytes_of(blob.substr(0, blob.size() - 3))),
               util::ParseError);
  // One flipped payload byte breaks that section's CRC.
  bad = blob;
  bad[blob.size() - 1] = static_cast<char>(bad[blob.size() - 1] ^ 0x40);
  EXPECT_THROW((void)decode_partial(bytes_of(bad)), util::ParseError);
}

TEST(FedMerge, FederatedEqualsSingleProcessAcrossPartitionCounts) {
  const simnet::SimResult& sim = capture();
  const PartialSnapshot single = run_partition(0, 1);
  for (const std::size_t partitions : {1u, 2u, 4u, 8u}) {
    MergeResult merged = merge_partials(cover(partitions));
    EXPECT_EQ(merged.merged_partitions, partitions);
    EXPECT_EQ(merged.snapshot.records, single.header.records);
    EXPECT_EQ(merged.snapshot.feed_records, single.header.feed_records);
    // The federated tallies must BE the single-process tallies: finalize
    // is deterministic, so exact double equality holds or the merge is
    // wrong.
    const std::vector<serve::VerifyMismatch> mismatches =
        serve::verify_responses(merged.snapshot, sim.store, merged.options,
                                trace::QuarantineStats{});
    for (const serve::VerifyMismatch& m : mismatches) {
      ADD_FAILURE() << partitions << "-way " << m.query << ": federated="
                    << m.serve << " batch=" << m.batch;
    }
  }
}

TEST(FedMerge, RejectsIncompleteCover) {
  std::vector<LoadedPartial> parts = cover(2);
  parts.pop_back();
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, RejectsMismatchedPartitionCount) {
  std::vector<LoadedPartial> parts = cover(2);
  parts[1].partial.header.partition_count = 4;
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, RejectsDuplicatePartitionIds) {
  std::vector<LoadedPartial> parts = cover(2);
  parts[1] = parts[0];
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, RejectsForeignUsers) {
  // Swap the partition labels: ids {0, 1} are both present and every
  // header field agrees, but each partial now claims users that hash into
  // the other partition — only the per-user ownership check catches it.
  std::vector<LoadedPartial> parts = cover(2);
  parts[0].partial.header.partition_id = 1;
  parts[1].partial.header.partition_id = 0;
  std::swap(parts[0], parts[1]);
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, RejectsCoverThatDoesNotTileTheFeed) {
  std::vector<LoadedPartial> parts = cover(2);
  parts[1].partial.header.records -= 1;
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, RejectsMismatchedFeeds) {
  std::vector<LoadedPartial> parts = cover(2);
  parts[1].partial.header.feed_records += 1;
  EXPECT_THROW((void)merge_partials(std::move(parts)), util::ConfigError);
}

TEST(FedMerge, LoadPartialsIsThreadCountInvariant) {
  const TempDir dir("load");
  std::vector<std::filesystem::path> paths;
  for (std::size_t i = 0; i < 4; ++i) {
    const PartialSnapshot partial = run_partition(i, 4);
    paths.push_back(dir.path / partial_file_name(static_cast<std::uint32_t>(i),
                                                 4, partial.header.epoch));
    write_partial_file(paths.back(), partial);
  }
  const std::vector<LoadedPartial> base = load_partials(paths, 1);
  ASSERT_EQ(base.size(), 4u);
  for (const std::size_t threads : {2u, 4u}) {
    const std::vector<LoadedPartial> got = load_partials(paths, threads);
    ASSERT_EQ(got.size(), base.size()) << threads << " loader threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].path, base[i].path);
      EXPECT_EQ(encode_partial(got[i].partial),
                encode_partial(base[i].partial))
          << threads << " loader threads, partial " << i;
    }
  }
  const MergeResult merged = merge_partials(load_partials(paths, 4));
  EXPECT_EQ(merged.merged_partitions, 4u);
}

TEST(FedMerge, ChaosQuarantineAccountingCarriesThrough) {
  // Every partition of one cover replays the same sanitized feed and
  // reports identical feed-side quarantine; the merge carries one copy.
  const simnet::SimResult& sim = capture();
  trace::TraceStore store = sim.store;
  trace::sanitize_store(store);
  // Damage the copy deterministically: blank a few proxy hosts, which the
  // sanitizer quarantines as bad_host drops.
  for (std::size_t i = 0; i < store.proxy.size(); i += 97) {
    store.proxy[i].host.clear();
  }
  const trace::QuarantineStats expected = trace::sanitize_store(store);
  ASSERT_GT(expected.total_dropped(), 0u);
  store.sort_by_time();

  std::vector<LoadedPartial> parts;
  for (std::size_t i = 0; i < 2; ++i) {
    const live::LiveOptions opt = partition_options(i, 2);
    live::LiveEngine engine(store.devices, opt);
    engine.add_quarantine(expected);
    const live::FeedReplayer replayer(store, live::ReplayOptions{});
    (void)replayer.replay(engine);
    parts.push_back(LoadedPartial{make_partial(engine.stop(), opt), "mem"});
  }
  const MergeResult merged = merge_partials(std::move(parts));
  EXPECT_EQ(merged.snapshot.quarantine, expected);
}

TEST(FedStream, StreamedFeedMatchesFullStoreBitwise) {
  const TempDir dir("stream");
  const simnet::SimResult& sim = capture();
  ASSERT_TRUE(sim.store.is_sorted());
  trace::save_bundle(sim.store, dir.path);

  for (std::size_t partition = 0; partition < 3; ++partition) {
    const live::LiveOptions opt = partition_options(partition, 3);
    const PartitionFeed feed = load_partition_feed(dir.path, partition, 3);
    EXPECT_EQ(feed.feed_records,
              sim.store.proxy.size() + sim.store.mme.size());
    live::LiveEngine engine(feed.devices, opt);
    replay_partition_feed(feed, engine);
    const PartialSnapshot streamed = make_partial(engine.stop(), opt);

    live::LiveEngine full(sim.store.devices, opt);
    const live::FeedReplayer replayer(sim.store, live::ReplayOptions{});
    (void)replayer.replay(full);
    const PartialSnapshot materialized = make_partial(full.stop(), opt);

    EXPECT_EQ(encode_partial(streamed), encode_partial(materialized))
        << "partition " << partition;
  }
}

TEST(FedStream, RejectsUnsortedBundle) {
  const TempDir dir("unsorted");
  trace::TraceStore store = capture().store;
  ASSERT_GE(store.proxy.size(), 2u);
  std::swap(store.proxy.front(), store.proxy.back());
  trace::save_bundle(store, dir.path);
  EXPECT_THROW((void)load_partition_feed(dir.path, 0, 2), util::ParseError);
}

TEST(FedStream, RequiresBlockedV2Logs) {
  const TempDir dir("v3");
  trace::save_bundle(capture().store, dir.path, trace::BundleFormat::kBinary,
                     3);
  EXPECT_THROW((void)load_partition_feed(dir.path, 0, 2), util::ParseError);
}

TEST(FedStream, ReplayRequiresMatchingEnginePartition) {
  const TempDir dir("mismatch");
  trace::save_bundle(capture().store, dir.path);
  const PartitionFeed feed = load_partition_feed(dir.path, 0, 2);
  live::LiveEngine engine(feed.devices, partition_options(1, 2));
  EXPECT_THROW(replay_partition_feed(feed, engine), util::ConfigError);
}

}  // namespace
}  // namespace wearscope::fed
