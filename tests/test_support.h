// Shared helpers for the randomized test suites.
//
// Every test that draws randomness routes its seed through seed_or(), so
// a failure can be reproduced exactly:
//
//   const std::uint64_t seed = wearscope::testing::seed_or(55);
//   WEARSCOPE_SCOPED_SEED(seed);   // failure output names the seed
//   ...
//
// and re-run with the printed seed via the environment:
//
//   WEARSCOPE_TEST_SEED=0xBADC0FFEE ctest -R SnapshotStoreStress ...
//
// The override applies to every seed_or() call in the process, which is
// what you want when replaying one failing test in isolation.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/error.h"

namespace wearscope::testing {

/// The test seed: `fallback` unless the WEARSCOPE_TEST_SEED environment
/// variable is set (decimal or 0x-prefixed hex), which wins.
[[nodiscard]] inline std::uint64_t seed_or(std::uint64_t fallback) {
  const char* env = std::getenv("WEARSCOPE_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string text(env);
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &consumed, 0);  // base 0: decimal or 0x hex.
  } catch (...) {
    consumed = 0;
  }
  util::require(consumed == text.size(),
                "WEARSCOPE_TEST_SEED: expected a decimal or 0x-hex "
                "integer, got '" + text + "'");
  return value;
}

/// One-line reproduction hint for failure messages.
[[nodiscard]] inline std::string seed_note(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (re-run with WEARSCOPE_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace wearscope::testing

/// Attaches the seed to every assertion failure in the enclosing scope.
#define WEARSCOPE_SCOPED_SEED(seed) \
  SCOPED_TRACE(::wearscope::testing::seed_note(seed))
