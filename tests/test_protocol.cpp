// Tests for the HTTPS-readiness extension analysis.
#include "core/analysis_protocol.h"

#include <gtest/gtest.h>

#include "core/context.h"
#include "simnet/simulator.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;

trace::TraceStore micro_store() {
  trace::TraceStore s;
  s.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  s.sectors = {{1, util::GeoPoint{40.0, -3.0}}};
  const auto txn = [&](int minute, const char* host, bool http,
                       std::uint64_t bytes) {
    trace::ProxyRecord r;
    r.timestamp = util::day_start(1) + 3600 + minute * 60;
    r.user_id = 1;
    r.tac = kWearTac;
    r.protocol = http ? trace::Protocol::kHttp : trace::Protocol::kHttps;
    r.host = host;
    if (http) r.url_path = "/x";
    r.bytes_down = bytes;
    s.proxy.push_back(r);
  };
  // Weather (Weather category): 3 HTTPS of 1000 B + 1 HTTP of 2000 B.
  txn(0, "api.weather.com", false, 1000);
  txn(2, "api.weather.com", false, 1000);
  txn(4, "api.weather.com", false, 1000);
  txn(6, "api.weather.com", true, 2000);
  // WhatsApp (Communication): 1 HTTPS of 5000 B.
  txn(30, "e1.whatsapp.net", false, 5000);
  s.sort_by_time();
  return s;
}

AnalysisContext micro_context(const trace::TraceStore& store) {
  AnalysisOptions o;
  o.observation_days = 14;
  o.detailed_start_day = 0;
  o.long_tail_apps = 10;
  return AnalysisContext(store, o);
}

TEST(Protocol, ExactSharesOnMicroTrace) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const ProtocolResult r = analyze_protocol(ctx);
  EXPECT_DOUBLE_EQ(r.https_txn_share, 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(r.https_data_share, 8000.0 / 10000.0);
  EXPECT_DOUBLE_EQ(r.http_txns, 1.0);
  EXPECT_DOUBLE_EQ(r.https_txns, 4.0);

  // Per-category: Weather is 1/4 HTTP txns, Communication fully HTTPS.
  ASSERT_EQ(r.by_category.size(), 2u);
  EXPECT_EQ(r.by_category[0].category, appdb::Category::kWeather);
  EXPECT_DOUBLE_EQ(r.by_category[0].http_txn_share, 0.25);
  EXPECT_DOUBLE_EQ(r.by_category[0].http_data_share, 0.4);
  EXPECT_EQ(r.by_category[1].category, appdb::Category::kCommunication);
  EXPECT_DOUBLE_EQ(r.by_category[1].http_txn_share, 0.0);
}

TEST(Protocol, EmptyTrafficYieldsZeros) {
  trace::TraceStore store;
  store.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sort_by_time();
  const AnalysisContext ctx = micro_context(store);
  const ProtocolResult r = analyze_protocol(ctx);
  EXPECT_DOUBLE_EQ(r.https_txn_share, 0.0);
  EXPECT_TRUE(r.by_category.empty());
  EXPECT_TRUE(r.plaintext_laggards.empty());
}

TEST(Protocol, SimulatedTrafficIsHttpsDominant) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 29;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  AnalysisOptions o;
  o.observation_days = sim.observation_days;
  o.detailed_start_day = sim.detailed_start_day;
  o.long_tail_apps = cfg.long_tail_apps;
  const AnalysisContext ctx(sim.store, o);
  const ProtocolResult r = analyze_protocol(ctx);
  EXPECT_GT(r.https_txn_share, 0.85);
  EXPECT_GT(r.http_txns, 0.0) << "plaintext remnants must exist";
  EXPECT_TRUE(figure_protocol(r).all_pass());
  // Weather-poll apps carry the 10% HTTP remnant: Weather should sit near
  // the top of the plaintext ranking.
  ASSERT_FALSE(r.by_category.empty());
  bool weather_top3 = false;
  for (std::size_t i = 0; i < 3 && i < r.by_category.size(); ++i) {
    if (r.by_category[i].category == appdb::Category::kWeather)
      weather_top3 = true;
  }
  EXPECT_TRUE(weather_top3);
}

}  // namespace
}  // namespace wearscope::core
