// Unit tests for the in-memory TraceStore.
#include "trace/store.h"

#include <gtest/gtest.h>

namespace wearscope::trace {
namespace {

ProxyRecord proxy_at(util::SimTime t, UserId u) {
  ProxyRecord r;
  r.timestamp = t;
  r.user_id = u;
  r.host = "x.example";
  r.bytes_up = 10;
  r.bytes_down = 90;
  return r;
}

MmeRecord mme_at(util::SimTime t, UserId u, SectorId s) {
  return MmeRecord{t, u, 1, MmeEvent::kAttach, s};
}

TEST(TraceStore, SortByTimeThenUser) {
  TraceStore s;
  s.proxy = {proxy_at(10, 2), proxy_at(5, 1), proxy_at(10, 1)};
  s.mme = {mme_at(9, 3, 1), mme_at(1, 1, 2)};
  EXPECT_FALSE(s.is_sorted());
  s.sort_by_time();
  EXPECT_TRUE(s.is_sorted());
  EXPECT_EQ(s.proxy[0].timestamp, 5);
  EXPECT_EQ(s.proxy[1].user_id, 1u);  // ties broken by user id
  EXPECT_EQ(s.proxy[2].user_id, 2u);
  EXPECT_EQ(s.mme[0].timestamp, 1);
}

TEST(TraceStore, SummarizeCounts) {
  TraceStore s;
  s.proxy = {proxy_at(5, 1), proxy_at(7, 1), proxy_at(9, 2)};
  s.mme = {mme_at(1, 1, 3), mme_at(2, 3, 4)};
  s.devices = {{1, "m", "v", "os"}};
  s.sectors = {{3, {0, 0}}, {4, {1, 1}}};
  const TraceSummary sum = s.summarize();
  EXPECT_EQ(sum.proxy_records, 3u);
  EXPECT_EQ(sum.mme_records, 2u);
  EXPECT_EQ(sum.devices, 1u);
  EXPECT_EQ(sum.sectors, 2u);
  EXPECT_EQ(sum.distinct_proxy_users, 2u);
  EXPECT_EQ(sum.distinct_mme_users, 2u);
  EXPECT_EQ(sum.total_bytes, 300u);
  EXPECT_EQ(sum.first_timestamp, 1);
  EXPECT_EQ(sum.last_timestamp, 9);
}

TEST(TraceStore, SummarizeEmpty) {
  const TraceSummary sum = TraceStore{}.summarize();
  EXPECT_EQ(sum.proxy_records, 0u);
  EXPECT_EQ(sum.total_bytes, 0u);
}

TEST(TraceStore, DeviceAndSectorLookup) {
  TraceStore s;
  s.devices = {{100, "Gear S3", "Samsung", "Tizen"}, {200, "iPhone", "Apple", "iOS"}};
  s.sectors = {{7, {40.0, -3.0}}};
  const auto dev = s.find_device(100);
  ASSERT_TRUE(dev.has_value());
  EXPECT_EQ(dev->model, "Gear S3");
  EXPECT_FALSE(s.find_device(300).has_value());
  const auto sec = s.find_sector(7);
  ASSERT_TRUE(sec.has_value());
  EXPECT_DOUBLE_EQ(sec->position.lat_deg, 40.0);
  EXPECT_FALSE(s.find_sector(8).has_value());
}

TEST(TraceStore, RebuildIndexesAfterMutation) {
  TraceStore s;
  s.devices = {{100, "a", "b", "c"}};
  EXPECT_TRUE(s.find_device(100).has_value());
  s.devices.push_back({200, "d", "e", "f"});
  s.rebuild_indexes();
  EXPECT_TRUE(s.find_device(200).has_value());
}

}  // namespace
}  // namespace wearscope::trace
