// Unit tests for per-day traffic generation.
#include "simnet/traffic.h"

#include <set>

#include <gtest/gtest.h>

#include "util/strings.h"

namespace wearscope::simnet {
namespace {

struct World {
  SimConfig cfg = SimConfig::small();
  appdb::AppCatalog apps{cfg.long_tail_apps};
  appdb::DeviceModelCatalog devices;
  Geography geo{cfg, util::Pcg32(1)};
  Population pop{cfg, geo, apps, devices, util::Pcg32(2)};
  MobilityModel mobility{cfg, geo};
  TrafficModel traffic{cfg, apps};

  const Subscriber* find_owner(bool silent) const {
    for (const Subscriber* s : pop.of_segment(Segment::kWearableOwner)) {
      if (s->silent == silent && s->adoption_day == 0) return s;
    }
    return nullptr;
  }
};

TEST(TrafficPlan, SilentUsersRegisterButNeverTransact) {
  World w;
  const Subscriber* silent = w.find_owner(true);
  ASSERT_NE(silent, nullptr);
  util::Pcg32 rng(3);
  bool registered = false;
  for (int day = 0; day < 60; ++day) {
    const WearableDayPlan plan = w.traffic.plan_wearable_day(*silent, day, rng);
    EXPECT_FALSE(plan.active);
    registered |= plan.registered;
  }
  EXPECT_TRUE(registered);
}

TEST(TrafficPlan, DeadWearableNeverRegisters) {
  World w;
  Subscriber dead = *w.find_owner(false);
  dead.adoption_day = 100;
  util::Pcg32 rng(4);
  for (int day = 0; day < 100; ++day) {
    const WearableDayPlan plan = w.traffic.plan_wearable_day(dead, day, rng);
    EXPECT_FALSE(plan.registered);
    EXPECT_FALSE(plan.active);
  }
}

TEST(TrafficPlan, ActiveHoursAreValidAndDistinct) {
  World w;
  const Subscriber* s = w.find_owner(false);
  ASSERT_NE(s, nullptr);
  util::Pcg32 rng(5);
  int active_days = 0;
  for (int day = 0; day < 365 && active_days < 20; ++day) {
    const WearableDayPlan plan =
        w.traffic.plan_wearable_day(*s, day % w.cfg.observation_days, rng);
    if (!plan.active) continue;
    ++active_days;
    EXPECT_FALSE(plan.active_hours.empty());
    std::set<int> hours(plan.active_hours.begin(), plan.active_hours.end());
    EXPECT_EQ(hours.size(), plan.active_hours.size());
    for (const int h : plan.active_hours) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 24);
    }
  }
  EXPECT_GT(active_days, 0);
}

TEST(TrafficGen, WearableRecordsCarryWearableTacAndStayInDay) {
  World w;
  const Subscriber* s = w.find_owner(false);
  ASSERT_NE(s, nullptr);
  util::Pcg32 rng(6);
  std::vector<trace::ProxyRecord> out;
  for (int day = 0; day < 120 && out.empty(); ++day) {
    const WearableDayPlan plan = w.traffic.plan_wearable_day(*s, day, rng);
    if (!plan.active) continue;
    util::Pcg32 mob_rng(7);
    const DayItinerary it = w.mobility.build_day(*s, day, mob_rng);
    util::Pcg32 gen_rng(8);
    w.traffic.generate_wearable_day(*s, plan, it, gen_rng, out);
    for (const trace::ProxyRecord& r : out) {
      EXPECT_EQ(r.user_id, s->user_id);
      EXPECT_EQ(r.tac, s->wearable_tac);
      EXPECT_GE(util::day_of(r.timestamp), day);
      // A usage that starts before midnight may finish just after it.
      EXPECT_LE(r.timestamp, util::day_start(day + 1) + 15 * 60);
      EXPECT_GT(r.bytes_total(), 0u);
      EXPECT_FALSE(r.host.empty());
      if (r.protocol == trace::Protocol::kHttp) {
        EXPECT_FALSE(r.url_path.empty());
      } else {
        EXPECT_TRUE(r.url_path.empty());
      }
    }
  }
  EXPECT_FALSE(out.empty());
}

TEST(TrafficGen, IntraUsageGapsStayUnderSessionThreshold) {
  World w;
  const Subscriber* s = w.find_owner(false);
  ASSERT_NE(s, nullptr);
  // Sessionization gap of 60 s must never split one generated usage;
  // verify consecutive same-start-hour records cluster tightly.
  util::Pcg32 rng(9);
  std::vector<trace::ProxyRecord> out;
  for (int day = 0; day < 200 && out.size() < 50; ++day) {
    const WearableDayPlan plan =
        w.traffic.plan_wearable_day(*s, day % w.cfg.observation_days, rng);
    if (!plan.active) continue;
    util::Pcg32 mob_rng(10);
    const DayItinerary it =
        w.mobility.build_day(*s, day % w.cfg.observation_days, mob_rng);
    util::Pcg32 gen_rng(static_cast<std::uint64_t>(day));
    w.traffic.generate_wearable_day(*s, plan, it, gen_rng, out);
  }
  ASSERT_GT(out.size(), 5u);
  // All gaps within a generated usage are < 60 s by construction; we can't
  // see usage ids here, but gaps of (0, 60) must exist.
  std::sort(out.begin(), out.end(), trace::ByTimeThenUser{});
  bool saw_intra_gap = false;
  for (std::size_t i = 1; i < out.size(); ++i) {
    const auto gap = out[i].timestamp - out[i - 1].timestamp;
    if (gap > 0 && gap < 60) saw_intra_gap = true;
  }
  EXPECT_TRUE(saw_intra_gap);
}

TEST(TrafficGen, PhoneDayUsesPhoneTac) {
  World w;
  const Subscriber& s = *w.pop.of_segment(Segment::kControl).front();
  util::Pcg32 rng(11);
  util::Pcg32 mob_rng(12);
  const DayItinerary it = w.mobility.build_day(s, 140, mob_rng);
  std::vector<trace::ProxyRecord> out;
  for (int attempt = 0; attempt < 5 && out.empty(); ++attempt) {
    w.traffic.generate_phone_day(s, 140, it, rng, out);
  }
  ASSERT_FALSE(out.empty());
  for (const trace::ProxyRecord& r : out) {
    EXPECT_EQ(r.tac, s.phone_tac);
    EXPECT_EQ(util::day_of(r.timestamp), 140);
  }
}

TEST(TrafficGen, CompanionDomainsOnlyForFingerprintableUsers) {
  World w;
  const auto sigs = appdb::companion_signatures();
  const auto is_companion_host = [&](const std::string& host) {
    for (const appdb::CompanionSignature& sig : sigs) {
      for (const std::string& d : sig.domains) {
        if (util::host_matches_suffix(host, d)) return true;
      }
    }
    return false;
  };

  const Subscriber* plain = nullptr;
  const Subscriber* marked = nullptr;
  for (const Subscriber* s : w.pop.of_segment(Segment::kThroughDevice)) {
    if (s->companion_signature < 0 && plain == nullptr) plain = s;
    if (s->companion_signature >= 0 && marked == nullptr) marked = s;
  }
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(marked, nullptr);

  util::Pcg32 rng(13);
  util::Pcg32 mob_rng(14);
  std::vector<trace::ProxyRecord> plain_out;
  std::vector<trace::ProxyRecord> marked_out;
  for (int day = 140; day < 153; ++day) {
    const DayItinerary it_p = w.mobility.build_day(*plain, day, mob_rng);
    const DayItinerary it_m = w.mobility.build_day(*marked, day, mob_rng);
    w.traffic.generate_phone_day(*plain, day, it_p, rng, plain_out);
    w.traffic.generate_phone_day(*marked, day, it_m, rng, marked_out);
  }
  for (const trace::ProxyRecord& r : plain_out) {
    EXPECT_FALSE(is_companion_host(r.host)) << r.host;
  }
  const bool marked_has_companion = std::any_of(
      marked_out.begin(), marked_out.end(),
      [&](const trace::ProxyRecord& r) { return is_companion_host(r.host); });
  EXPECT_TRUE(marked_has_companion);
}

TEST(TrafficGen, HomeUsersTransactFromHomeSector) {
  World w;
  const Subscriber* home_user = nullptr;
  for (const Subscriber* s : w.pop.of_segment(Segment::kWearableOwner)) {
    if (s->home_user && !s->silent && s->adoption_day == 0) {
      home_user = s;
      break;
    }
  }
  ASSERT_NE(home_user, nullptr);
  util::Pcg32 rng(15);
  std::size_t txns = 0;
  std::size_t at_home = 0;
  for (int day = 0; day < w.cfg.observation_days; ++day) {
    const WearableDayPlan plan =
        w.traffic.plan_wearable_day(*home_user, day, rng);
    if (!plan.active) continue;
    util::Pcg32 mob_rng(16);
    const DayItinerary it = w.mobility.build_day(*home_user, day, mob_rng);
    std::vector<trace::ProxyRecord> out;
    util::Pcg32 gen_rng(static_cast<std::uint64_t>(day) + 17);
    w.traffic.generate_wearable_day(*home_user, plan, it, gen_rng, out);
    for (const trace::ProxyRecord& r : out) {
      ++txns;
      if (it.sector_at(r.timestamp) == home_user->home_sector) ++at_home;
    }
  }
  ASSERT_GT(txns, 0u);
  EXPECT_GT(static_cast<double>(at_home) / static_cast<double>(txns), 0.9);
}

TEST(TrafficModel, MeanActiveHoursMixture) {
  World w;
  Subscriber s = *w.find_owner(false);
  s.engagement = 1.0;
  EXPECT_NEAR(w.traffic.mean_active_hours_of(s), 2.3, 0.01);
  s.engagement = 4.0;  // heavy-user mixture component
  EXPECT_NEAR(w.traffic.mean_active_hours_of(s), 11.6, 0.01);
  s.engagement = 0.01;
  EXPECT_GE(w.traffic.mean_active_hours_of(s), 0.5);  // clamped
}

TEST(TrafficPlan, DeterministicGivenSameRngStream) {
  World w;
  const Subscriber* s = w.find_owner(false);
  util::Pcg32 a(42);
  util::Pcg32 b(42);
  for (int day = 0; day < 30; ++day) {
    const WearableDayPlan pa = w.traffic.plan_wearable_day(*s, day, a);
    const WearableDayPlan pb = w.traffic.plan_wearable_day(*s, day, b);
    EXPECT_EQ(pa.registered, pb.registered);
    EXPECT_EQ(pa.active, pb.active);
    EXPECT_EQ(pa.active_hours, pb.active_hours);
  }
}

}  // namespace
}  // namespace wearscope::simnet
