// Tests for the in-memory columnar transpose (trace/columns.h) and the
// row-vs-columnar kernel equivalence: every rewritten analyze_* kernel
// must reproduce its analyze_*_rows reference implementation bitwise on
// the same context, because the column views are built FROM the rows.
#include "trace/columns.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "core/analysis_diurnal.h"
#include "core/analysis_thirdparty.h"
#include "core/analysis_usage.h"
#include "core/context.h"
#include "par/task_pool.h"
#include "simnet/simulator.h"
#include "trace/store.h"

namespace wearscope::trace {
namespace {

std::vector<ProxyRecord> sample_proxy_rows() {
  std::vector<ProxyRecord> rows;
  const char* hosts[] = {"api.weather.com", "gw.gear.samsung.com",
                         "api.weather.com", "ads.example.net"};
  const Tac tacs[] = {35254208u, 35332008u, 35254208u, 35254208u};
  for (int i = 0; i < 4; ++i) {
    ProxyRecord r;
    r.timestamp = 1000 + i * 60;
    r.user_id = 100 + static_cast<UserId>(i % 2);
    r.tac = tacs[i];
    r.protocol = i % 2 == 0 ? Protocol::kHttps : Protocol::kHttp;
    r.host = hosts[i];
    r.url_path = "/p" + std::to_string(i);
    r.bytes_up = 10u * static_cast<std::uint64_t>(i + 1);
    r.bytes_down = 100u * static_cast<std::uint64_t>(i + 1);
    r.duration_ms = 250u + static_cast<std::uint32_t>(i);
    rows.push_back(std::move(r));
  }
  return rows;
}

TEST(Columns, ProxyTransposeMatchesRows) {
  const std::vector<ProxyRecord> rows = sample_proxy_rows();
  const ProxyColumns cols = build_proxy_columns(rows);
  ASSERT_EQ(cols.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(cols.timestamp[i], rows[i].timestamp) << i;
    EXPECT_EQ(cols.user_id[i], rows[i].user_id) << i;
    EXPECT_EQ(cols.tacs[cols.tac_id[i]], rows[i].tac) << i;
    EXPECT_EQ(cols.protocol[i], static_cast<std::uint8_t>(rows[i].protocol))
        << i;
    EXPECT_EQ(cols.hosts[cols.host_id[i]], rows[i].host) << i;
    EXPECT_EQ(cols.bytes_up[i], rows[i].bytes_up) << i;
    EXPECT_EQ(cols.bytes_down[i], rows[i].bytes_down) << i;
    EXPECT_EQ(cols.bytes_total[i], rows[i].bytes_total()) << i;
    EXPECT_EQ(cols.duration_ms[i], rows[i].duration_ms) << i;
  }
}

TEST(Columns, DictionariesAreFirstAppearanceOrder) {
  const ProxyColumns cols = build_proxy_columns(sample_proxy_rows());
  // Hosts: weather first, gear gateway second, ads third (repeat reuses).
  ASSERT_EQ(cols.hosts.size(), 3u);
  EXPECT_EQ(cols.hosts[0], "api.weather.com");
  EXPECT_EQ(cols.hosts[1], "gw.gear.samsung.com");
  EXPECT_EQ(cols.hosts[2], "ads.example.net");
  EXPECT_EQ(cols.host_id[2], 0u);  // repeat of row 0's host
  ASSERT_EQ(cols.tacs.size(), 2u);
  EXPECT_EQ(cols.tacs[0], 35254208u);
  EXPECT_EQ(cols.tacs[1], 35332008u);
}

TEST(Columns, MmeTransposeMatchesRows) {
  std::vector<MmeRecord> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({static_cast<util::SimTime>(500 + i),
                    static_cast<UserId>(7 + i % 3),
                    i % 2 == 0 ? 35254208u : 35909306u, MmeEvent::kAttach,
                    static_cast<SectorId>(40 + i)});
  }
  const MmeColumns cols = build_mme_columns(rows);
  ASSERT_EQ(cols.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(cols.timestamp[i], rows[i].timestamp) << i;
    EXPECT_EQ(cols.user_id[i], rows[i].user_id) << i;
    EXPECT_EQ(cols.tacs[cols.tac_id[i]], rows[i].tac) << i;
    EXPECT_EQ(cols.event[i], static_cast<std::uint8_t>(rows[i].event)) << i;
    EXPECT_EQ(cols.sector_id[i], rows[i].sector_id) << i;
  }
  ASSERT_EQ(cols.tacs.size(), 2u);
}

TEST(Columns, EmptyInputBuildsEmptyColumns) {
  const ProxyColumns p = build_proxy_columns({});
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.hosts.empty());
  const MmeColumns m = build_mme_columns({});
  EXPECT_EQ(m.size(), 0u);
}

TEST(Columns, PoolSizeDoesNotChangeTheColumns) {
  const std::vector<ProxyRecord> rows = [] {
    std::vector<ProxyRecord> out;
    for (int i = 0; i < 2000; ++i) {
      ProxyRecord r;
      r.timestamp = i;
      r.user_id = static_cast<UserId>(i % 37);
      r.tac = 35254208u + static_cast<Tac>(i % 5);
      r.host = "host" + std::to_string(i % 61);
      r.bytes_up = static_cast<std::uint64_t>(i);
      r.bytes_down = static_cast<std::uint64_t>(2 * i);
      out.push_back(std::move(r));
    }
    return out;
  }();
  const ProxyColumns seq = build_proxy_columns(rows, nullptr);
  for (int threads : {2, 4, 8}) {
    par::TaskPool pool(threads);
    const ProxyColumns par_cols = build_proxy_columns(rows, &pool);
    EXPECT_EQ(par_cols.timestamp, seq.timestamp) << threads;
    EXPECT_EQ(par_cols.user_id, seq.user_id) << threads;
    EXPECT_EQ(par_cols.tac_id, seq.tac_id) << threads;
    EXPECT_EQ(par_cols.host_id, seq.host_id) << threads;
    EXPECT_EQ(par_cols.bytes_total, seq.bytes_total) << threads;
    EXPECT_EQ(par_cols.hosts, seq.hosts) << threads;
    EXPECT_EQ(par_cols.tacs, seq.tacs) << threads;
  }
}

TEST(Columns, StoreBuildIsLazyAndSortInvalidates) {
  TraceStore store;
  ProxyRecord r;
  r.timestamp = 10;
  r.user_id = 1;
  r.tac = 35254208u;
  r.host = "a.example";
  store.proxy.push_back(r);
  r.timestamp = 5;
  r.host = "b.example";
  store.proxy.push_back(r);

  EXPECT_FALSE(store.columns_built());
  store.build_columns();
  EXPECT_TRUE(store.columns_built());
  EXPECT_EQ(store.proxy_columns().timestamp[0], 10);

  store.sort_by_time();
  EXPECT_FALSE(store.columns_built());
  // On-demand rebuild reflects the new row order.
  EXPECT_EQ(store.proxy_columns().timestamp[0], 5);
  EXPECT_TRUE(store.columns_built());
}

// ---- Row-vs-columnar kernel equivalence ------------------------------------

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 4242;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

core::AnalysisContext make_context(int threads = 1) {
  const simnet::SimResult& sim = capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  opt.threads = threads;
  return core::AnalysisContext(sim.store, opt);
}

void expect_same_ecdf(const util::Ecdf& a, const util::Ecdf& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.sorted().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.sorted()[i], b.sorted()[i]) << what << " sample " << i;
  }
}

TEST(ColumnarKernels, AdoptionMatchesRowReference) {
  const core::AnalysisContext ctx = make_context();
  const core::AdoptionResult cols = core::analyze_adoption(ctx);
  const core::AdoptionResult rows = core::analyze_adoption_rows(ctx);
  EXPECT_EQ(cols.ever_registered, rows.ever_registered);
  EXPECT_EQ(cols.ever_transacted, rows.ever_transacted);
  EXPECT_DOUBLE_EQ(cols.ever_transacting_fraction,
                   rows.ever_transacting_fraction);
  EXPECT_DOUBLE_EQ(cols.total_growth, rows.total_growth);
  EXPECT_DOUBLE_EQ(cols.monthly_growth, rows.monthly_growth);
  EXPECT_DOUBLE_EQ(cols.still_active_share, rows.still_active_share);
  EXPECT_DOUBLE_EQ(cols.gone_share, rows.gone_share);
  EXPECT_DOUBLE_EQ(cols.new_share, rows.new_share);
  EXPECT_DOUBLE_EQ(cols.churned_of_initial, rows.churned_of_initial);
  ASSERT_EQ(cols.daily_registered_norm.size(),
            rows.daily_registered_norm.size());
  for (std::size_t d = 0; d < cols.daily_registered_norm.size(); ++d) {
    EXPECT_DOUBLE_EQ(cols.daily_registered_norm[d],
                     rows.daily_registered_norm[d])
        << "day " << d;
  }
}

// The adoption kernel's dense last-seen-stamp fast path only engages for
// compact user-id spaces; ids spread across the 64-bit range must take
// the sort+unique fallback and still match the row reference exactly.
TEST(ColumnarKernels, AdoptionSparseUserIdsMatchRowReference) {
  constexpr Tac kWearTac = 35254208u;  // Gear S3 frontier LTE
  TraceStore store;
  store.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sectors = {{1, {40.0, -3.0}}};
  const UserId users[] = {7u, UserId{1} << 40, (UserId{1} << 40) + 9999u,
                          UserId{1} << 60};
  for (int d = 0; d < 28; ++d) {
    for (const UserId u : users) {
      if (u == users[1] && d >= 14) continue;  // churns after two weeks
      if (u == users[3] && d < 21) continue;   // adopts in the last week
      store.mme.push_back({util::day_start(d) + 8 * 3600, u, kWearTac,
                           MmeEvent::kAttach, 1});
    }
  }
  store.sort_by_time();
  core::AnalysisOptions opt;
  opt.observation_days = 28;
  opt.detailed_start_day = 14;
  opt.long_tail_apps = 10;
  const core::AnalysisContext ctx(store, opt);
  const core::AdoptionResult cols = core::analyze_adoption(ctx);
  const core::AdoptionResult rows = core::analyze_adoption_rows(ctx);
  EXPECT_EQ(cols.ever_registered, rows.ever_registered);
  EXPECT_EQ(rows.ever_registered, 4u);
  EXPECT_DOUBLE_EQ(cols.still_active_share, rows.still_active_share);
  EXPECT_DOUBLE_EQ(cols.gone_share, rows.gone_share);
  EXPECT_DOUBLE_EQ(cols.new_share, rows.new_share);
  EXPECT_DOUBLE_EQ(cols.churned_of_initial, rows.churned_of_initial);
  ASSERT_EQ(cols.daily_registered_norm.size(),
            rows.daily_registered_norm.size());
  for (std::size_t d = 0; d < cols.daily_registered_norm.size(); ++d) {
    EXPECT_DOUBLE_EQ(cols.daily_registered_norm[d],
                     rows.daily_registered_norm[d])
        << "day " << d;
  }
}

TEST(ColumnarKernels, ActivityMatchesRowReference) {
  const core::AnalysisContext ctx = make_context();
  const core::ActivityResult cols = core::analyze_activity(ctx);
  const core::ActivityResult rows = core::analyze_activity_rows(ctx);
  expect_same_ecdf(cols.active_days_per_week, rows.active_days_per_week,
                   "days/week");
  expect_same_ecdf(cols.active_hours_per_day, rows.active_hours_per_day,
                   "hours/day");
  expect_same_ecdf(cols.txn_size_bytes, rows.txn_size_bytes, "txn bytes");
  expect_same_ecdf(cols.hourly_txns_per_user, rows.hourly_txns_per_user,
                   "hourly txns");
  expect_same_ecdf(cols.hourly_bytes_per_user, rows.hourly_bytes_per_user,
                   "hourly bytes");
  EXPECT_DOUBLE_EQ(cols.mean_active_days, rows.mean_active_days);
  EXPECT_DOUBLE_EQ(cols.mean_active_hours, rows.mean_active_hours);
  EXPECT_DOUBLE_EQ(cols.frac_over_10h, rows.frac_over_10h);
  EXPECT_DOUBLE_EQ(cols.frac_under_5h, rows.frac_under_5h);
  EXPECT_DOUBLE_EQ(cols.mean_txn_bytes, rows.mean_txn_bytes);
  EXPECT_DOUBLE_EQ(cols.median_txn_bytes, rows.median_txn_bytes);
  EXPECT_DOUBLE_EQ(cols.frac_txn_under_10kb, rows.frac_txn_under_10kb);
  EXPECT_DOUBLE_EQ(cols.correlation, rows.correlation);
  EXPECT_DOUBLE_EQ(cols.binned_trend_corr, rows.binned_trend_corr);
}

TEST(ColumnarKernels, DiurnalMatchesRowReference) {
  const core::AnalysisContext ctx = make_context();
  const core::DiurnalResult cols = core::analyze_diurnal(ctx);
  const core::DiurnalResult rows = core::analyze_diurnal_rows(ctx);
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(cols.users_weekday[h], rows.users_weekday[h]) << h;
    EXPECT_DOUBLE_EQ(cols.users_weekend[h], rows.users_weekend[h]) << h;
    EXPECT_DOUBLE_EQ(cols.data_weekday[h], rows.data_weekday[h]) << h;
    EXPECT_DOUBLE_EQ(cols.data_weekend[h], rows.data_weekend[h]) << h;
    EXPECT_DOUBLE_EQ(cols.txns_weekday[h], rows.txns_weekday[h]) << h;
    EXPECT_DOUBLE_EQ(cols.txns_weekend[h], rows.txns_weekend[h]) << h;
  }
  for (int d = 0; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(cols.dow_txn_share[d], rows.dow_txn_share[d]) << d;
  }
  EXPECT_DOUBLE_EQ(cols.daily_active_fraction, rows.daily_active_fraction);
  EXPECT_DOUBLE_EQ(cols.commute_bump_ratio, rows.commute_bump_ratio);
  EXPECT_DOUBLE_EQ(cols.weekend_relative_usage, rows.weekend_relative_usage);
  EXPECT_DOUBLE_EQ(cols.day_of_week_spread, rows.day_of_week_spread);
}

TEST(ColumnarKernels, UsageMatchesRowReference) {
  const core::AnalysisContext ctx = make_context();
  const core::UsageResult cols = core::analyze_usage(ctx);
  const core::UsageResult rows = core::analyze_usage_rows(ctx);
  ASSERT_EQ(cols.apps.size(), rows.apps.size());
  for (std::size_t i = 0; i < cols.apps.size(); ++i) {
    EXPECT_EQ(cols.apps[i].app, rows.apps[i].app) << i;
    EXPECT_DOUBLE_EQ(cols.apps[i].mean_txns_per_usage,
                     rows.apps[i].mean_txns_per_usage)
        << i;
    EXPECT_DOUBLE_EQ(cols.apps[i].mean_kb_per_usage,
                     rows.apps[i].mean_kb_per_usage)
        << i;
    EXPECT_DOUBLE_EQ(cols.apps[i].mean_duration_s,
                     rows.apps[i].mean_duration_s)
        << i;
  }
}

TEST(ColumnarKernels, ThirdPartyMatchesRowReference) {
  const core::AnalysisContext ctx = make_context();
  const core::ThirdPartyResult cols = core::analyze_thirdparty(ctx);
  const core::ThirdPartyResult rows = core::analyze_thirdparty_rows(ctx);
  for (std::size_t c = 0; c < cols.classes.size(); ++c) {
    EXPECT_EQ(cols.classes[c].cls, rows.classes[c].cls) << c;
    EXPECT_DOUBLE_EQ(cols.classes[c].user_share_pct,
                     rows.classes[c].user_share_pct)
        << c;
    EXPECT_DOUBLE_EQ(cols.classes[c].txn_share_pct,
                     rows.classes[c].txn_share_pct)
        << c;
    EXPECT_DOUBLE_EQ(cols.classes[c].data_share_pct,
                     rows.classes[c].data_share_pct)
        << c;
  }
  EXPECT_DOUBLE_EQ(cols.app_over_thirdparty_data,
                   rows.app_over_thirdparty_data);
}

TEST(ColumnarKernels, ThreadCountDoesNotChangeTheAnswer) {
  const core::AnalysisContext one = make_context(1);
  const core::AnalysisContext eight = make_context(8);
  const core::AdoptionResult a1 = core::analyze_adoption(one);
  const core::AdoptionResult a8 = core::analyze_adoption(eight);
  EXPECT_EQ(a1.ever_registered, a8.ever_registered);
  EXPECT_DOUBLE_EQ(a1.monthly_growth, a8.monthly_growth);
  expect_same_ecdf(core::analyze_activity(one).txn_size_bytes,
                   core::analyze_activity(eight).txn_size_bytes, "txn bytes");
}

}  // namespace
}  // namespace wearscope::trace
