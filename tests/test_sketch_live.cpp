// Exactness gate for the live engine's bounded-memory sketch mode
// (LiveOptions::sketch_aggregates).  The same capture is replayed twice —
// exact mode and sketch mode — and the sketch summary must land inside
// the error budget docs/DESIGN.md advertises:
//
//   * HLL distinct users within 2% of the exact adoption counts,
//   * t-digest p50/p95/p99 of transaction sizes within 1% of the exact
//     ECDF quantiles,
//   * the count-min top-K apps a superset of every app whose exact
//     transaction count strictly beats the exact K-th count (tie-robust),
//
// while everything sketch mode still tracks exactly (per-class and
// per-app transaction counts, sector event counters) stays bitwise equal,
// and the merged sketch footprint stays flat.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "simnet/simulator.h"

namespace wearscope::live {
namespace {

const simnet::SimResult& capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 77;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

LiveSnapshot run_live(std::size_t shards, bool sketch) {
  const simnet::SimResult& sim = capture();
  LiveOptions opt;
  opt.shards = shards;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  opt.sketch_aggregates = sketch;
  LiveEngine engine(sim.store.devices, opt);
  const FeedReplayer replayer(sim.store, ReplayOptions{});
  replayer.replay(engine);
  return engine.stop();
}

double rel_err(double estimate, double exact) {
  return exact == 0.0 ? std::abs(estimate) : std::abs(estimate - exact) / exact;
}

TEST(SketchLive, ExactModeLeavesSketchDisabled) {
  const LiveSnapshot exact = run_live(2, /*sketch=*/false);
  EXPECT_FALSE(exact.sketch.enabled);
  EXPECT_TRUE(exact.sketch.top_apps.empty());
  EXPECT_EQ(exact.sketch.memory_bytes, 0u);
}

TEST(SketchLive, DistinctUsersWithinTwoPercent) {
  const LiveSnapshot exact = run_live(4, /*sketch=*/false);
  const LiveSnapshot sketch = run_live(4, /*sketch=*/true);
  ASSERT_TRUE(sketch.sketch.enabled);
  ASSERT_GT(exact.adoption.ever_registered, 0u);
  ASSERT_GT(exact.adoption.ever_transacted, 0u);
  EXPECT_LT(rel_err(sketch.sketch.registered_users,
                    static_cast<double>(exact.adoption.ever_registered)),
            0.02)
      << "HLL=" << sketch.sketch.registered_users
      << " exact=" << exact.adoption.ever_registered;
  EXPECT_LT(rel_err(sketch.sketch.transacting_users,
                    static_cast<double>(exact.adoption.ever_transacted)),
            0.02)
      << "HLL=" << sketch.sketch.transacting_users
      << " exact=" << exact.adoption.ever_transacted;
}

TEST(SketchLive, TxnSizeQuantilesWithinOnePercent) {
  const LiveSnapshot exact = run_live(4, /*sketch=*/false);
  const LiveSnapshot sketch = run_live(4, /*sketch=*/true);
  ASSERT_TRUE(sketch.sketch.enabled);
  const util::Ecdf& sizes = exact.activity.txn_size_bytes;
  ASSERT_GT(sizes.size(), 0u);
  EXPECT_LT(rel_err(sketch.sketch.txn_size_p50, sizes.quantile(0.50)), 0.01);
  EXPECT_LT(rel_err(sketch.sketch.txn_size_p95, sizes.quantile(0.95)), 0.01);
  EXPECT_LT(rel_err(sketch.sketch.txn_size_p99, sizes.quantile(0.99)), 0.01);
}

TEST(SketchLive, TopAppsCoverEveryStrictlyHeavierApp) {
  const LiveSnapshot exact = run_live(4, /*sketch=*/false);
  const LiveSnapshot sketch = run_live(4, /*sketch=*/true);
  ASSERT_TRUE(sketch.sketch.enabled);
  ASSERT_FALSE(sketch.sketch.top_apps.empty());
  ASSERT_FALSE(exact.apps.empty());

  // exact.apps is sorted by transactions descending.  Every app whose
  // exact count strictly beats the K-th exact count must be reported —
  // apps tied with the K-th may legitimately fall either side of the cut.
  const std::size_t k =
      std::min(sketch.sketch.top_apps.size(), exact.apps.size());
  const std::uint64_t kth = exact.apps[k - 1].counter.transactions;
  std::set<std::string> reported;
  for (const auto& [name, count] : sketch.sketch.top_apps) {
    reported.insert(name);
  }
  for (const LiveSnapshot::AppRow& row : exact.apps) {
    if (row.counter.transactions <= kth) break;
    EXPECT_TRUE(reported.contains(row.name))
        << row.name << " has " << row.counter.transactions
        << " txns (kth=" << kth << ") but is missing from the sketch top-"
        << k;
  }
  // And the reported counts are exact here: the app-name key space is far
  // below the candidate capacity, so the tracker never evicted.
  for (const auto& [name, count] : sketch.sketch.top_apps) {
    for (const LiveSnapshot::AppRow& row : exact.apps) {
      if (row.name == name) {
        EXPECT_EQ(count, row.counter.transactions) << name;
        break;
      }
    }
  }
}

TEST(SketchLive, ExactCountersSurviveSketchMode) {
  const LiveSnapshot exact = run_live(3, /*sketch=*/false);
  const LiveSnapshot sketch = run_live(3, /*sketch=*/true);

  EXPECT_EQ(sketch.records, exact.records);
  for (std::size_t c = 0; c < exact.class_txns.size(); ++c) {
    EXPECT_EQ(sketch.class_txns[c], exact.class_txns[c]) << "class " << c;
  }
  // Per-app transactions and bytes are plain counters, still exact; the
  // per-user state behind usages and distinct_users is what sketch mode
  // drops, so those must read 0 rather than something wrong.
  ASSERT_EQ(sketch.apps.size(), exact.apps.size());
  for (std::size_t i = 0; i < exact.apps.size(); ++i) {
    EXPECT_EQ(sketch.apps[i].app, exact.apps[i].app) << "row " << i;
    EXPECT_EQ(sketch.apps[i].counter.transactions,
              exact.apps[i].counter.transactions)
        << "row " << i;
    EXPECT_EQ(sketch.apps[i].counter.bytes, exact.apps[i].counter.bytes)
        << "row " << i;
    EXPECT_EQ(sketch.apps[i].counter.usages, 0u) << "row " << i;
    EXPECT_EQ(sketch.apps[i].counter.distinct_users, 0u) << "row " << i;
  }
  ASSERT_EQ(sketch.sectors.size(), exact.sectors.size());
  for (std::size_t i = 0; i < exact.sectors.size(); ++i) {
    EXPECT_EQ(sketch.sectors[i].sector, exact.sectors[i].sector) << i;
    EXPECT_EQ(sketch.sectors[i].counter.events,
              exact.sectors[i].counter.events)
        << i;
  }
  // The exact adoption/activity results are not maintained in sketch mode.
  EXPECT_EQ(sketch.adoption.ever_registered, 0u);
  EXPECT_EQ(sketch.activity.txn_size_bytes.size(), 0u);
}

TEST(SketchLive, ShardCountDoesNotChangeTheSummary) {
  const LiveSnapshot one = run_live(1, /*sketch=*/true);
  const LiveSnapshot four = run_live(4, /*sketch=*/true);
  // HLL and count-min merges are loss-free (register max / element sum),
  // so those numbers are bitwise independent of the sharding.  The
  // t-digest merge is order-dependent in principle, but assemble() merges
  // in shard order, so each shard count has ONE deterministic answer —
  // and the estimates must still agree within the gate budget.
  EXPECT_DOUBLE_EQ(one.sketch.registered_users, four.sketch.registered_users);
  EXPECT_DOUBLE_EQ(one.sketch.transacting_users,
                   four.sketch.transacting_users);
  ASSERT_EQ(one.sketch.top_apps.size(), four.sketch.top_apps.size());
  for (std::size_t i = 0; i < one.sketch.top_apps.size(); ++i) {
    EXPECT_EQ(one.sketch.top_apps[i].first, four.sketch.top_apps[i].first);
    EXPECT_EQ(one.sketch.top_apps[i].second, four.sketch.top_apps[i].second);
  }
  EXPECT_LT(rel_err(four.sketch.txn_size_p50, one.sketch.txn_size_p50), 0.01);
  EXPECT_LT(rel_err(four.sketch.txn_size_p95, one.sketch.txn_size_p95), 0.01);
  EXPECT_LT(rel_err(four.sketch.txn_size_p99, one.sketch.txn_size_p99), 0.01);
}

TEST(SketchLive, MemoryFootprintIsFlat) {
  const LiveSnapshot snap = run_live(2, /*sketch=*/true);
  ASSERT_TRUE(snap.sketch.enabled);
  EXPECT_GT(snap.sketch.memory_bytes, 0u);
  // Two HLLs (4 KiB each) + count-min (4 rows x 8192 x 8 B = 256 KiB) +
  // t-digest + candidate table: comfortably under 1 MiB, independent of
  // how many users streamed through.
  EXPECT_LT(snap.sketch.memory_bytes, std::size_t{1} << 20);
}

TEST(SketchLive, BatchPipelineAgreesWithTheGateTargets) {
  // The gate above compares sketch vs exact-live; close the loop by
  // checking exact-live against the batch pipeline on this capture too,
  // so the sketch bounds are anchored to the paper numbers.
  const simnet::SimResult& sim = capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  const core::StudyReport batch = core::Pipeline(sim.store, opt).run();
  const LiveSnapshot exact = run_live(2, /*sketch=*/false);
  EXPECT_EQ(exact.adoption.ever_registered, batch.adoption.ever_registered);
  EXPECT_EQ(exact.adoption.ever_transacted, batch.adoption.ever_transacted);
  EXPECT_EQ(exact.activity.txn_size_bytes.size(),
            batch.activity.txn_size_bytes.size());
}

}  // namespace
}  // namespace wearscope::live
