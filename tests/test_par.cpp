// wearscope::par + parallel batch pipeline tests.
//
// Three suites:
//  - TaskPool: the scheduler itself (inline single-thread path, full batch
//    execution, exception propagation, slice coverage).
//  - ParPipeline: the determinism contract — the serialized StudyReport is
//    byte-identical for --threads 1/2/4/8 on a seeded capture, and the
//    context's user order/attribution matches the sequential reference.
//  - HostClassification: the allocation-free lookup path agrees with a
//    reimplementation of the old allocating classifier over a seeded fuzz
//    corpus of hosts, and HostClassCache is a pure memo.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "par/shard.h"
#include "par/task_pool.h"
#include "simnet/simulator.h"
#include "util/rng.h"
#include "util/strings.h"

namespace wearscope {
namespace {

// --- TaskPool --------------------------------------------------------------

TEST(TaskPool, RunsEveryTask) {
  par::TaskPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&count] { ++count; });
  pool.run(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, SingleThreadRunsInlineInSubmissionOrder) {
  par::TaskPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&order, i] { order.push_back(i); });
  pool.run(std::move(tasks));
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expected);
}

TEST(TaskPool, ZeroThreadsClampsToOne) {
  par::TaskPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  int ran = 0;
  pool.run({[&ran] { ++ran; }});
  EXPECT_EQ(ran, 1);
}

TEST(TaskPool, EmptyBatchIsNoOp) {
  par::TaskPool pool(4);
  pool.run({});
}

TEST(TaskPool, FirstExceptionPropagatesAfterDrain) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    par::TaskPool pool(threads);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 20; ++i) tasks.push_back([&completed] { ++completed; });
    EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
    // The pool must stay usable after a failed batch.
    std::atomic<int> again{0};
    pool.run({[&again] { ++again; }});
    EXPECT_EQ(again.load(), 1);
  }
}

TEST(TaskPool, ForSlicesCoversRangeExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{5}, std::size_t{97}}) {
      par::TaskPool pool(threads);
      std::vector<std::atomic<int>> hits(n);
      pool.for_slices(n, [&hits](std::size_t lo, std::size_t hi,
                                 std::size_t slice) {
        EXPECT_LT(lo, hi);
        EXPECT_LT(slice, 8u);
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
      }
    }
  }
}

TEST(TaskPool, ShardOfIsStableAndInRange) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{7}}) {
    for (std::uint64_t user = 0; user < 1000; ++user) {
      const std::size_t s = par::shard_of(user, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, par::shard_of(user, shards));  // deterministic
    }
  }
}

// --- ParPipeline: determinism contract -------------------------------------

/// Shared seeded capture (small preset: fast, but exercises every analysis).
const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg = simnet::SimConfig::small();
    cfg.seed = 77;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

core::AnalysisOptions options_with_threads(int threads) {
  const simnet::SimResult& sim = shared_capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  opt.threads = threads;
  return opt;
}

TEST(ParPipeline, ReportBytesIdenticalForEveryThreadCount) {
  const simnet::SimResult& sim = shared_capture();
  const core::Pipeline reference(sim.store, options_with_threads(1));
  const std::string expected = reference.run().to_text();
  ASSERT_FALSE(expected.empty());
  for (const int threads : {2, 4, 8}) {
    const core::Pipeline pipeline(sim.store, options_with_threads(threads));
    EXPECT_EQ(pipeline.run().to_text(), expected)
        << "report diverged at threads=" << threads;
  }
}

TEST(ParPipeline, ContextMatchesSequentialReference) {
  const simnet::SimResult& sim = shared_capture();
  const core::AnalysisContext ref(sim.store, options_with_threads(1));
  for (const int threads : {2, 4, 8}) {
    const core::AnalysisContext ctx(sim.store, options_with_threads(threads));
    ASSERT_EQ(ctx.users().size(), ref.users().size());
    for (std::size_t i = 0; i < ref.users().size(); ++i) {
      const core::UserView& a = ref.users()[i];
      const core::UserView& b = ctx.users()[i];
      ASSERT_EQ(a.user_id, b.user_id) << "user order diverged at " << i;
      EXPECT_EQ(a.has_wearable, b.has_wearable);
      EXPECT_EQ(a.wearable_txns, b.wearable_txns);
      EXPECT_EQ(a.phone_txns, b.phone_txns);
      EXPECT_EQ(a.mme, b.mme);
      EXPECT_EQ(a.wearable_classes, b.wearable_classes);
      ASSERT_EQ(a.usages.size(), b.usages.size());
    }
    EXPECT_EQ(ctx.wearable_users().size(), ref.wearable_users().size());
    EXPECT_EQ(ctx.other_users().size(), ref.other_users().size());
  }
}

TEST(ParPipeline, FigureLookupIsConsistentWithLinearScan) {
  const simnet::SimResult& sim = shared_capture();
  const core::Pipeline pipeline(sim.store, options_with_threads(2));
  const core::StudyReport rep = pipeline.run();
  for (const core::FigureData& f : rep.figures) {
    EXPECT_EQ(&rep.figure(f.id), &f) << f.id;
  }
  EXPECT_THROW(rep.figure("no-such-figure"), std::out_of_range);
  // Repeated lookups hit the cached index; same addresses, same misses.
  for (const core::FigureData& f : rep.figures) {
    EXPECT_EQ(&rep.figure(f.id), &f) << f.id;
  }
  EXPECT_THROW(rep.figure("no-such-figure"), std::out_of_range);
}

// --- HostClassification: fuzz oracle ---------------------------------------

/// Reimplementation of the pre-optimization allocating classifier, built
/// from the same public inputs (catalog + third-party pools).  Serves as
/// the oracle the allocation-free path must agree with.
class OldStyleClassifier {
 public:
  explicit OldStyleClassifier(const appdb::AppCatalog& catalog) {
    std::size_t rule_total = 0;
    for (const appdb::AppInfo& app : catalog.apps()) {
      if (app.in_signature_table) rule_total += app.domains.size();
    }
    std::size_t rules = 0;
    for (const appdb::AppInfo& app : catalog.apps()) {
      if (!app.in_signature_table) continue;
      for (const std::string& domain : app.domains) {
        if (rules >= rule_total) break;
        const std::string suffix = util::to_lower(domain);
        ++rules;
        rule_index_.emplace(suffix, app.id);  // first app wins on dup suffix
        const std::string reg = util::registrable_domain(suffix);
        const auto [it, inserted] = registrable_index_.emplace(reg, app.id);
        if (!inserted && it->second != app.id) it->second = core::kUnknownApp;
      }
    }
    for (const std::string_view d : appdb::utility_domains())
      utilities_.insert(util::to_lower(d));
    for (const std::string_view d : appdb::advertising_domains())
      advertising_.insert(util::to_lower(d));
    for (const std::string_view d : appdb::analytics_domains())
      analytics_.insert(util::to_lower(d));
  }

  core::EndpointClass classify(std::string_view host) const {
    const std::string lower = util::to_lower(host);
    appdb::AppId app = core::kUnknownApp;
    for (std::string s = lower;;) {
      const auto it = rule_index_.find(s);
      if (it != rule_index_.end()) {
        app = it->second;
        break;
      }
      const auto dot = s.find('.');
      if (dot == std::string::npos) break;
      s = s.substr(dot + 1);
    }
    if (app == core::kUnknownApp) {
      const auto it = registrable_index_.find(util::registrable_domain(lower));
      if (it != registrable_index_.end() && it->second != core::kUnknownApp) {
        app = it->second;
      }
    }
    if (app != core::kUnknownApp) {
      return {appdb::TransactionClass::kApplication, app};
    }
    if (pool_matches(lower, utilities_)) {
      return {appdb::TransactionClass::kUtilities, core::kUnknownApp};
    }
    if (pool_matches(lower, advertising_) || util::has_label(lower, "ads") ||
        util::has_label(lower, "adserver")) {
      return {appdb::TransactionClass::kAdvertising, core::kUnknownApp};
    }
    if (pool_matches(lower, analytics_) ||
        util::has_label(lower, "analytics") ||
        util::has_label(lower, "metrics") ||
        util::has_label(lower, "telemetry")) {
      return {appdb::TransactionClass::kAnalytics, core::kUnknownApp};
    }
    return {appdb::TransactionClass::kApplication, core::kUnknownApp};
  }

 private:
  static bool pool_matches(const std::string& lower,
                           const std::unordered_set<std::string>& pool) {
    for (std::string s = lower;;) {
      if (pool.contains(s)) return true;
      const auto dot = s.find('.');
      if (dot == std::string::npos) return false;
      s = s.substr(dot + 1);
    }
  }

  std::unordered_map<std::string, appdb::AppId> rule_index_;
  std::unordered_map<std::string, appdb::AppId> registrable_index_;
  std::unordered_set<std::string> utilities_;
  std::unordered_set<std::string> advertising_;
  std::unordered_set<std::string> analytics_;
};

/// Seeded corpus of hostname-shaped strings: catalog/pool domains verbatim,
/// with random subdomain prefixes, case flips, typo-like mutations and
/// fully random label chains.  Hostname alphabet only (no whitespace).
std::vector<std::string> fuzz_hosts(const appdb::AppCatalog& catalog,
                                    std::size_t count) {
  util::Pcg32 rng(0xF0CC);
  std::vector<std::string> seeds;
  for (const appdb::AppInfo& app : catalog.apps()) {
    for (const std::string& d : app.domains) seeds.push_back(d);
  }
  for (const std::string_view d : appdb::utility_domains())
    seeds.emplace_back(d);
  for (const std::string_view d : appdb::advertising_domains())
    seeds.emplace_back(d);
  for (const std::string_view d : appdb::analytics_domains())
    seeds.emplace_back(d);
  seeds.insert(seeds.end(),
               {"ads.example.net", "roads.example.net", "metrics.x.co.uk",
                "telemetry.y.com.au", "a.b.c.d.e.example", "localhost",
                "x", "example.co.uk", "weather.com.evil.example"});

  static constexpr std::string_view kLabels[] = {
      "api", "cdn", "www", "edge", "ads", "adserver", "analytics", "metrics",
      "telemetry", "img7", "static", "m", "roads", "co", "uk"};
  const auto random_label = [&rng]() -> std::string {
    std::string s;
    const int len = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.uniform_int(0, 25));
    }
    return s;
  };

  std::vector<std::string> out;
  out.reserve(count);
  while (out.size() < count) {
    std::string h = seeds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
    switch (rng.uniform_int(0, 5)) {
      case 0:  // verbatim
        break;
      case 1:  // known subdomain prefix
        h = std::string(kLabels[rng.uniform_int(0, 14)]) + "." + h;
        break;
      case 2:  // random subdomain chain
        h = random_label() + "." + random_label() + "." + h;
        break;
      case 3: {  // random case flips
        for (char& c : h) {
          if (rng.uniform_int(0, 3) == 0) {
            c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
          }
        }
        break;
      }
      case 4: {  // truncate to a suffix (coarsened host)
        const auto dot = h.find('.');
        if (dot != std::string::npos) h = h.substr(dot + 1);
        break;
      }
      default:  // fully random label chain
        h = random_label() + "." + random_label() + "." + random_label();
        break;
    }
    out.push_back(std::move(h));
  }
  return out;
}

TEST(HostClassification, FuzzCorpusAgreesWithOldAllocatingPath) {
  const appdb::AppCatalog catalog(60);
  const core::AppSignatureTable table(catalog);
  const OldStyleClassifier oracle(catalog);
  const std::vector<std::string> corpus = fuzz_hosts(catalog, 5000);
  for (const std::string& host : corpus) {
    const core::EndpointClass got = table.classify_host(host);
    const core::EndpointClass want = oracle.classify(host);
    ASSERT_EQ(got, want) << "divergence on host: " << host;
    // match_app must agree with the classification's app field (pools and
    // label heuristics never set one).
    const auto direct = table.match_app(host);
    EXPECT_EQ(direct.value_or(core::kUnknownApp), want.app) << host;
  }
}

TEST(HostClassification, CacheIsAPureMemo) {
  const appdb::AppCatalog catalog(40);
  const core::AppSignatureTable table(catalog);
  core::HostClassCache cache(table);
  const std::vector<std::string> corpus = fuzz_hosts(catalog, 1000);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& host : corpus) {
      EXPECT_EQ(cache.classify(host), table.classify_host(host)) << host;
    }
  }
  // Second pass (and repeats within the first) must have hit the memo.
  EXPECT_GE(cache.hits(), corpus.size());
  EXPECT_LE(cache.distinct_hosts(), corpus.size());
}

TEST(HostClassification, MappedAppCountMatchesCatalog) {
  const appdb::AppCatalog catalog(40);
  const core::AppSignatureTable table(catalog);
  std::set<appdb::AppId> expected;
  for (const appdb::AppInfo& app : catalog.apps()) {
    if (app.in_signature_table && !app.domains.empty()) expected.insert(app.id);
  }
  EXPECT_EQ(table.mapped_app_count(), expected.size());
}

}  // namespace
}  // namespace wearscope
