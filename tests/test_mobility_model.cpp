// Unit tests for the daily mobility model.
#include "simnet/mobility.h"

#include "util/stats.h"

#include <gtest/gtest.h>

namespace wearscope::simnet {
namespace {

struct World {
  SimConfig cfg = SimConfig::small();
  appdb::AppCatalog apps{cfg.long_tail_apps};
  appdb::DeviceModelCatalog devices;
  Geography geo{cfg, util::Pcg32(1)};
  Population pop{cfg, geo, apps, devices, util::Pcg32(2)};
  MobilityModel mobility{cfg, geo};

  const Subscriber& owner(std::size_t i = 0) const {
    return *pop.of_segment(Segment::kWearableOwner).at(i);
  }
};

TEST(Itinerary, StartsAtHomeAtMidnight) {
  World w;
  util::Pcg32 rng(3);
  for (int day = 0; day < 14; ++day) {
    const DayItinerary it = w.mobility.build_day(w.owner(), day, rng);
    ASSERT_FALSE(it.legs.empty());
    EXPECT_EQ(it.legs.front().start, util::day_start(day));
    EXPECT_EQ(it.legs.front().sector, w.owner().home_sector);
  }
}

TEST(Itinerary, LegsAreTimeSortedWithinDay) {
  World w;
  util::Pcg32 rng(4);
  for (int day = 0; day < 30; ++day) {
    const DayItinerary it = w.mobility.build_day(w.owner(day % 10), day, rng);
    for (std::size_t i = 1; i < it.legs.size(); ++i) {
      EXPECT_GE(it.legs[i].start, it.legs[i - 1].start);
      EXPECT_LT(it.legs[i].start, util::day_start(day + 1));
    }
  }
}

TEST(Itinerary, SectorAtRespectsLegBoundaries) {
  DayItinerary it;
  it.day = 0;
  it.legs = {{0, 1}, {100, 2}, {200, 3}};
  EXPECT_EQ(it.sector_at(-5), 1u);  // clamps before first leg
  EXPECT_EQ(it.sector_at(0), 1u);
  EXPECT_EQ(it.sector_at(99), 1u);
  EXPECT_EQ(it.sector_at(100), 2u);
  EXPECT_EQ(it.sector_at(150), 2u);
  EXPECT_EQ(it.sector_at(1000), 3u);
}

TEST(Itinerary, DistinctSectorsDeduplicates) {
  DayItinerary it;
  it.legs = {{0, 1}, {10, 2}, {20, 1}, {30, 3}};
  EXPECT_EQ(it.distinct_sectors(),
            (std::vector<trace::SectorId>{1, 2, 3}));
}

TEST(MobilityModel, CommuteAppearsOnWeekdays) {
  World w;
  util::Pcg32 rng(5);
  int with_work = 0;
  int weekdays = 0;
  const Subscriber& sub = w.owner();
  for (int day = 0; day < 140; ++day) {
    if (util::is_weekend_day(day)) continue;
    ++weekdays;
    const DayItinerary it = w.mobility.build_day(sub, day, rng);
    for (const ItineraryLeg& leg : it.legs) {
      if (leg.sector == sub.work_sector && leg.start > util::day_start(day)) {
        ++with_work;
        break;
      }
    }
  }
  // Commute probability is 0.4..0.8; expect a healthy share of workdays.
  EXPECT_GT(static_cast<double>(with_work) / weekdays, 0.35);
}

TEST(MobilityModel, EmitMmeStartsWithAttachThenHandoversAndTaus) {
  World w;
  util::Pcg32 rng(6);
  const Subscriber& sub = w.owner();
  const DayItinerary it = w.mobility.build_day(sub, 3, rng);
  std::vector<trace::MmeRecord> mme;
  w.mobility.emit_mme(it, sub, sub.phone_tac, mme);
  ASSERT_FALSE(mme.empty());
  EXPECT_EQ(mme.front().event, trace::MmeEvent::kAttach);
  EXPECT_EQ(mme.front().sector_id, sub.home_sector);
  EXPECT_EQ(mme.front().user_id, sub.user_id);
  for (std::size_t i = 1; i < mme.size(); ++i) {
    EXPECT_GE(mme[i].timestamp, mme[i - 1].timestamp);
    EXPECT_EQ(mme[i].tac, sub.phone_tac);
    if (mme[i].event == trace::MmeEvent::kHandover) {
      EXPECT_NE(mme[i].sector_id, mme[i - 1].sector_id)
          << "handover must change sector";
    } else {
      // Keep-alives re-report the current sector.
      EXPECT_EQ(mme[i].event, trace::MmeEvent::kTau);
      EXPECT_EQ(mme[i].sector_id, mme[i - 1].sector_id);
    }
  }
}

TEST(MobilityModel, TauKeepAlivesCoverStationaryStretches) {
  World w;
  const Subscriber& sub = w.owner();
  DayItinerary it;
  it.day = 0;
  it.legs = {{util::day_start(0), sub.home_sector}};  // static all day
  std::vector<trace::MmeRecord> mme;
  w.mobility.emit_mme(it, sub, sub.phone_tac, mme,
                      /*tau_interval_s=*/6 * util::kSecondsPerHour);
  // Attach at 00:00 plus TAUs at 06:00, 12:00, 18:00.
  ASSERT_EQ(mme.size(), 4u);
  EXPECT_EQ(mme[0].event, trace::MmeEvent::kAttach);
  for (std::size_t i = 1; i < mme.size(); ++i) {
    EXPECT_EQ(mme[i].event, trace::MmeEvent::kTau);
    EXPECT_EQ(mme[i].sector_id, sub.home_sector);
    EXPECT_EQ(mme[i].timestamp,
              util::day_start(0) +
                  static_cast<util::SimTime>(i) * 6 * util::kSecondsPerHour);
  }
}

TEST(MobilityModel, TauDisabledWithZeroInterval) {
  World w;
  const Subscriber& sub = w.owner();
  DayItinerary it;
  it.day = 0;
  it.legs = {{util::day_start(0), sub.home_sector}};
  std::vector<trace::MmeRecord> mme;
  w.mobility.emit_mme(it, sub, sub.phone_tac, mme, /*tau_interval_s=*/0);
  EXPECT_EQ(mme.size(), 1u);
}

TEST(MobilityModel, MaxDisplacementZeroForSingleSector) {
  World w;
  DayItinerary it;
  it.legs = {{0, 1}, {100, 1}};
  EXPECT_DOUBLE_EQ(w.mobility.max_displacement_km(it), 0.0);
}

TEST(MobilityModel, MaxDisplacementMatchesGeography) {
  World w;
  DayItinerary it;
  it.legs = {{0, 1}, {100, 2}};
  const double expected = util::haversine_km(w.geo.sector_position(1),
                                             w.geo.sector_position(2));
  EXPECT_NEAR(w.mobility.max_displacement_km(it), expected, 1e-9);
}

TEST(MobilityModel, OwnersTravelFartherThanControls) {
  World w;
  util::Pcg32 rng(7);
  util::OnlineStats owners;
  util::OnlineStats controls;
  for (int day = 0; day < 28; ++day) {
    for (const Subscriber* s :
         w.pop.of_segment(Segment::kWearableOwner)) {
      owners.add(
          w.mobility.max_displacement_km(w.mobility.build_day(*s, day, rng)));
    }
    for (const Subscriber* s : w.pop.of_segment(Segment::kControl)) {
      controls.add(
          w.mobility.max_displacement_km(w.mobility.build_day(*s, day, rng)));
    }
  }
  EXPECT_GT(owners.mean(), controls.mean() * 1.3);
}

}  // namespace
}  // namespace wearscope::simnet
