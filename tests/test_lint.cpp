// Unit tests for wearscope::lint — every rule gets a positive fixture
// (the defect is reported), a negative fixture (correct code is quiet)
// and a suppression fixture (the allow comment silences it).  The final
// test lints the shipped tree itself: the gate CI runs must hold here too.
#include "lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"
#include "util/error.h"

namespace wearscope::lint {
namespace {

/// Lints one in-memory file (path defaults into the checked tree layout).
std::vector<Finding> lint_one(const std::string& text,
                              const std::string& path = "src/core/x.cpp") {
  Project p;
  p.add(Source{path, text});
  return run_lint(p);
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = rules_of(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- lexer ---------------------------------------------------------------

TEST(LintLexer, TokenizesCoreShapes) {
  const std::vector<Token> tokens =
      lex("int x = 1'000; // note\nauto s = R\"(a \"b\" c)\";");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "1'000");
  const auto comment =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kComment;
      });
  ASSERT_NE(comment, tokens.end());
  EXPECT_EQ(comment->text, "// note");
  const auto raw =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString;
      });
  ASSERT_NE(raw, tokens.end());
  EXPECT_EQ(raw->text, "R\"(a \"b\" c)\"");
  EXPECT_EQ(raw->line, 2);
}

TEST(LintLexer, JoinsDirectiveContinuations) {
  const std::vector<Token> tokens = lex("#define M(x) \\\n  (x + 1)\nint y;");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_NE(tokens[0].text.find("(x + 1)"), std::string_view::npos);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

// --- wallclock -----------------------------------------------------------

TEST(LintWallclock, FlagsAmbientTimeCalls) {
  const auto f = lint_one("void g() { auto t = time(nullptr); }");
  ASSERT_TRUE(has_rule(f, "wallclock"));
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintWallclock, FlagsSystemClockNow) {
  EXPECT_TRUE(has_rule(
      lint_one("void g() { auto t = std::chrono::system_clock::now(); }"),
      "wallclock"));
}

TEST(LintWallclock, AllowsSteadyClockAndMemberCalls) {
  EXPECT_FALSE(has_rule(
      lint_one("void g() { auto t = std::chrono::steady_clock::now(); }"),
      "wallclock"));
  EXPECT_FALSE(
      has_rule(lint_one("void g(Clock& c) { auto t = c.time(); }"),
               "wallclock"));
}

TEST(LintWallclock, SuppressionComment) {
  EXPECT_FALSE(has_rule(
      lint_one("void g() {\n"
               "  auto t = time(nullptr);  // wearscope-lint: allow(wallclock)\n"
               "}"),
      "wallclock"));
  EXPECT_FALSE(has_rule(
      lint_one("void g() {\n"
               "  // wearscope-lint: allow(wallclock)\n"
               "  auto t = time(nullptr);\n"
               "}"),
      "wallclock"));
}

// --- ambient-rand --------------------------------------------------------

TEST(LintAmbientRand, FlagsRandFamilies) {
  EXPECT_TRUE(has_rule(lint_one("int g() { return std::rand(); }"),
                       "ambient-rand"));
  EXPECT_TRUE(has_rule(lint_one("std::random_device rd;"), "ambient-rand"));
  EXPECT_TRUE(has_rule(lint_one("std::mt19937 gen(42);"), "ambient-rand"));
  EXPECT_TRUE(has_rule(
      lint_one("std::uniform_int_distribution<int> d(0, 9);"),
      "ambient-rand"));
}

TEST(LintAmbientRand, AllowsProjectRng) {
  EXPECT_TRUE(
      lint_one("void g(util::Pcg32& rng) { auto x = rng.next(); }").empty());
}

TEST(LintAmbientRand, AllowFileSuppression) {
  EXPECT_FALSE(has_rule(
      lint_one("// wearscope-lint: allow-file(ambient-rand)\n"
               "std::mt19937 gen(42);\n"
               "std::random_device rd;"),
      "ambient-rand"));
}

// --- unordered-emit ------------------------------------------------------

constexpr const char* kUnorderedEmitBad =
    "ActivityResult summarize() {\n"
    "  std::unordered_map<int, double> counts;\n"
    "  ActivityResult res;\n"
    "  for (const auto& [k, v] : counts) res.values.push_back(v);\n"
    "  return res;\n"
    "}\n";

TEST(LintUnorderedEmit, FlagsHashOrderEmission) {
  const auto f = lint_one(kUnorderedEmitBad);
  ASSERT_TRUE(has_rule(f, "unordered-emit"));
  EXPECT_EQ(f[0].line, 4);
}

TEST(LintUnorderedEmit, SortAfterLoopClears) {
  EXPECT_FALSE(has_rule(
      lint_one("ActivityResult summarize() {\n"
               "  std::unordered_map<int, double> counts;\n"
               "  ActivityResult res;\n"
               "  for (const auto& [k, v] : counts) res.values.push_back(v);\n"
               "  std::sort(res.values.begin(), res.values.end());\n"
               "  return res;\n"
               "}\n"),
      "unordered-emit"));
}

TEST(LintUnorderedEmit, OrderedContainerQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("ActivityResult summarize() {\n"
               "  std::map<int, double> counts;\n"
               "  ActivityResult res;\n"
               "  for (const auto& [k, v] : counts) res.values.push_back(v);\n"
               "  return res;\n"
               "}\n"),
      "unordered-emit"));
}

TEST(LintUnorderedEmit, NoEmissionQuiet) {
  // Pure aggregation (no Result/report/CSV in the function) is fine.
  EXPECT_FALSE(has_rule(
      lint_one("double total() {\n"
               "  std::unordered_map<int, double> counts;\n"
               "  double sum = 0.0;\n"
               "  for (const auto& [k, v] : counts) sum += v;\n"
               "  return sum;\n"
               "}\n"),
      "unordered-emit"));
}

TEST(LintUnorderedEmit, SeesContainerDeclaredInIncludedHeader) {
  Project p;
  p.add(Source{"src/core/tally.h",
               "#pragma once\n#include <unordered_map>\n"
               "struct Tally { std::unordered_map<int, double> cells; };\n"});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "StudyReport render(const Tally& t) {\n"
               "  StudyReport rep;\n"
               "  for (const auto& [k, v] : t.cells) rep.add(k, v);\n"
               "  return rep;\n"
               "}\n"});
  const auto findings = run_lint(p);
  ASSERT_TRUE(has_rule(findings, "unordered-emit"));
  EXPECT_EQ(findings[0].path, "src/core/emit.cpp");
}

TEST(LintUnorderedEmit, LocalOrderedShadowQuiet) {
  // A local std::map named like a header's unordered member wins.
  Project p;
  p.add(Source{"src/core/tally.h",
               "#pragma once\n#include <unordered_map>\n"
               "struct Tally { std::unordered_map<int, double> cells; };\n"});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "StudyReport render() {\n"
               "  std::map<int, double> cells;\n"
               "  StudyReport rep;\n"
               "  for (const auto& [k, v] : cells) rep.add(k, v);\n"
               "  return rep;\n"
               "}\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "unordered-emit"));
}

// --- quarantine-pairing --------------------------------------------------

TEST(LintQuarantine, FlagsSwallowedParseError) {
  const auto f = lint_one(
      "void read() {\n"
      "  try { parse(); } catch (const util::ParseError&) { }\n"
      "}\n",
      "src/trace/reader.cpp");
  EXPECT_TRUE(has_rule(f, "quarantine-pairing"));
}

TEST(LintQuarantine, AccountedOrRethrownQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("void read(QuarantineStats& q) {\n"
               "  try { parse(); } catch (const util::ParseError&) {\n"
               "    ++q.corrupt_rows;\n"
               "  }\n"
               "}\n",
               "src/trace/reader.cpp"),
      "quarantine-pairing"));
  EXPECT_FALSE(has_rule(
      lint_one("void read() {\n"
               "  try { parse(); } catch (const util::ParseError& e) {\n"
               "    throw;\n"
               "  }\n"
               "}\n",
               "src/trace/reader.cpp"),
      "quarantine-pairing"));
}

TEST(LintQuarantine, LenientReaderMustAccount) {
  EXPECT_TRUE(has_rule(
      lint_one("Log read_log_lenient(std::istream& in) {\n"
               "  Log log;\n"
               "  return log;\n"
               "}\n",
               "src/trace/reader.cpp"),
      "quarantine-pairing"));
  EXPECT_FALSE(has_rule(
      lint_one("Log read_log_lenient(std::istream& in, QuarantineStats& q) {\n"
               "  Log log;\n"
               "  if (!in) { ++q.corrupt_files; return log; }\n"
               "  return log;\n"
               "}\n",
               "src/trace/reader.cpp"),
      "quarantine-pairing"));
}

// --- header-guard --------------------------------------------------------

TEST(LintHeaderGuard, FlagsUnguardedHeader) {
  EXPECT_TRUE(has_rule(lint_one("int f();\n", "src/core/api.h"),
                       "header-guard"));
}

TEST(LintHeaderGuard, AcceptsPragmaOnceAndClassicGuard) {
  EXPECT_FALSE(has_rule(
      lint_one("// doc comment first\n#pragma once\nint f();\n",
               "src/core/api.h"),
      "header-guard"));
  EXPECT_FALSE(has_rule(
      lint_one("#ifndef WS_API_H\n#define WS_API_H\nint f();\n#endif\n",
               "src/core/api.h"),
      "header-guard"));
}

TEST(LintHeaderGuard, CppFilesExempt) {
  EXPECT_FALSE(has_rule(lint_one("int f() { return 1; }\n"), "header-guard"));
}

// --- include-hygiene -----------------------------------------------------

TEST(LintIncludeHygiene, FlagsUnusedProjectInclude) {
  Project p;
  p.add(Source{"src/util/widget.h", "#pragma once\nstruct Widget {};\n"});
  p.add(Source{"src/core/user.cpp",
               "#include \"util/widget.h\"\nint g() { return 2; }\n"});
  const auto findings = run_lint(p);
  ASSERT_TRUE(has_rule(findings, "include-hygiene"));
  EXPECT_EQ(findings[0].path, "src/core/user.cpp");
}

TEST(LintIncludeHygiene, ReferencedIncludeQuiet) {
  Project p;
  p.add(Source{"src/util/widget.h", "#pragma once\nstruct Widget {};\n"});
  p.add(Source{"src/core/user.cpp",
               "#include \"util/widget.h\"\nWidget g() { return {}; }\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "include-hygiene"));
}

TEST(LintIncludeHygiene, OwnHeaderExempt) {
  Project p;
  p.add(Source{"src/core/user.h", "#pragma once\nint g();\n"});
  p.add(Source{"src/core/user.cpp",
               "#include \"core/user.h\"\nint unrelated() { return 2; }\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "include-hygiene"));
}

TEST(LintIncludeHygiene, MacroUseCounts) {
  Project p;
  p.add(Source{"src/util/macros.h", "#pragma once\n#define WS_FOO(x) (x)\n"});
  p.add(Source{"src/core/user.cpp",
               "#include \"util/macros.h\"\nint g() { return WS_FOO(2); }\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "include-hygiene"));
}

// --- pod-init ------------------------------------------------------------

TEST(LintPodInit, FlagsBareScalarFieldInEventTypes) {
  const auto f = lint_one(
      "#pragma once\n"
      "struct Event {\n  std::uint64_t seq;\n  double bytes = 0.0;\n};\n",
      "src/live/event_extra.h");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "pod-init");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].message.find("seq"), std::string::npos);
}

TEST(LintPodInit, InitializedAndNonScalarQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("struct Event {\n"
               "  std::uint64_t seq = 0;\n"
               "  std::string name;\n"
               "  std::vector<int> xs;\n"
               "};\n",
               "src/live/event_extra.h"),
      "pod-init"));
}

TEST(LintPodInit, TemplateArgumentsDoNotTypeTheMember) {
  // A map *of* scalars is not a scalar field (regression fixture).
  EXPECT_FALSE(has_rule(
      lint_one("struct Index {\n"
               "  std::unordered_map<Tac, std::size_t> by_tac;\n"
               "};\n",
               "src/trace/index_extra.h"),
      "pod-init"));
}

TEST(LintPodInit, CoversServeTypes) {
  const auto f = lint_one(
      "#pragma once\n"
      "struct Served {\n  std::uint64_t checksum;\n};\n",
      "src/serve/served_extra.h");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "pod-init");
  EXPECT_NE(f[0].message.find("checksum"), std::string::npos);
}

TEST(LintPodInit, CoversSchedTypes) {
  const auto f = lint_one(
      "#pragma once\n"
      "struct TraceStep {\n  std::uint64_t clock;\n};\n",
      "src/sched/step_extra.h");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "pod-init");
  EXPECT_NE(f[0].message.find("clock"), std::string::npos);
}

TEST(LintPodInit, OutsideScopedDirsQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("struct Row {\n  int x;\n};\n", "src/core/row.h"),
      "pod-init"));
}

// --- driver --------------------------------------------------------------

TEST(LintDriver, OnlyRulesFilter) {
  Options opt;
  opt.only_rules = {"header-guard"};
  Project p;
  p.add(Source{"src/core/api.h", "std::mt19937 gen;\nint f();\n"});
  const auto findings = run_lint(p, opt);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
}

TEST(LintDriver, FindingsSortedAndJsonWellFormed) {
  Project p;
  p.add(Source{"src/core/b.cpp", "int g() { return std::rand(); }\n"});
  p.add(Source{"src/core/a.cpp", "int h() { return std::rand(); }\n"});
  const auto findings = run_lint(p);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "src/core/a.cpp");
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"total_findings\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"ambient-rand\""), std::string::npos);
  EXPECT_NE(to_json({}).find("\"total_findings\": 0"), std::string::npos);
}

TEST(LintDriver, AllRulesListedOnce) {
  const auto& rules = all_rules();
  EXPECT_EQ(rules.size(), 11u);
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end()));
}

TEST(LintDriver, UnknownRulesReported) {
  EXPECT_TRUE(unknown_rules({"wallclock", "lock-order"}).empty());
  const auto bad = unknown_rules({"wallclock", "bogus-rule"});
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "bogus-rule");
}

// --- suppression parsing -------------------------------------------------

TEST(LintSuppression, AllowFileMultipleRules) {
  EXPECT_TRUE(lint_one("// wearscope-lint: allow-file(ambient-rand, "
                       "wallclock)\n"
                       "void f() { std::rand(); time(nullptr); }\n")
                  .empty());
}

TEST(LintSuppression, AllowMultipleRulesOneLine) {
  EXPECT_TRUE(lint_one("void f() {\n"
                       "  // wearscope-lint: allow(wallclock, ambient-rand)\n"
                       "  long x = std::rand() + time(nullptr);\n"
                       "}\n")
                  .empty());
}

// --- load_tree error paths -----------------------------------------------

TEST(LintLoadTree, MissingDirThrowsIoError) {
  EXPECT_THROW(load_tree(WEARSCOPE_SOURCE_DIR, {"no_such_dir_xyz"}),
               util::IoError);
}

TEST(LintLoadTree, FileAsDirThrowsIoError) {
  // A path that exists but is not a directory must fail the same way.
  EXPECT_THROW(load_tree(WEARSCOPE_SOURCE_DIR, {"CMakeLists.txt"}),
               util::IoError);
}

// --- lock-order ----------------------------------------------------------

constexpr const char* kLockClassesHeader =
    "#pragma once\n"
    "struct DevA { util::Mutex mu_a; };\n"
    "struct DevB { util::Mutex mu_b; };\n";

TEST(LintLockOrder, FlagsTwoMutexInversion) {
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/x.cpp",
               "#include \"live/locks.h\"\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(b.mu_b);\n"
               "  util::MutexLock l2(a.mu_a);\n"
               "}\n"});
  const auto f = run_lint(p);
  ASSERT_TRUE(has_rule(f, "lock-order"));
  EXPECT_NE(f[0].message.find("DevA::mu_a"), std::string::npos);
  EXPECT_NE(f[0].message.find("DevB::mu_b"), std::string::npos);
}

TEST(LintLockOrder, CrossFileCycle) {
  // The two halves of the inversion live in different files; only the
  // whole-program graph can see the cycle.
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/foo.cpp",
               "#include \"live/locks.h\"\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"});
  p.add(Source{"src/live/bar.cpp",
               "#include \"live/locks.h\"\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(b.mu_b);\n"
               "  util::MutexLock l2(a.mu_a);\n"
               "}\n"});
  const auto f = run_lint(p);
  ASSERT_TRUE(has_rule(f, "lock-order"));
  EXPECT_NE(f[0].message.find("src/live/foo.cpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/live/bar.cpp"), std::string::npos);
}

TEST(LintLockOrder, HierarchicalOrderQuiet) {
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/foo.cpp",
               "#include \"live/locks.h\"\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"});
  p.add(Source{"src/live/bar.cpp",
               "#include \"live/locks.h\"\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "lock-order"));
}

TEST(LintLockOrder, CycleThroughCallHop) {
  // foo never locks mu_b itself: the edge comes from calling lock_b()
  // while holding mu_a.
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/foo.cpp",
               "#include \"live/locks.h\"\n"
               "void lock_b(DevB& b) { util::MutexLock l(b.mu_b); }\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l(a.mu_a);\n"
               "  lock_b(b);\n"
               "}\n"});
  p.add(Source{"src/live/bar.cpp",
               "#include \"live/locks.h\"\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(b.mu_b);\n"
               "  util::MutexLock l2(a.mu_a);\n"
               "}\n"});
  EXPECT_TRUE(has_rule(run_lint(p), "lock-order"));
}

TEST(LintLockOrder, RequiresAnnotationMakesEdge) {
  // poke() never locks mu_a in its body; WS_REQUIRES on the in-class
  // declaration is what puts mu_a in the held set.
  Project p;
  p.add(Source{"src/live/locks.h",
               "#pragma once\n"
               "struct DevB { util::Mutex mu_b; };\n"
               "struct DevA {\n"
               "  util::Mutex mu_a;\n"
               "  void poke(DevB& b) WS_REQUIRES(mu_a);\n"
               "};\n"});
  p.add(Source{"src/live/foo.cpp",
               "#include \"live/locks.h\"\n"
               "void DevA::poke(DevB& b) { util::MutexLock l(b.mu_b); }\n"});
  p.add(Source{"src/live/bar.cpp",
               "#include \"live/locks.h\"\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(b.mu_b);\n"
               "  util::MutexLock l2(a.mu_a);\n"
               "}\n"});
  EXPECT_TRUE(has_rule(run_lint(p), "lock-order"));
}

TEST(LintLockOrder, AllowFileSuppression) {
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/x.cpp",
               "// Intentional for the test. wearscope-lint: "
               "allow-file(lock-order)\n"
               "#include \"live/locks.h\"\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"
               "void bar(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(b.mu_b);\n"
               "  util::MutexLock l2(a.mu_a);\n"
               "}\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "lock-order"));
}

// --- guard-coverage ------------------------------------------------------

TEST(LintGuardCoverage, FlagsUnguardedSharedField) {
  const auto f = lint_one(
      "class Acc {\n"
      " public:\n"
      "  void add(long v) { util::MutexLock l(mu_); total_ += v; }\n"
      "  void reset() { util::MutexLock l(mu_); total_ = 0; }\n"
      " private:\n"
      "  util::Mutex mu_;\n"
      "  long total_ = 0;\n"
      "};\n");
  ASSERT_TRUE(has_rule(f, "guard-coverage"));
  EXPECT_EQ(f[0].line, 7);
  EXPECT_NE(f[0].message.find("total_"), std::string::npos);
}

TEST(LintGuardCoverage, AnnotatedOrAtomicOrSingleWriterQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("class Acc {\n"
               " public:\n"
               "  void add(long v) { util::MutexLock l(mu_); total_ += v; }\n"
               "  void reset() { util::MutexLock l(mu_); total_ = 0; }\n"
               " private:\n"
               "  util::Mutex mu_;\n"
               "  long total_ WS_GUARDED_BY(mu_) = 0;\n"
               "};\n"),
      "guard-coverage"));
  EXPECT_FALSE(has_rule(
      lint_one("class Acc {\n"
               " public:\n"
               "  void add(long v) { total_ += v; }\n"
               "  void reset() { total_ = 0; }\n"
               " private:\n"
               "  util::Mutex mu_;\n"
               "  std::atomic<long> total_{0};\n"
               "};\n"),
      "guard-coverage"));
  EXPECT_FALSE(has_rule(
      lint_one("class Acc {\n"
               " public:\n"
               "  void add(long v) { util::MutexLock l(mu_); total_ += v; }\n"
               "  long value() { return total_; }\n"
               " private:\n"
               "  util::Mutex mu_;\n"
               "  long total_ = 0;\n"
               "};\n"),
      "guard-coverage"));
}

TEST(LintGuardCoverage, SuppressionComment) {
  EXPECT_FALSE(has_rule(
      lint_one("class Acc {\n"
               " public:\n"
               "  void add(long v) { util::MutexLock l(mu_); total_ += v; }\n"
               "  void reset() { util::MutexLock l(mu_); total_ = 0; }\n"
               " private:\n"
               "  util::Mutex mu_;\n"
               "  // wearscope-lint: allow(guard-coverage)\n"
               "  long total_ = 0;\n"
               "};\n"),
      "guard-coverage"));
}

// --- unchecked-result ----------------------------------------------------

TEST(LintUncheckedResult, FlagsDiscardedFreeCall) {
  const auto f = lint_one(
      "[[nodiscard]] int reserve_slot();\n"
      "void use() {\n"
      "  reserve_slot();\n"
      "}\n");
  ASSERT_TRUE(has_rule(f, "unchecked-result"));
  EXPECT_EQ(f[0].line, 3);
}

TEST(LintUncheckedResult, UsedResultQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("[[nodiscard]] int reserve_slot();\n"
               "int use() {\n"
               "  const int v = reserve_slot();\n"
               "  return v + reserve_slot();\n"
               "}\n"),
      "unchecked-result"));
}

TEST(LintUncheckedResult, ImplicitThisMethodCallFlagged) {
  EXPECT_TRUE(has_rule(
      lint_one("class Q {\n"
               " public:\n"
               "  [[nodiscard]] bool poll();\n"
               "  void spin() { poll(); }\n"
               "};\n"),
      "unchecked-result"));
}

TEST(LintUncheckedResult, UnresolvableReceiverQuiet) {
  // `q.poll()` on an arbitrary object is skipped: the token-level index
  // cannot type the receiver, and a flow rule must not guess.
  EXPECT_FALSE(has_rule(
      lint_one("class Q {\n"
               " public:\n"
               "  [[nodiscard]] bool poll();\n"
               "};\n"
               "void spin(Q& q) { q.poll(); }\n"),
      "unchecked-result"));
}

TEST(LintUncheckedResult, SameFileDefinitionShadowsForeignName) {
  // b.cpp's own void fail() wins over a.cpp's unrelated nodiscard fail().
  Project p;
  p.add(Source{"src/core/a.cpp", "[[nodiscard]] int fail();\n"});
  p.add(Source{"src/core/b.cpp",
               "void fail(const char* m) { (void)m; }\n"
               "void go() { fail(\"x\"); }\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "unchecked-result"));
}

TEST(LintUncheckedResult, SuppressionComment) {
  EXPECT_FALSE(has_rule(
      lint_one("[[nodiscard]] int reserve_slot();\n"
               "void use() {\n"
               "  reserve_slot();  // wearscope-lint: allow(unchecked-result)\n"
               "}\n"),
      "unchecked-result"));
}

// --- unordered-flow ------------------------------------------------------

constexpr const char* kTallyHeader =
    "#pragma once\n"
    "#include <unordered_map>\n"
    "struct Tally { std::unordered_map<int, double> cells; };\n";

TEST(LintUnorderedFlow, CrossFileIterationReachesEmission) {
  // The unordered iteration (helper.cpp) and the emission (emit.cpp) live
  // in different files; only the call graph connects them.
  Project p;
  p.add(Source{"src/core/tally.h", kTallyHeader});
  p.add(Source{"src/core/helper.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t) {\n"
               "  std::vector<double> out;\n"
               "  for (const auto& [k, v] : t.cells) out.push_back(v);\n"
               "  return out;\n"
               "}\n"});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t);\n"
               "StudyReport render(const Tally& t) {\n"
               "  StudyReport rep;\n"
               "  rep.values = collect(t);\n"
               "  return rep;\n"
               "}\n"});
  const auto f = run_lint(p);
  ASSERT_TRUE(has_rule(f, "unordered-flow"));
  EXPECT_EQ(f[0].path, "src/core/helper.cpp");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].message.find("render -> collect"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/core/emit.cpp"), std::string::npos);
}

TEST(LintUnorderedFlow, SortBeforeReturnQuiet) {
  Project p;
  p.add(Source{"src/core/tally.h", kTallyHeader});
  p.add(Source{"src/core/helper.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t) {\n"
               "  std::vector<double> out;\n"
               "  for (const auto& [k, v] : t.cells) out.push_back(v);\n"
               "  std::sort(out.begin(), out.end());\n"
               "  return out;\n"
               "}\n"});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t);\n"
               "StudyReport render(const Tally& t) {\n"
               "  StudyReport rep;\n"
               "  rep.values = collect(t);\n"
               "  return rep;\n"
               "}\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "unordered-flow"));
}

TEST(LintUnorderedFlow, SameFunctionEmissionLeftToPerFileRule) {
  // When the iterating function itself emits, the per-file unordered-emit
  // rule owns the finding; unordered-flow stays quiet.
  Project p;
  p.add(Source{"src/core/tally.h", kTallyHeader});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "StudyReport render(const Tally& t) {\n"
               "  StudyReport rep;\n"
               "  for (const auto& [k, v] : t.cells) rep.add(k, v);\n"
               "  return rep;\n"
               "}\n"});
  const auto f = run_lint(p);
  EXPECT_TRUE(has_rule(f, "unordered-emit"));
  EXPECT_FALSE(has_rule(f, "unordered-flow"));
}

TEST(LintUnorderedFlow, SuppressionComment) {
  Project p;
  p.add(Source{"src/core/tally.h", kTallyHeader});
  p.add(Source{"src/core/helper.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t) {\n"
               "  std::vector<double> out;\n"
               "  // wearscope-lint: allow(unordered-flow)\n"
               "  for (const auto& [k, v] : t.cells) out.push_back(v);\n"
               "  return out;\n"
               "}\n"});
  p.add(Source{"src/core/emit.cpp",
               "#include \"core/tally.h\"\n"
               "std::vector<double> collect(const Tally& t);\n"
               "StudyReport render(const Tally& t) {\n"
               "  StudyReport rep;\n"
               "  rep.values = collect(t);\n"
               "  return rep;\n"
               "}\n"});
  EXPECT_FALSE(has_rule(run_lint(p), "unordered-flow"));
}

// --- SARIF output --------------------------------------------------------

/// Minimal recursive-descent JSON syntax checker (the repo has no JSON
/// parser dependency; shape-checking the SARIF output only needs syntax).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  [[nodiscard]] bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool lit(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > begin;
  }
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return lit("true");
    if (c == 'f') return lit("false");
    if (c == 'n') return lit("null");
    return number();
  }
  bool object() {
    ++pos_;
    ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool array() {
    ++pos_;
    ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(LintSarif, ValidJsonAndCountRoundTrip) {
  Project p;
  p.add(Source{"src/core/b.cpp", "int g() { return std::rand(); }\n"});
  p.add(Source{"src/core/a.cpp", "int h() { return std::rand(); }\n"});
  const auto findings = run_lint(p);
  ASSERT_EQ(findings.size(), 2u);

  const std::string sarif = to_sarif(findings);
  EXPECT_TRUE(JsonChecker(sarif).valid()) << sarif;
  EXPECT_TRUE(JsonChecker(to_sarif({})).valid());
  EXPECT_TRUE(JsonChecker(to_json(findings)).valid());

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);

  // Result count round-trips against the json format's total.
  std::size_t results = 0;
  for (std::size_t at = sarif.find("\"ruleId\""); at != std::string::npos;
       at = sarif.find("\"ruleId\"", at + 1))
    ++results;
  EXPECT_EQ(results, findings.size());
  EXPECT_NE(to_json(findings).find("\"total_findings\": 2"),
            std::string::npos);
}

// --- graph dump ----------------------------------------------------------

TEST(LintGraphDump, ListsSymbolsAndLockEdges) {
  Project p;
  p.add(Source{"src/live/locks.h", kLockClassesHeader});
  p.add(Source{"src/live/x.cpp",
               "#include \"live/locks.h\"\n"
               "void foo(DevA& a, DevB& b) {\n"
               "  util::MutexLock l1(a.mu_a);\n"
               "  util::MutexLock l2(b.mu_b);\n"
               "}\n"});
  const std::string dump = dump_graph(p);
  EXPECT_NE(dump.find("DevA"), std::string::npos);
  EXPECT_NE(dump.find("[owns-lock]"), std::string::npos);
  EXPECT_NE(dump.find("# functions"), std::string::npos);
  EXPECT_NE(dump.find("foo"), std::string::npos);
  EXPECT_NE(dump.find("DevA::mu_a -> DevB::mu_b"), std::string::npos);
}

// --- the shipped tree ----------------------------------------------------

// The same gate `ctest -L lint` and tools/check.sh enforce: the tree this
// test was built from must be clean.  WEARSCOPE_SOURCE_DIR comes from the
// build system.
TEST(LintTree, ShippedSourcesAreClean) {
  const Project project =
      load_tree(WEARSCOPE_SOURCE_DIR, {"src", "tools", "bench"});
  ASSERT_GT(project.sources().size(), 100u);
  const std::vector<Finding> findings = run_lint(project);
  EXPECT_TRUE(findings.empty()) << to_text(findings);
}

}  // namespace
}  // namespace wearscope::lint
