// Tests for the device-model cohort extension (§4.1 vendor mix).
#include "core/analysis_cohorts.h"

#include <gtest/gtest.h>

#include "core/context.h"
#include "simnet/simulator.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kGearTac = 35254208;   // Samsung Gear S3 frontier LTE
constexpr trace::Tac kGear2Tac = 35254209;  // second TAC of the same model
constexpr trace::Tac kLgTac = 35909306;     // LG Watch Urbane 2nd LTE
constexpr trace::Tac kPhoneTac = 35332008;  // iPhone 7

trace::TraceStore micro_store() {
  trace::TraceStore s;
  s.devices = {
      {kGearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {kGear2Tac, "Gear S3 frontier LTE", "Samsung", "Tizen"},
      {kLgTac, "Watch Urbane 2nd Edition LTE", "LG", "Android Wear"},
      {kPhoneTac, "iPhone 7", "Apple", "iOS"},
  };
  s.sectors = {{1, util::GeoPoint{40.0, -3.0}}};
  const auto mme = [&](trace::UserId u, trace::Tac tac) {
    s.mme.push_back({100 + static_cast<util::SimTime>(u), u, tac,
                     trace::MmeEvent::kAttach, 1});
  };
  const auto proxy = [&](trace::UserId u, trace::Tac tac, int day) {
    trace::ProxyRecord r;
    r.timestamp = util::day_start(day) + 1000 + static_cast<util::SimTime>(u);
    r.user_id = u;
    r.tac = tac;
    r.host = "api.weather.com";
    r.bytes_down = 1000;
    s.proxy.push_back(r);
  };
  // Users 1 and 2 carry Gear S3s (different TACs, same model); user 3 an
  // LG watch; user 4 only a phone.
  mme(1, kGearTac);
  mme(2, kGear2Tac);
  mme(3, kLgTac);
  mme(4, kPhoneTac);
  proxy(1, kGearTac, 0);
  proxy(1, kGearTac, 1);
  proxy(3, kLgTac, 0);
  s.sort_by_time();
  return s;
}

AnalysisContext micro_context(const trace::TraceStore& store) {
  AnalysisOptions o;
  o.observation_days = 14;
  o.detailed_start_day = 0;
  o.long_tail_apps = 10;
  return AnalysisContext(store, o);
}

TEST(Cohorts, MergesTacsOfOneModelAndCountsUsers) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const CohortResult r = analyze_cohorts(ctx);
  ASSERT_EQ(r.models.size(), 2u);
  EXPECT_EQ(r.models[0].model, "Gear S3 frontier LTE");
  EXPECT_EQ(r.models[0].users, 2u);  // both TACs merged into one cohort
  EXPECT_EQ(r.models[0].active_users, 1u);
  EXPECT_DOUBLE_EQ(r.models[0].txns, 2.0);
  EXPECT_DOUBLE_EQ(r.models[0].bytes, 2000.0);
  EXPECT_DOUBLE_EQ(r.models[0].mean_active_days, 2.0);
  EXPECT_EQ(r.models[1].model, "Watch Urbane 2nd Edition LTE");
  EXPECT_EQ(r.models[1].users, 1u);
}

TEST(Cohorts, ManufacturerSharesSumToOne) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const CohortResult r = analyze_cohorts(ctx);
  double total = 0.0;
  for (const auto& [vendor, share] : r.manufacturer_share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(r.manufacturer_share[0].first, "Samsung");
  EXPECT_NEAR(r.manufacturer_share[0].second, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.samsung_lg_share, 1.0, 1e-9);
}

TEST(Cohorts, SimulatedPopulationDominatedBySamsungLg) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 17;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  AnalysisOptions o;
  o.observation_days = sim.observation_days;
  o.detailed_start_day = sim.detailed_start_day;
  o.long_tail_apps = cfg.long_tail_apps;
  const AnalysisContext ctx(sim.store, o);
  const CohortResult r = analyze_cohorts(ctx);
  EXPECT_GT(r.samsung_lg_share, 0.8);  // §4.1: "most users"
  EXPECT_GE(r.models.size(), 5u);
  // Figure checks pass too.
  EXPECT_TRUE(figure_cohorts(r).all_pass());
}

TEST(Cohorts, EmptyStore) {
  trace::TraceStore store;
  store.devices = {{kGearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sort_by_time();
  const AnalysisContext ctx = micro_context(store);
  const CohortResult r = analyze_cohorts(ctx);
  EXPECT_TRUE(r.models.empty());
  EXPECT_DOUBLE_EQ(r.samsung_lg_share, 0.0);
}

}  // namespace
}  // namespace wearscope::core
