// Tests for the retention-cohort extension.
#include "core/analysis_retention.h"

#include <gtest/gtest.h>

#include "core/context.h"
#include "simnet/simulator.h"
#include "util/geo.h"

namespace wearscope::core {
namespace {

constexpr trace::Tac kWearTac = 35254208;

trace::TraceStore micro_store() {
  trace::TraceStore s;
  s.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  s.sectors = {{1, util::GeoPoint{40.0, -3.0}}};
  const auto reg = [&](trace::UserId u, int week) {
    s.mme.push_back({util::day_start(week * 7) + 3600, u, kWearTac,
                     trace::MmeEvent::kAttach, 1});
  };
  // Cohort week 0: users 1, 2. User 1 registers every week of 4;
  // user 2 only weeks 0 and 1 (churns).
  for (int w = 0; w < 4; ++w) reg(1, w);
  reg(2, 0);
  reg(2, 1);
  // Cohort week 2: user 3, present weeks 2 and 3.
  reg(3, 2);
  reg(3, 3);
  s.sort_by_time();
  return s;
}

AnalysisContext micro_context(const trace::TraceStore& store) {
  AnalysisOptions o;
  o.observation_days = 28;  // 4 weeks
  o.detailed_start_day = 14;
  o.long_tail_apps = 10;
  return AnalysisContext(store, o);
}

TEST(Retention, CohortSurvivalCurvesExact) {
  const trace::TraceStore store = micro_store();
  const AnalysisContext ctx = micro_context(store);
  const RetentionResult r = analyze_retention(ctx);

  ASSERT_EQ(r.cohorts.size(), 2u);
  const Cohort& c0 = r.cohorts[0];
  EXPECT_EQ(c0.adoption_week, 0);
  EXPECT_EQ(c0.size, 2u);
  ASSERT_EQ(c0.survival.size(), 4u);
  EXPECT_DOUBLE_EQ(c0.survival[0], 1.0);
  EXPECT_DOUBLE_EQ(c0.survival[1], 1.0);  // both present in week 1
  EXPECT_DOUBLE_EQ(c0.survival[2], 0.5);  // user 2 gone
  EXPECT_DOUBLE_EQ(c0.survival[3], 0.5);

  const Cohort& c2 = r.cohorts[1];
  EXPECT_EQ(c2.adoption_week, 2);
  EXPECT_EQ(c2.size, 1u);
  ASSERT_EQ(c2.survival.size(), 2u);
  EXPECT_DOUBLE_EQ(c2.survival[0], 1.0);
  EXPECT_DOUBLE_EQ(c2.survival[1], 1.0);
}

TEST(Retention, EmptyStore) {
  trace::TraceStore store;
  store.devices = {{kWearTac, "Gear S3 frontier LTE", "Samsung", "Tizen"}};
  store.sort_by_time();
  const AnalysisContext ctx = micro_context(store);
  const RetentionResult r = analyze_retention(ctx);
  EXPECT_TRUE(r.cohorts.empty());
  EXPECT_DOUBLE_EQ(r.survival_4w, 0.0);
}

TEST(Retention, SimulatedBaseIsSticky) {
  simnet::SimConfig cfg = simnet::SimConfig::small();
  cfg.seed = 13;
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  AnalysisOptions o;
  o.observation_days = sim.observation_days;
  o.detailed_start_day = sim.detailed_start_day;
  o.long_tail_apps = cfg.long_tail_apps;
  const AnalysisContext ctx(sim.store, o);
  const RetentionResult r = analyze_retention(ctx);
  ASSERT_FALSE(r.cohorts.empty());
  // The big pre-window cohort adopts in week 0 and stays ~sticky.
  EXPECT_EQ(r.cohorts.front().adoption_week, 0);
  EXPECT_GT(r.cohorts.front().size, cfg.wearable_users / 2);
  EXPECT_GT(r.survival_4w, 0.85);
  EXPECT_GE(r.survival_4w, r.survival_12w - 1e-9);
  EXPECT_TRUE(figure_retention(r).all_pass());
}

}  // namespace
}  // namespace wearscope::core
